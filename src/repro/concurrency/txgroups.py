"""Transaction groups (Skarra & Zdonik), §4.2.1.

The paper: *"Skarra and Zdonik have introduced the concept of a
transaction group which co-ordinates access to shared data for a number of
co-operating members.  Within a transaction group, the notion of
serialisability is replaced by access rules based on the semantics of the
cooperation.  Access rules provide the policy of cooperation and these
policies can be tailored for a particular application by amending the
access rules."*

A :class:`TransactionGroup` wraps a shared store.  Members' writes are
*group-visible immediately* when the group's access rule permits it and
only published outside the group at commit.  The rule is a pluggable
policy object — three canonical policies are provided, and applications
tailor behaviour by supplying their own.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConcurrencyError
from repro.concurrency.store import SharedStore
from repro.sim import Counter, Environment, Event

READ = "read"
WRITE = "write"


class AccessRule:
    """The policy of cooperation: which concurrent accesses may overlap.

    ``permits(requester, op, key, holders)`` sees the current holders of
    ``key`` as ``(member, op)`` pairs and decides whether the new access
    may proceed now (True) or must wait (False).
    """

    name = "custom"

    def __init__(self, predicate: Callable[
            [str, str, str, List[Tuple[str, str]]], bool],
            name: str = "custom") -> None:
        self._predicate = predicate
        self.name = name

    def permits(self, requester: str, op: str, key: str,
                holders: List[Tuple[str, str]]) -> bool:
        return self._predicate(requester, op, key, holders)


def serialisable_rule() -> AccessRule:
    """The classical policy: conflicting accesses never overlap.

    Readers exclude writers; a writer excludes everyone else.  This is the
    Figure 2a baseline expressed as an access rule.
    """
    def predicate(requester, op, key, holders):
        others = [(m, o) for m, o in holders if m != requester]
        if not others:
            return True
        if op == READ:
            return all(o == READ for _, o in others)
        return False

    return AccessRule(predicate, name="serialisable")


def cooperative_rule() -> AccessRule:
    """Reader-follows-writer: uncommitted state is readable group-wide.

    Concurrent writers on one key are still excluded (the group relies on
    a social protocol for write turn-taking), but any member may read
    another member's in-progress work — the "read over their shoulder"
    interaction the paper uses as its co-authoring example.
    """
    def predicate(requester, op, key, holders):
        others = [(m, o) for m, o in holders if m != requester]
        if op == READ:
            return True
        return all(o == READ for _, o in others)

    return AccessRule(predicate, name="cooperative")


def free_rule() -> AccessRule:
    """No restrictions at all (the social protocol carries everything)."""
    return AccessRule(lambda *args: True, name="free")


class _Pending:
    __slots__ = ("member", "op", "key", "event", "since", "value")

    def __init__(self, member: str, op: str, key: str, event: Event,
                 since: float, value: Any = None) -> None:
        self.member = member
        self.op = op
        self.key = key
        self.event = event
        self.since = since
        self.value = value


class TransactionGroup:
    """A group of cooperating members over one shared store."""

    def __init__(self, env: Environment, store: SharedStore,
                 rule: Optional[AccessRule] = None,
                 name: str = "group") -> None:
        self.env = env
        self.store = store
        self.rule = rule or cooperative_rule()
        self.name = name
        self.members: List[str] = []
        #: key -> list of (member, op) current accesses.
        self._holders: Dict[str, List[Tuple[str, str]]] = {}
        self._waiting: List[_Pending] = []
        #: Group-visible uncommitted writes.
        self._uncommitted: Dict[str, Tuple[Any, str]] = {}
        self.counters = Counter()
        self.committed = False

    def add_member(self, member: str) -> None:
        """Admit a member to the group."""
        if member in self.members:
            raise ConcurrencyError(
                "{} is already in group {}".format(member, self.name))
        self.members.append(member)

    # -- data access -------------------------------------------------------

    def read(self, member: str, key: str) -> Event:
        """Request a read; fires with the group-visible value."""
        self._check_member(member)
        event = self.env.event()
        self._request(member, READ, key, event)
        return event

    def write(self, member: str, key: str, value: Any) -> Event:
        """Request a write; fires when the access rule admits it."""
        self._check_member(member)
        event = self.env.event()
        self._request(member, WRITE, key, event, value=value)
        return event

    def release(self, member: str, key: str, op: str) -> None:
        """End an access, letting waiting requests re-evaluate."""
        holders = self._holders.get(key, [])
        if (member, op) not in holders:
            raise ConcurrencyError(
                "{} holds no {} access on {}".format(member, op, key))
        holders.remove((member, op))
        self._drain()

    def commit(self) -> None:
        """Publish all uncommitted writes to the outside world."""
        for key, (value, writer) in self._uncommitted.items():
            self.store.write(key, value, writer=writer, at=self.env.now)
        self._uncommitted.clear()
        self.committed = True
        self.counters.incr("commits")

    def group_value(self, key: str) -> Any:
        """The value a member sees: uncommitted if present, else store."""
        if key in self._uncommitted:
            return self._uncommitted[key][0]
        if key in self.store:
            return self.store.read(key)
        return None

    @property
    def wait_queue_length(self) -> int:
        return len(self._waiting)

    # -- internals -----------------------------------------------------------

    def _check_member(self, member: str) -> None:
        if member not in self.members:
            raise ConcurrencyError(
                "{} is not a member of {}".format(member, self.name))

    def _request(self, member: str, op: str, key: str, event: Event,
                 value: Any = None) -> None:
        self.counters.incr("requests")
        holders = self._holders.setdefault(key, [])
        if self.rule.permits(member, op, key, list(holders)):
            self._grant(member, op, key, event, value)
        else:
            self.counters.incr("blocked")
            self._waiting.append(
                _Pending(member, op, key, event, self.env.now, value))

    def _grant(self, member: str, op: str, key: str, event: Event,
               value: Any) -> None:
        holders_before = list(self._holders.get(key, []))
        self._holders.setdefault(key, []).append((member, op))
        self.counters.incr("grants")
        if op == WRITE:
            self._uncommitted[key] = (value, member)
            event.succeed(value)
            return
        # A read admitted while another member is actively writing the
        # item is a cooperative interleaving ("reading over the
        # shoulder") that serialisability would have forbidden.
        overlapping_writer = any(
            m != member and o == WRITE for m, o in holders_before)
        if overlapping_writer and key in self._uncommitted \
                and self._uncommitted[key][1] != member:
            self.counters.incr("cooperative_reads")
        event.succeed(self.group_value(key))

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for pending in list(self._waiting):
                holders = self._holders.setdefault(pending.key, [])
                if self.rule.permits(pending.member, pending.op,
                                     pending.key, list(holders)):
                    self._waiting.remove(pending)
                    self._grant(pending.member, pending.op, pending.key,
                                pending.event, pending.value)
                    progressed = True
