"""Lock granularity for structured documents (§4.2.1).

The paper: *"it is not clear in joint authoring applications whether locks
should be applied at the granularity of sections, paragraphs, sentences or
even words."*  This module models exactly that hierarchy: a
:class:`StructuredDocument` with a fixed shape (sections → paragraphs →
sentences → words) maps any word-span edit onto the set of lock units it
covers at each granularity, so experiment E2 can sweep granularities over
one editing workload and measure the conflict-wait vs. lock-overhead
trade-off.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConcurrencyError

GRANULARITIES = ("document", "section", "paragraph", "sentence", "word")


class StructuredDocument:
    """A document with a regular section/paragraph/sentence/word shape."""

    def __init__(self, sections: int = 4, paragraphs_per_section: int = 5,
                 sentences_per_paragraph: int = 4,
                 words_per_sentence: int = 10) -> None:
        for value in (sections, paragraphs_per_section,
                      sentences_per_paragraph, words_per_sentence):
            if value < 1:
                raise ConcurrencyError("document shape values must be >= 1")
        self.sections = sections
        self.paragraphs_per_section = paragraphs_per_section
        self.sentences_per_paragraph = sentences_per_paragraph
        self.words_per_sentence = words_per_sentence

    @property
    def words_per_paragraph(self) -> int:
        return self.sentences_per_paragraph * self.words_per_sentence

    @property
    def words_per_section(self) -> int:
        return self.paragraphs_per_section * self.words_per_paragraph

    @property
    def total_words(self) -> int:
        return self.sections * self.words_per_section

    def unit_count(self, granularity: str) -> int:
        """How many lockable units exist at ``granularity``."""
        self._check(granularity)
        if granularity == "document":
            return 1
        if granularity == "section":
            return self.sections
        if granularity == "paragraph":
            return self.sections * self.paragraphs_per_section
        if granularity == "sentence":
            return (self.sections * self.paragraphs_per_section
                    * self.sentences_per_paragraph)
        return self.total_words

    def unit_size_words(self, granularity: str) -> int:
        """How many words one unit at ``granularity`` spans."""
        return self.total_words // self.unit_count(granularity)

    def unit_of(self, granularity: str, word_index: int) -> str:
        """The lock-unit id containing ``word_index`` at ``granularity``."""
        self._check(granularity)
        if not 0 <= word_index < self.total_words:
            raise ConcurrencyError(
                "word index {} out of range [0, {})".format(
                    word_index, self.total_words))
        unit = word_index // self.unit_size_words(granularity)
        return "{}:{}".format(granularity, unit)

    def units_for_span(self, granularity: str, start_word: int,
                       length: int) -> List[str]:
        """All lock units an edit of ``length`` words at ``start_word``
        must hold at ``granularity`` — the lock-overhead metric."""
        if length < 1:
            raise ConcurrencyError("span length must be >= 1")
        end_word = start_word + length - 1
        if end_word >= self.total_words:
            raise ConcurrencyError("span extends past the document")
        size = self.unit_size_words(granularity)
        first = start_word // size
        last = end_word // size
        return ["{}:{}".format(granularity, unit)
                for unit in range(first, last + 1)]

    def spans_conflict(self, granularity: str,
                       span_a: Tuple[int, int],
                       span_b: Tuple[int, int]) -> bool:
        """Would two (start, length) edits contend at ``granularity``?"""
        units_a = set(self.units_for_span(granularity, *span_a))
        units_b = set(self.units_for_span(granularity, *span_b))
        return bool(units_a & units_b)

    @staticmethod
    def _check(granularity: str) -> None:
        if granularity not in GRANULARITIES:
            raise ConcurrencyError(
                "unknown granularity: {}".format(granularity))
