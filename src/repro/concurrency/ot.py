"""Operation transformation for replicated text (GROVE, §4.2.1).

The paper: *"the group editor GROVE adopts a new form of concurrency
control based on operation transformations.  This allows operations to
proceed immediately to improve real-time response time."*

This module implements that mechanism with the server-ordered architecture
later proved correct for the Jupiter system: every site applies its own
operations immediately (zero response time); a sequencer site establishes
the canonical order and everyone transforms concurrent operations so all
replicas converge.  Operations are character-granularity inserts and
deletes, which keeps the transformation functions total (no splitting) and
the convergence property (TP1) easy to verify exhaustively.

Pure cores (:class:`OTServerCore`, :class:`OTClientCore`) carry the whole
algorithm network-free for property testing; :class:`OTServerSite` /
:class:`OTClientSite` wire them to simulated hosts.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConcurrencyError
from repro.net.network import Host
from repro.net.packet import Packet

OT_PORT = 30


class Insert:
    """Insert one character at a position."""

    __slots__ = ("pos", "char")

    def __init__(self, pos: int, char: str) -> None:
        if pos < 0:
            raise ConcurrencyError("insert position must be non-negative")
        if len(char) != 1:
            raise ConcurrencyError("Insert carries exactly one character")
        self.pos = pos
        self.char = char

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Insert) and \
            (self.pos, self.char) == (other.pos, other.char)

    def __repr__(self) -> str:
        return "Ins({}, {!r})".format(self.pos, self.char)


class Delete:
    """Delete the character at a position."""

    __slots__ = ("pos",)

    def __init__(self, pos: int) -> None:
        if pos < 0:
            raise ConcurrencyError("delete position must be non-negative")
        self.pos = pos

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Delete) and self.pos == other.pos

    def __repr__(self) -> str:
        return "Del({})".format(self.pos)


class Noop:
    """The identity operation (result of cancelling transforms)."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Noop)

    def __repr__(self) -> str:
        return "Noop()"


Op = Any  # Insert | Delete | Noop


def apply_op(text: str, op: Op) -> str:
    """Apply one operation to a text."""
    if isinstance(op, Noop):
        return text
    if isinstance(op, Insert):
        if op.pos > len(text):
            raise ConcurrencyError(
                "insert at {} beyond end {}".format(op.pos, len(text)))
        return text[:op.pos] + op.char + text[op.pos:]
    if isinstance(op, Delete):
        if op.pos >= len(text):
            raise ConcurrencyError(
                "delete at {} beyond end {}".format(op.pos, len(text)))
        return text[:op.pos] + text[op.pos + 1:]
    raise ConcurrencyError("unknown operation: {!r}".format(op))


def apply_ops(text: str, ops: List[Op]) -> str:
    """Apply a sequence of operations."""
    for op in ops:
        text = apply_op(text, op)
    return text


def xform(a: Op, b: Op, a_wins: bool) -> Op:
    """Transform ``a`` to apply after ``b`` (inclusion transformation).

    ``a_wins`` breaks insert-position ties deterministically; callers must
    derive it from a total order on sites (here: lexicographic site name).
    """
    if isinstance(a, Noop) or isinstance(b, Noop):
        return a
    if isinstance(a, Insert) and isinstance(b, Insert):
        if a.pos < b.pos or (a.pos == b.pos and a_wins):
            return a
        return Insert(a.pos + 1, a.char)
    if isinstance(a, Insert) and isinstance(b, Delete):
        if a.pos <= b.pos:
            return a
        return Insert(a.pos - 1, a.char)
    if isinstance(a, Delete) and isinstance(b, Insert):
        if a.pos < b.pos:
            return a
        return Delete(a.pos + 1)
    if isinstance(a, Delete) and isinstance(b, Delete):
        if a.pos < b.pos:
            return a
        if a.pos > b.pos:
            return Delete(a.pos - 1)
        return Noop()
    raise ConcurrencyError("cannot transform {!r} over {!r}".format(a, b))


def xform_sequences(ops_a: List[Op], ops_b: List[Op],
                    a_wins: bool) -> Tuple[List[Op], List[Op]]:
    """Transform two concurrent sequences over each other.

    Returns ``(A', B')`` with the guarantee (TP1) that applying
    ``A then B'`` and ``B then A'`` yield the same text.
    """
    ops_b = list(ops_b)
    out_a: List[Op] = []
    for a in ops_a:
        for i, b in enumerate(ops_b):
            a, ops_b[i] = xform(a, b, a_wins), xform(b, a, not a_wins)
        out_a.append(a)
    return out_a, ops_b


# -- pure protocol cores ------------------------------------------------------


class OTServerCore:
    """Sequencer state: canonical document, revision history."""

    def __init__(self, initial: str = "") -> None:
        self.text = initial
        #: history[i] = (site, ops) applied to produce revision i+1.
        self.history: List[Tuple[str, List[Op]]] = []

    @property
    def revision(self) -> int:
        return len(self.history)

    def receive(self, site: str, base_rev: int,
                ops: List[Op]) -> Tuple[int, List[Op]]:
        """Ingest ops based on ``base_rev``; returns (new_rev, ops')."""
        if not 0 <= base_rev <= self.revision:
            raise ConcurrencyError(
                "bad base revision {} (server at {})".format(
                    base_rev, self.revision))
        transformed = list(ops)
        for other_site, other_ops in self.history[base_rev:]:
            transformed, _ = xform_sequences(
                transformed, list(other_ops), a_wins=site < other_site)
        self.text = apply_ops(self.text, transformed)
        self.history.append((site, transformed))
        return self.revision, transformed


class OTClientCore:
    """One site: immediate local application, one in-flight batch.

    ``revision`` may be non-zero for a late joiner initialised from a
    server snapshot taken at that revision.
    """

    def __init__(self, site: str, initial: str = "",
                 revision: int = 0) -> None:
        self.site = site
        self.text = initial
        self.revision = revision
        self._inflight: Optional[List[Op]] = None
        self._queue: List[List[Op]] = []

    @property
    def has_unacked(self) -> bool:
        """True while local edits have not been sequenced."""
        return self._inflight is not None or bool(self._queue)

    def local_edit(self, ops: List[Op]) -> Optional[Tuple[int, List[Op]]]:
        """Apply locally (immediately) and return a send, if one is due.

        The return value is ``(base_rev, ops)`` to transmit to the server,
        or ``None`` when a batch is already in flight (the new ops queue).
        """
        self.text = apply_ops(self.text, ops)
        self._queue.append(list(ops))
        return self._maybe_send()

    def server_ack(self, new_rev: int) -> Optional[Tuple[int, List[Op]]]:
        """The in-flight batch was sequenced; returns the next send."""
        if self._inflight is None:
            raise ConcurrencyError("ack without an in-flight batch")
        self.revision = new_rev
        self._inflight = None
        return self._maybe_send()

    def server_remote(self, new_rev: int, origin: str,
                      ops: List[Op]) -> List[Op]:
        """A remote batch arrives; returns the ops applied locally."""
        incoming = list(ops)
        mine_wins = self.site < origin
        if self._inflight is not None:
            incoming, self._inflight = xform_sequences(
                incoming, self._inflight, a_wins=not mine_wins)
        for i, queued in enumerate(self._queue):
            incoming, self._queue[i] = xform_sequences(
                incoming, queued, a_wins=not mine_wins)
        self.text = apply_ops(self.text, incoming)
        self.revision = new_rev
        return incoming

    def _maybe_send(self) -> Optional[Tuple[int, List[Op]]]:
        if self._inflight is not None or not self._queue:
            return None
        self._inflight = self._queue.pop(0)
        return (self.revision, self._inflight)


# -- networked sites -----------------------------------------------------------


class OTServerSite:
    """The sequencer attached to a host.

    The server listens on ``port``; clients listen on ``port + 1`` —
    distinct ports let a client replica co-reside with the sequencer on
    one host.
    """

    def __init__(self, host: Host, initial: str = "",
                 port: int = OT_PORT) -> None:
        self.core = OTServerCore(initial)
        self.host = host
        self.env = host.env
        self.port = port
        self.clients: List[str] = []
        host.on_packet(port, self._on_packet)

    def register(self, client_node: str) -> None:
        """Admit a client site (it will receive remote broadcasts)."""
        if client_node not in self.clients:
            self.clients.append(client_node)

    def snapshot(self) -> Tuple[str, int]:
        """(text, revision) for initialising a late-joining client."""
        return (self.core.text, self.core.revision)

    def _on_packet(self, packet: Packet) -> None:
        message = packet.payload
        if message.get("type") != "op":
            return
        new_rev, transformed = self.core.receive(
            message["site"], message["base_rev"], message["ops"])
        self.host.send(packet.src, port=self.port + 1, size=64,
                       payload={"type": "ack", "rev": new_rev})
        for client in self.clients:
            if client != packet.src:
                self.host.send(client, port=self.port + 1, size=128,
                               payload={"type": "remote", "rev": new_rev,
                                        "origin": message["site"],
                                        "ops": transformed})


class OTClientSite:
    """A collaborating site attached to a host."""

    def __init__(self, host: Host, server_node: str, initial: str = "",
                 port: int = OT_PORT,
                 on_remote: Optional[Callable[[List[Op]], None]] = None,
                 revision: int = 0) -> None:
        self.core = OTClientCore(host.name, initial, revision=revision)
        self.host = host
        self.env = host.env
        self.server_node = server_node
        self.port = port
        self.on_remote = on_remote
        #: (time, kind) log for response/notification measurements.
        self.applied_log: List[Tuple[float, str]] = []
        host.on_packet(port + 1, self._on_packet)

    @property
    def text(self) -> str:
        """The site's current (immediately responsive) view."""
        return self.core.text

    def edit(self, ops: List[Op]) -> None:
        """Perform a local edit; the user sees it instantly."""
        self.applied_log.append((self.env.now, "local"))
        self._transmit(self.core.local_edit(ops))

    def insert(self, pos: int, text: str) -> None:
        """Convenience: insert a string as successive character ops."""
        self.edit([Insert(pos + i, ch) for i, ch in enumerate(text)])

    def delete(self, pos: int, count: int = 1) -> None:
        """Convenience: delete ``count`` characters at ``pos``."""
        self.edit([Delete(pos) for _ in range(count)])

    def _transmit(self, send: Optional[Tuple[int, List[Op]]]) -> None:
        if send is None:
            return
        base_rev, ops = send
        self.host.send(self.server_node, port=self.port, size=128,
                       payload={"type": "op", "site": self.core.site,
                                "base_rev": base_rev, "ops": ops})

    def _on_packet(self, packet: Packet) -> None:
        message = packet.payload
        kind = message.get("type")
        if kind == "ack":
            self._transmit(self.core.server_ack(message["rev"]))
        elif kind == "remote":
            applied = self.core.server_remote(
                message["rev"], message["origin"], message["ops"])
            self.applied_log.append((self.env.now, "remote"))
            if self.on_remote is not None:
                self.on_remote(applied)
