"""Lock styles for group work: hard, tickle, soft and notification locks.

§4.2.1 of the paper: *"a number of researchers have proposed alternative
styles of locking to increase the flexibility of transaction mechanisms,
e.g. tickle locks [Greif & Sarin], soft locks [Cognoter] and notification
locks [Hornick & Zdonik]"*.  This module implements all four styles over
one lock table so experiment E3 can sweep them against the same workload:

* **hard** — classic blocking locks (shared/exclusive compatibility, FIFO
  queue); the transaction baseline builds on these.
* **tickle** — a blocked requester "tickles" the holder; if the holder has
  been idle longer than a grace period the lock transfers immediately,
  otherwise the requester waits.  Holders are notified of takeovers.
* **soft** — advisory: acquisition always succeeds instantly; conflicting
  holders are flagged to each other so the *social protocol* resolves it.
* **notification** — writers exclude only writers; readers are always
  admitted and subscribe to change notifications ("reading over the
  shoulder").
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set

from repro.analysis.hb import get_sanitizer
from repro.errors import LockError
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.sim import Counter, Environment, Event


def _flight_of(env: Environment):
    """The environment's flight recorder when lock journaling is on."""
    flight = env._flight
    if flight is not None and flight.journal_locks:
        return flight
    return None

SHARED = "shared"
EXCLUSIVE = "exclusive"

HARD = "hard"
TICKLE = "tickle"
SOFT = "soft"
NOTIFICATION = "notification"

STYLES = (HARD, TICKLE, SOFT, NOTIFICATION)


class LockGrant:
    """A live hold on an item; returned by every successful acquire."""

    def __init__(self, table: "LockTable", key: str, owner: str,
                 mode: str, granted_at: float) -> None:
        # Grant ids come from the owning table, so they are reproducible
        # per experiment (a module-level counter would leak state across
        # experiments sharing one process).
        self.grant_id = next(table._grant_seq)
        self.table = table
        self.key = key
        self.owner = owner
        self.mode = mode
        self.granted_at = granted_at
        self.last_activity = granted_at
        self.revoked = False
        #: Set for soft locks held concurrently with a conflicting grant.
        self.conflicting = False

    def touch(self) -> None:
        """Record holder activity (defends a tickle takeover)."""
        self.last_activity = self.table.env.now

    def release(self) -> None:
        """Give the lock back."""
        self.table.release(self)

    def __repr__(self) -> str:
        return "<LockGrant {} {} by {}>".format(
            self.key, self.mode, self.owner)


class _Waiter:
    """A queued acquire (or in-place upgrade) request."""

    __slots__ = ("owner", "mode", "event", "enqueued_at", "upgrade_of",
                 "span")

    def __init__(self, owner: str, mode: str, event: Event,
                 enqueued_at: float,
                 upgrade_of: Optional[LockGrant] = None) -> None:
        self.owner = owner
        self.mode = mode
        self.event = event
        self.enqueued_at = enqueued_at
        self.upgrade_of = upgrade_of
        #: ``lock.acquire`` span covering the queued wait (tracing only).
        self.span = None


class LockTable:
    """All locks over one shared store, in one of the four styles."""

    def __init__(self, env: Environment, style: str = HARD,
                 tickle_grace: float = 2.0) -> None:
        if style not in STYLES:
            raise LockError("unknown lock style: " + style)
        if tickle_grace < 0:
            raise LockError("tickle_grace must be non-negative")
        self.env = env
        self.style = style
        self.tickle_grace = tickle_grace
        self._grant_seq = itertools.count(1)
        self._held: Dict[str, List[LockGrant]] = {}
        self._queues: Dict[str, List[_Waiter]] = {}
        self._watchers: Dict[str, List[Callable[[str, str, str], None]]] = {}
        self.counters = Counter()
        #: Called with (grant, taker) when a tickle takeover revokes a hold.
        self.on_takeover: Optional[Callable[[LockGrant, str], None]] = None
        #: Called with (grant, other_owner) when soft locks conflict.
        self.on_conflict: Optional[Callable[[LockGrant, str], None]] = None

    # -- public API ----------------------------------------------------------

    def acquire(self, key: str, owner: str, mode: str = EXCLUSIVE) -> Event:
        """Request a lock; the event fires with the LockGrant."""
        if mode not in (SHARED, EXCLUSIVE):
            raise LockError("unknown mode: " + mode)
        event = self.env.event()
        self.counters.incr("requests")
        if self.style == SOFT:
            self._grant_soft(key, owner, mode, event)
            self._record_wait(0.0)
            return event
        if self.style == NOTIFICATION and mode == SHARED:
            # Readers are always admitted under notification locks.
            grant = self._install(key, owner, SHARED)
            self.counters.incr("grants")
            event.succeed(grant)
            self._record_wait(0.0)
            return event
        if self._compatible(key, owner, mode):
            grant = self._install(key, owner, mode)
            self.counters.incr("grants")
            event.succeed(grant)
            self._record_wait(0.0)
            return event
        if self.style == TICKLE and self._tickle(key, owner, mode, event):
            self._record_wait(0.0)
            return event
        self.counters.incr("waits")
        waiter = _Waiter(owner, mode, event, self.env.now)
        self._open_wait_span(waiter, key)
        self._queues.setdefault(key, []).append(waiter)
        return event

    def release(self, grant: LockGrant) -> None:
        """Release a grant and promote compatible waiters."""
        held = self._held.get(grant.key, [])
        if grant not in held:
            raise LockError("grant is not held: {!r}".format(grant))
        held.remove(grant)
        # Hand-off edge: whoever acquires this key next is causally
        # ordered after everything the releasing holder did.
        get_sanitizer().release("lock:" + grant.key, grant.owner)
        flight = _flight_of(self.env)
        if flight is not None:
            flight.record_lock("release", grant.key, grant.owner,
                               grant.mode, self.style)
        self._refresh_conflicts(grant.key)
        self._promote(grant.key)

    def upgrade(self, grant: LockGrant) -> Event:
        """Convert a shared grant to exclusive without releasing it.

        Unlike release-then-reacquire, the holder keeps its shared lock
        while waiting, preserving two-phase locking (no other writer can
        slip in between).  Two concurrent upgraders therefore deadlock —
        callers (the transaction manager) detect and abort one.
        """
        if grant.mode == EXCLUSIVE:
            raise LockError("grant is already exclusive")
        held = self._held.get(grant.key, [])
        if grant not in held:
            raise LockError("grant is not held: {!r}".format(grant))
        event = self.env.event()
        others = [h for h in held if h.owner != grant.owner]
        if not others:
            grant.mode = EXCLUSIVE
            self.counters.incr("upgrades")
            event.succeed(grant)
            self._record_wait(0.0)
        else:
            self.counters.incr("waits")
            # Upgraders queue at the front so no later writer overtakes.
            waiter = _Waiter(grant.owner, EXCLUSIVE, event, self.env.now,
                             upgrade_of=grant)
            self._open_wait_span(waiter, grant.key)
            self._queues.setdefault(grant.key, []).insert(0, waiter)
        return event

    def cancel_wait(self, key: str, event: Event) -> bool:
        """Withdraw a queued acquire (e.g. on deadlock abort)."""
        queue = self._queues.get(key, [])
        for waiter in queue:
            if waiter.event is event:
                queue.remove(waiter)
                self._close_wait_span(waiter, "cancelled")
                self.counters.incr("cancelled")
                return True
        return False

    def holders(self, key: str) -> List[LockGrant]:
        """Current grants on ``key``."""
        return list(self._held.get(key, []))

    def queue_length(self, key: str) -> int:
        """Requests currently waiting on ``key``."""
        return len(self._queues.get(key, []))

    def is_held(self, key: str) -> bool:
        return bool(self._held.get(key))

    def watch(self, key: str,
              callback: Callable[[str, str, str], None]) -> None:
        """Notification locks: subscribe to writes on ``key``.

        The callback receives ``(key, writer, kind)``.
        """
        self._watchers.setdefault(key, []).append(callback)

    def notify_write(self, key: str, writer: str) -> int:
        """Notification-lock write signal; returns watchers notified."""
        notified = 0
        for callback in self._watchers.get(key, []):
            callback(key, writer, "write")
            notified += 1
        # Shared holders other than the writer also learn of the change.
        for grant in self._held.get(key, []):
            if grant.mode == SHARED and grant.owner != writer:
                notified += 1
        if notified:
            self.counters.incr("notifications", notified)
        return notified

    # -- internals -------------------------------------------------------------

    def _open_wait_span(self, waiter: _Waiter, key: str) -> None:
        """Open a ``lock.acquire`` span covering a queued wait.

        Immediate grants are not spanned (they would all be zero-width);
        the contended tail is what the sim-time profiler's flame graph
        needs to show.  The span parents under the requesting process's
        actor span when the process was named (``env.process(name=...)``),
        so per-actor profiles attribute lock waits to their actor.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        waiter.span = tracer.start_span(
            "lock.acquire", at=self.env.now,
            parent=getattr(self.env.active_process, "span", None),
            key=key, owner=waiter.owner, mode=waiter.mode,
            style=self.style)

    def _close_wait_span(self, waiter: _Waiter, status: str = "ok") -> None:
        if waiter.span is not None:
            if status != "ok":
                waiter.span.set_status(status)
            waiter.span.finish(at=self.env.now)

    def _record_wait(self, waited: float) -> None:
        """Feed the acquire→grant delay into the metrics registry.

        Immediate grants record 0.0 so the histogram reflects the full
        distribution, not just the contended tail.
        """
        get_metrics().histogram("lock.wait", style=self.style) \
            .record(waited)

    def _compatible(self, key: str, owner: str, mode: str) -> bool:
        holders = self._held.get(key, [])
        if not holders:
            return True
        if self.style == NOTIFICATION:
            # Writers exclude only other owners' writers.
            return all(h.mode == SHARED or h.owner == owner
                       for h in holders)
        if mode == SHARED:
            return all(h.mode == SHARED for h in holders)
        return all(h.owner == owner for h in holders)

    def _install(self, key: str, owner: str, mode: str) -> LockGrant:
        get_sanitizer().acquire("lock:" + key, owner)
        grant = LockGrant(self, key, owner, mode, self.env.now)
        self._held.setdefault(key, []).append(grant)
        flight = _flight_of(self.env)
        if flight is not None:
            flight.record_lock(
                "grant", key, owner, mode, self.style,
                span=getattr(self.env.active_process, "span", None))
        return grant

    def _grant_soft(self, key: str, owner: str, mode: str,
                    event: Event) -> None:
        grant = self._install(key, owner, mode)
        self.counters.incr("grants")
        self._refresh_conflicts(key)
        event.succeed(grant)

    def _refresh_conflicts(self, key: str) -> None:
        if self.style != SOFT:
            return
        holders = self._held.get(key, [])
        writers = [h for h in holders if h.mode == EXCLUSIVE]
        conflicted = len(writers) > 1 or (writers and len(holders) > 1)
        for holder in holders:
            newly = conflicted and not holder.conflicting
            holder.conflicting = conflicted
            if newly:
                self.counters.incr("conflicts")
                if self.on_conflict is not None:
                    others = [h.owner for h in holders if h is not holder]
                    self.on_conflict(holder,
                                     others[0] if others else "")

    def _tickle(self, key: str, owner: str, mode: str,
                event: Event) -> bool:
        """Attempt a tickle takeover; True if the lock transferred."""
        holders = self._held.get(key, [])
        now = self.env.now
        if not holders:
            return False
        if all(now - h.last_activity >= self.tickle_grace for h in holders):
            flight = _flight_of(self.env)
            for holder in list(holders):
                holder.revoked = True
                holders.remove(holder)
                # A takeover is a forced hand-off: the taker is ordered
                # after the revoked holder's work so far.
                get_sanitizer().release("lock:" + key, holder.owner)
                if flight is not None:
                    flight.record_lock("revoke", key, holder.owner,
                                       holder.mode, self.style)
                if self.on_takeover is not None:
                    self.on_takeover(holder, owner)
            grant = self._install(key, owner, mode)
            self.counters.incr("grants")
            self.counters.incr("takeovers")
            event.succeed(grant)
            return True
        return False

    def _promote(self, key: str) -> None:
        queue = self._queues.get(key, [])
        while queue:
            waiter = queue[0]
            if waiter.upgrade_of is not None:
                held = self._held.get(key, [])
                if waiter.upgrade_of not in held:
                    # The underlying grant was released while waiting.
                    queue.pop(0)
                    self._close_wait_span(waiter, "cancelled")
                    waiter.event.defuse()
                    continue
                if any(h.owner != waiter.owner for h in held):
                    break
                queue.pop(0)
                waiter.upgrade_of.mode = EXCLUSIVE
                self.counters.incr("upgrades")
                self._record_wait(self.env.now - waiter.enqueued_at)
                self._close_wait_span(waiter)
                waiter.event.succeed(waiter.upgrade_of)
                continue
            if not self._compatible(key, waiter.owner, waiter.mode):
                break
            queue.pop(0)
            grant = self._install(key, waiter.owner, waiter.mode)
            self.counters.incr("grants")
            self._record_wait(self.env.now - waiter.enqueued_at)
            self._close_wait_span(waiter)
            waiter.event.succeed(grant)
