"""Reservation-based concurrency control (§4.2.1).

The paper: *"Other real-time applications have tackled the issue of
concurrency control through the use of reservation.  Conferencing systems
often use a floor passing approach... Reservation is only suitable however
for approaches that do not want to interleave operations."*

:class:`ReservationControl` serialises *all* operations behind a single
reservation (the floor): only the holder may operate.  It is the third arm
of experiment E1 — perfect consistency, no interleaving, and response time
that includes the wait for the floor.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FloorControlError
from repro.sim import Counter, Environment, Event


class ReservationControl:
    """A single floor governing access to a shared artefact."""

    def __init__(self, env: Environment, name: str = "floor") -> None:
        self.env = env
        self.name = name
        self.holder: Optional[str] = None
        self._queue: List[tuple] = []
        self.counters = Counter()

    def request(self, member: str) -> Event:
        """Ask for the reservation; fires (with the member name) on grant."""
        event = self.env.event()
        self.counters.incr("requests")
        if self.holder is None:
            self.holder = member
            self.counters.incr("grants")
            event.succeed(member)
        else:
            self._queue.append((member, event, self.env.now))
        return event

    def release(self, member: str) -> None:
        """Give up the reservation; the next waiter (FIFO) gets it."""
        if self.holder != member:
            raise FloorControlError(
                "{} does not hold {}".format(member, self.name))
        self.holder = None
        if self._queue:
            next_member, event, _ = self._queue.pop(0)
            self.holder = next_member
            self.counters.incr("grants")
            event.succeed(next_member)

    def holds(self, member: str) -> bool:
        """True if ``member`` currently holds the reservation."""
        return self.holder == member

    def check(self, member: str) -> None:
        """Raise unless ``member`` holds the reservation."""
        if not self.holds(member):
            raise FloorControlError(
                "operation by {} without the reservation".format(member))

    @property
    def queue_length(self) -> int:
        return len(self._queue)
