"""Groupware concurrency control: every mechanism §4.2.1 surveys.

* :mod:`~repro.concurrency.store` — the shared information space.
* :mod:`~repro.concurrency.transactions` — the serialisable baseline
  (Figure 2a's "walls").
* :mod:`~repro.concurrency.locks` — hard, tickle, soft and notification
  lock styles over one lock table.
* :mod:`~repro.concurrency.txgroups` — Skarra & Zdonik transaction groups
  with tailorable access rules.
* :mod:`~repro.concurrency.ot` — GROVE-style operation transformation
  (immediate response, convergent replicas).
* :mod:`~repro.concurrency.reservation` — floor-passing reservation.
* :mod:`~repro.concurrency.granularity` — the section/paragraph/sentence/
  word lock-granularity trade-off.
"""

from repro.concurrency.granularity import GRANULARITIES, StructuredDocument
from repro.concurrency.locks import (
    EXCLUSIVE,
    HARD,
    LockGrant,
    LockTable,
    NOTIFICATION,
    SHARED,
    SOFT,
    STYLES,
    TICKLE,
)
from repro.concurrency.ot import (
    Delete,
    Insert,
    Noop,
    OTClientCore,
    OTClientSite,
    OTServerCore,
    OTServerSite,
    OT_PORT,
    apply_op,
    apply_ops,
    xform,
    xform_sequences,
)
from repro.concurrency.reservation import ReservationControl
from repro.concurrency.store import DataItem, SharedStore
from repro.concurrency.transactions import (
    ABORTED,
    ACTIVE,
    COMMITTED,
    Transaction,
    TransactionManager,
)
from repro.concurrency.txgroups import (
    AccessRule,
    READ,
    TransactionGroup,
    WRITE,
    cooperative_rule,
    free_rule,
    serialisable_rule,
)

__all__ = [
    "ABORTED",
    "ACTIVE",
    "AccessRule",
    "COMMITTED",
    "DataItem",
    "Delete",
    "EXCLUSIVE",
    "GRANULARITIES",
    "HARD",
    "Insert",
    "LockGrant",
    "LockTable",
    "NOTIFICATION",
    "Noop",
    "OTClientCore",
    "OTClientSite",
    "OTServerCore",
    "OTServerSite",
    "OT_PORT",
    "READ",
    "ReservationControl",
    "SHARED",
    "SOFT",
    "STYLES",
    "SharedStore",
    "StructuredDocument",
    "TICKLE",
    "Transaction",
    "TransactionGroup",
    "TransactionManager",
    "WRITE",
    "apply_op",
    "apply_ops",
    "cooperative_rule",
    "free_rule",
    "serialisable_rule",
    "xform",
    "xform_sequences",
]
