"""A shared information store: the data that groups cooperate over.

The store is deliberately simple — named items with versioned values —
because the paper's §4.2.1 argument is about the *access disciplines*
layered on top (transactions, lock styles, transaction groups, operation
transformation), not about the storage itself.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.hb import get_sanitizer
from repro.errors import ConcurrencyError


class DataItem:
    """A single shared item: a value with a version counter."""

    __slots__ = ("key", "value", "version", "last_writer", "last_write_at")

    def __init__(self, key: str, value: Any = None) -> None:
        self.key = key
        self.value = value
        self.version = 0
        self.last_writer: Optional[str] = None
        self.last_write_at = 0.0

    def __repr__(self) -> str:
        return "<DataItem {} v{}>".format(self.key, self.version)


class SharedStore:
    """A collection of shared items with change subscription.

    Subscribers receive ``(key, value, version, writer)`` on every write —
    this is the raw feed the awareness mechanisms (Figure 2b) build on.
    """

    def __init__(self, name: str = "store",
                 keep_history: bool = False) -> None:
        self.name = name
        self._items: Dict[str, DataItem] = {}
        self._subscribers: List[Callable[[str, Any, int, str], None]] = []
        self.reads = 0
        self.writes = 0
        #: With keep_history, every write is recorded — the *public
        #: history* that §2.3 identifies as the basis of accountability
        #: in collective work.
        self.keep_history = keep_history
        self._history: List[Tuple[float, str, Any, int, str]] = []

    def create(self, key: str, value: Any = None) -> DataItem:
        """Create an item (error if it exists)."""
        if key in self._items:
            raise ConcurrencyError("item {} already exists".format(key))
        item = DataItem(key, value)
        self._items[key] = item
        return item

    def ensure(self, key: str, value: Any = None) -> DataItem:
        """Fetch the item, creating it if missing."""
        if key not in self._items:
            self._items[key] = DataItem(key, value)
        return self._items[key]

    def item(self, key: str) -> DataItem:
        """Fetch an existing item."""
        try:
            return self._items[key]
        except KeyError:
            raise ConcurrencyError("no item named {}".format(key))

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def keys(self) -> List[str]:
        return list(self._items)

    def read(self, key: str, reader: str = "", at: float = 0.0) -> Any:
        """Read an item's current value."""
        self.reads += 1
        get_sanitizer().on_read(
            "{}/{}".format(self.name, key), reader, at)
        return self.item(key).value

    def write(self, key: str, value: Any, writer: str = "",
              at: float = 0.0) -> int:
        """Write an item; returns the new version and notifies subscribers."""
        get_sanitizer().on_write(
            "{}/{}".format(self.name, key), writer, at)
        item = self.ensure(key)
        item.value = value
        item.version += 1
        item.last_writer = writer
        item.last_write_at = at
        self.writes += 1
        if self.keep_history:
            self._history.append((at, key, value, item.version, writer))
        for subscriber in list(self._subscribers):
            subscriber(key, value, item.version, writer)
        return item.version

    def subscribe(self,
                  callback: Callable[[str, Any, int, str], None]) -> None:
        """Receive every write as it happens."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        """Stop receiving writes."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def snapshot(self) -> Dict[str, Tuple[Any, int]]:
        """All items as {key: (value, version)}."""
        return {key: (item.value, item.version)
                for key, item in self._items.items()}

    def history(self, key: Optional[str] = None,
                writer: Optional[str] = None
                ) -> List[Tuple[float, str, Any, int, str]]:
        """The public write history (requires ``keep_history``).

        Each entry is ``(at, key, value, version, writer)``; filterable
        by key and/or writer — "who did what, when" at a glance.
        """
        if not self.keep_history:
            raise ConcurrencyError(
                "store {} was created without keep_history".format(
                    self.name))
        return [entry for entry in self._history
                if (key is None or entry[1] == key)
                and (writer is None or entry[4] == writer)]
