"""Real-time synchronisation of media activities (§4.2.2-iii).

The paper identifies two styles: *"event driven synchronisation where it
is necessary to initiate an action (such as displaying a caption) at a
particular point in time and, secondly, continuous synchronisation, where
data presentation devices must be tied together so that they consume data
in fixed ratios (e.g. in lip synchronisation)"*.

:class:`EventSynchroniser` fires registered actions when a stream's
playout position crosses each media time.  :class:`ContinuousSynchroniser`
ties a slave sink to a master sink, correcting the slave whenever the
inter-stream skew exceeds a bound (lip-sync tolerance ≈ 80 ms).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import StreamError
from repro.sim import Counter, Environment, Tally
from repro.streams.media import Frame, MediaSink


class EventSynchroniser:
    """Fire actions at points on a stream's media timeline."""

    def __init__(self, sink: MediaSink) -> None:
        self.sink = sink
        #: (media_time, action, fired?) sorted by media_time.
        self._cues: List[List] = []
        self.fired: List[Tuple[float, float]] = []
        sink.on_play(self._check)

    def at(self, media_time: float,
           action: Callable[[], None]) -> None:
        """Run ``action`` once playout reaches ``media_time``."""
        if media_time < 0:
            raise StreamError("media_time must be non-negative")
        self._cues.append([media_time, action, False])
        self._cues.sort(key=lambda cue: cue[0])

    @property
    def pending(self) -> int:
        return sum(1 for cue in self._cues if not cue[2])

    def _check(self, frame: Frame) -> None:
        for cue in self._cues:
            media_time, action, fired = cue
            if fired or media_time > self.sink.position:
                continue
            cue[2] = True
            self.fired.append((media_time, frame.played_at))
            action()


class ContinuousSynchroniser:
    """Keep a slave stream within ``bound`` seconds of a master stream.

    Every ``check_interval`` the skew (master position − slave position)
    is sampled; beyond the bound, the slave's playout position is snapped
    to the master's (a skip forward or a hold back — the mechanics a real
    device achieves by dropping or repeating frames).
    """

    def __init__(self, env: Environment, master: MediaSink,
                 slave: MediaSink, bound: float = 0.08,
                 check_interval: float = 0.2) -> None:
        if bound <= 0 or check_interval <= 0:
            raise StreamError("bound and check_interval must be positive")
        self.env = env
        self.master = master
        self.slave = slave
        self.bound = bound
        self.check_interval = check_interval
        self.skew_samples = Tally("skew")
        self.max_abs_skew = 0.0
        self.counters = Counter()
        self.running = True
        self.process = env.process(self._run())

    def stop(self) -> None:
        self.running = False

    def current_skew(self) -> float:
        """Instantaneous master-minus-slave playout skew."""
        return self.master.position - self.slave.position

    def _run(self):
        while self.running:
            yield self.env.timeout(self.check_interval)
            skew = self.current_skew()
            self.skew_samples.record(skew)
            self.max_abs_skew = max(self.max_abs_skew, abs(skew))
            self.counters.incr("checks")
            if abs(skew) > self.bound:
                self.counters.incr("corrections")
                self.slave.sync_adjust(self.master.position)


def measure_drift(env: Environment, master: MediaSink, slave: MediaSink,
                  duration: float, check_interval: float = 0.2) -> Tally:
    """Sample skew without correcting (the E8 no-sync baseline)."""
    tally = Tally("uncorrected-skew")

    def sampler(env):
        elapsed = 0.0
        while elapsed < duration:
            yield env.timeout(check_interval)
            elapsed += check_interval
            tally.record(master.position - slave.position)

    env.process(sampler(env))
    return tally
