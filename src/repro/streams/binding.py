"""Stream interfaces and explicit bindings (§4.2.2-i, §4.2.2-iv).

The draft ODP extensions the paper reports — *"extensions have been made
in terms of stream interfaces and stream bindings"* — are realised here:
a :class:`StreamBinding` is a first-class object connecting one source
host to one sink host, optionally under a QoS contract (whose reservation
buys elevated packet priority); a :class:`GroupStreamBinding` connects a
source to a multicast group, "if a video source is to be displayed in a
number of distinct video windows simultaneously".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import StreamError
from repro.net.multicast import MulticastService
from repro.net.network import (
    BEST_EFFORT_PRIORITY,
    Network,
    RESERVED_PRIORITY,
)
from repro.net.packet import Packet
from repro.qos.monitor import QoSMonitor
from repro.qos.params import QoSContract
from repro.sim import Counter
from repro.streams.media import Frame, MediaSink

STREAM_PORT = 40


class StreamBinding:
    """An explicit point-to-point binding for one media flow."""

    def __init__(self, network: Network, src: str, dst: str,
                 port: int = STREAM_PORT,
                 contract: Optional[QoSContract] = None,
                 monitor: Optional[QoSMonitor] = None) -> None:
        if src == dst:
            raise StreamError("source and sink must differ")
        self.network = network
        self.env = network.env
        self.src = src
        self.dst = dst
        self.port = port
        self.contract = contract
        self.monitor = monitor
        self.sink: Optional[MediaSink] = None
        self.counters = Counter()
        self._src_host = network.host(src)
        network.host(dst).on_packet(port, self._on_packet)

    @property
    def priority(self) -> int:
        """Reserved flows pre-empt best-effort traffic on each link."""
        if self.contract is not None and self.contract.is_active:
            return RESERVED_PRIORITY
        return BEST_EFFORT_PRIORITY

    def attach_sink(self, sink: MediaSink) -> None:
        """Terminate the binding at a media sink."""
        self.sink = sink

    def send_frame(self, frame: Frame) -> None:
        """Carry one frame across the network (the source's transmit)."""
        self.counters.incr("frames_sent")
        self._src_host.send(self.dst, payload=frame, size=frame.size,
                            port=self.port,
                            headers={"priority": self.priority})

    def _on_packet(self, packet: Packet) -> None:
        frame = packet.payload
        if not isinstance(frame, Frame):
            return
        self.counters.incr("frames_received")
        if self.monitor is not None:
            self.monitor.record_frame(frame.created_at, self.env.now,
                                      frame.size)
        if self.sink is not None:
            self.sink.receive(frame)


class GroupStreamBinding:
    """One source bound to every member of a multicast group."""

    def __init__(self, network: Network, multicast: MulticastService,
                 group_name: str, src: str,
                 port: int = STREAM_PORT + 1) -> None:
        self.network = network
        self.env = network.env
        self.multicast = multicast
        self.group_name = group_name
        self.src = src
        self.port = port
        self.sinks: Dict[str, MediaSink] = {}
        self.counters = Counter()

    def attach_sink(self, member: str, sink: MediaSink) -> None:
        """Terminate the group binding at ``member``'s sink."""
        group = self.multicast.groups.get(self.group_name)
        if group is None or member not in group:
            raise StreamError(
                "{} is not in group {}".format(member, self.group_name))
        self.sinks[member] = sink
        self.network.host(member).on_packet(self.port, self._make_handler(
            member))

    def send_frame(self, frame: Frame) -> None:
        """Multicast one frame to the whole group."""
        self.counters.incr("frames_sent")
        self.multicast.send(self.group_name, self.src, payload=frame,
                            size=frame.size, port=self.port)

    def _make_handler(self, member: str):
        def handler(packet: Packet) -> None:
            frame = packet.payload
            if isinstance(frame, Frame) and member in self.sinks:
                self.counters.incr("frames_received")
                self.sinks[member].receive(frame)
        return handler
