"""Continuous media: frames, sources/sinks, bindings, synchronisation."""

from repro.streams.binding import (
    GroupStreamBinding,
    STREAM_PORT,
    StreamBinding,
)
from repro.streams.interfaces import (
    AUDIO,
    CONSUMER,
    DATA,
    MEDIA_TYPES,
    PRODUCER,
    StreamInterface,
    VIDEO,
    bind_interfaces,
    check_compatibility,
)
from repro.streams.media import (
    ARRIVAL,
    DEADLINE,
    Frame,
    MediaSink,
    MediaSource,
)
from repro.streams.sync import (
    ContinuousSynchroniser,
    EventSynchroniser,
    measure_drift,
)

__all__ = [
    "ARRIVAL",
    "AUDIO",
    "CONSUMER",
    "DATA",
    "MEDIA_TYPES",
    "PRODUCER",
    "StreamInterface",
    "VIDEO",
    "bind_interfaces",
    "check_compatibility",
    "ContinuousSynchroniser",
    "DEADLINE",
    "EventSynchroniser",
    "Frame",
    "GroupStreamBinding",
    "MediaSink",
    "MediaSource",
    "STREAM_PORT",
    "StreamBinding",
    "measure_drift",
]
