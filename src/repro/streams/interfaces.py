"""Stream interfaces with QoS annotations and compatibility checking.

§4.2.2: *"The draft standards also include text on quality of service
annotations of interfaces... further research is needed to identify
approaches for the expression of quality of service properties and
compatibility checking between these properties."*

A :class:`StreamInterface` declares a direction (producer/consumer), a
media type and a QoS annotation: producers state what they **offer**,
consumers state what they **require**.  :func:`check_compatibility`
verifies a proposed binding; :func:`bind_interfaces` performs the checked
bind, reserves the flow with the QoS broker when one is supplied, and
returns a live :class:`~repro.streams.binding.StreamBinding`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import BindingError, QoSNegotiationFailed
from repro.net.network import Network
from repro.qos.broker import QoSBroker
from repro.qos.params import QoSParameters
from repro.streams.binding import StreamBinding

PRODUCER = "producer"
CONSUMER = "consumer"

AUDIO = "audio"
VIDEO = "video"
DATA = "data"

MEDIA_TYPES = (AUDIO, VIDEO, DATA)


class StreamInterface:
    """A typed, QoS-annotated stream endpoint on a node."""

    def __init__(self, name: str, node: str, direction: str,
                 media_type: str, qos: QoSParameters) -> None:
        if direction not in (PRODUCER, CONSUMER):
            raise BindingError("unknown direction: " + direction)
        if media_type not in MEDIA_TYPES:
            raise BindingError("unknown media type: " + media_type)
        self.name = name
        self.node = node
        self.direction = direction
        self.media_type = media_type
        #: Producer: the level offered.  Consumer: the level required.
        self.qos = qos

    def __repr__(self) -> str:
        return "<StreamInterface {} {} {} at {}>".format(
            self.name, self.direction, self.media_type, self.node)


def check_compatibility(producer: StreamInterface,
                        consumer: StreamInterface) -> List[str]:
    """All reasons the proposed binding is ill-formed (empty = OK).

    Checks: direction pairing, media-type agreement, and QoS
    compatibility (the offered level must satisfy the required level on
    every axis).
    """
    problems: List[str] = []
    if producer.direction != PRODUCER:
        problems.append("{} is not a producer".format(producer.name))
    if consumer.direction != CONSUMER:
        problems.append("{} is not a consumer".format(consumer.name))
    if producer.media_type != consumer.media_type:
        problems.append(
            "media types differ: {} vs {}".format(
                producer.media_type, consumer.media_type))
    if problems:
        return problems
    required = consumer.qos
    offered = producer.qos
    if offered.throughput < required.throughput:
        problems.append(
            "offered throughput {:.3g} < required {:.3g}".format(
                offered.throughput, required.throughput))
    if offered.latency > required.latency:
        problems.append(
            "offered latency {:.3g} > required {:.3g}".format(
                offered.latency, required.latency))
    if offered.jitter > required.jitter:
        problems.append(
            "offered jitter {:.3g} > required {:.3g}".format(
                offered.jitter, required.jitter))
    if offered.loss > required.loss:
        problems.append(
            "offered loss {:.3g} > required {:.3g}".format(
                offered.loss, required.loss))
    return problems


def bind_interfaces(network: Network, producer: StreamInterface,
                    consumer: StreamInterface,
                    broker: Optional[QoSBroker] = None,
                    port: int = 45) -> StreamBinding:
    """Create a checked (and, with a broker, admitted) stream binding.

    Raises :class:`BindingError` on any incompatibility, and propagates
    :class:`QoSNegotiationFailed` when the broker cannot carry the
    consumer's required level.
    """
    problems = check_compatibility(producer, consumer)
    if problems:
        raise BindingError(
            "cannot bind {} -> {}: {}".format(
                producer.name, consumer.name, "; ".join(problems)))
    contract = None
    monitor = None
    if broker is not None:
        contract = broker.negotiate(producer.node, consumer.node,
                                    consumer.qos)
    return StreamBinding(network, producer.node, consumer.node,
                         port=port, contract=contract, monitor=monitor)
