"""Continuous-media sources and sinks (§4.2.2-i).

*"Continuous media (e.g. video and audio) have an implied temporal
dimension, i.e. they are presented at a particular rate for a particular
length of time.  If the required rate of presentation is not met, the
integrity of these media is destroyed."*

A :class:`MediaSource` emits timestamped :class:`Frame` objects at a
nominal rate (with optional clock skew — real devices drift, which is what
continuous synchronisation corrects).  A :class:`MediaSink` plays frames
in one of two modes:

* ``deadline`` — each frame must be presented by its playout deadline
  (first-arrival epoch + media time + target delay); late frames are
  deadline misses.  This is the integrity metric of experiment E7.
* ``arrival`` — frames play as they arrive (after the transport), so the
  sink's playout position tracks its source's real clock; two sinks with
  drifting sources visibly desynchronise, which experiment E8 corrects.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import StreamError
from repro.sim import Counter, Environment, Tally

_frame_seq = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)

DEADLINE = "deadline"
ARRIVAL = "arrival"


class Frame:
    """One media frame with its position on the media timeline."""

    __slots__ = ("frame_id", "stream", "seq", "media_time", "size",
                 "created_at", "played_at")

    def __init__(self, stream: str, seq: int, media_time: float,
                 size: int, created_at: float) -> None:
        self.frame_id = next(_frame_seq)
        self.stream = stream
        self.seq = seq
        self.media_time = media_time
        self.size = size
        self.created_at = created_at
        self.played_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.played_at is None:
            return None
        return self.played_at - self.created_at

    def __repr__(self) -> str:
        return "<Frame {}#{} t={:.3f}>".format(
            self.stream, self.seq, self.media_time)


class MediaSource:
    """Generates frames at ``rate`` fps, ``frame_size`` bytes each.

    ``clock_skew`` multiplies the real inter-frame interval (1.0 = perfect
    clock; 1.01 = 1% slow).  ``transmit`` is how frames leave the device —
    usually a stream binding's send method.
    """

    def __init__(self, env: Environment, name: str,
                 transmit: Callable[[Frame], None],
                 rate: float = 25.0, frame_size: int = 4000,
                 clock_skew: float = 1.0) -> None:
        if rate <= 0:
            raise StreamError("rate must be positive")
        if frame_size <= 0:
            raise StreamError("frame_size must be positive")
        if clock_skew <= 0:
            raise StreamError("clock_skew must be positive")
        self.env = env
        self.name = name
        self.transmit = transmit
        self.rate = rate
        self.frame_size = frame_size
        self.clock_skew = clock_skew
        self.frames_sent = 0
        self.running = False
        self._process = None

    def start(self, duration: Optional[float] = None) -> None:
        """Begin emitting frames (optionally for ``duration`` seconds)."""
        if self.running:
            raise StreamError("source {} already running".format(self.name))
        self.running = True
        self._process = self.env.process(self._run(duration))

    def stop(self) -> None:
        """Cease emitting after the current frame."""
        self.running = False

    def _run(self, duration: Optional[float]):
        interval = (1.0 / self.rate) * self.clock_skew
        started = self.env.now
        seq = 0
        while self.running:
            # Absolute scheduling avoids floating-point interval drift.
            due = started + seq * interval
            if duration is not None and due - started >= duration:
                self.running = False
                break
            delay = due - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if not self.running:
                break
            frame = Frame(self.name, seq, seq / self.rate,
                          self.frame_size, self.env.now)
            self.frames_sent += 1
            self.transmit(frame)
            seq += 1


class MediaSink:
    """Plays received frames; measures integrity and playout position."""

    def __init__(self, env: Environment, name: str,
                 mode: str = DEADLINE,
                 target_delay: float = 0.15) -> None:
        if mode not in (DEADLINE, ARRIVAL):
            raise StreamError("unknown sink mode: " + mode)
        if target_delay < 0:
            raise StreamError("target_delay must be non-negative")
        self.env = env
        self.name = name
        self.mode = mode
        self.target_delay = target_delay
        self._epoch: Optional[float] = None
        self.position = 0.0
        self.played: List[Frame] = []
        self.deadline_misses = 0
        self.frame_latency = Tally(name + "-latency")
        self.counters = Counter()
        self._on_play: List[Callable[[Frame], None]] = []

    def on_play(self, callback: Callable[[Frame], None]) -> None:
        """Subscribe to every played frame (drives synchronisers)."""
        self._on_play.append(callback)

    def receive(self, frame: Frame) -> None:
        """A frame arrives from the binding."""
        self.counters.incr("received")
        if self.mode == ARRIVAL:
            self._play(frame)
            return
        if self._epoch is None:
            # Anchor the playout clock at the first arrival.
            self._epoch = self.env.now + self.target_delay \
                - frame.media_time
        deadline = self._epoch + frame.media_time
        if self.env.now > deadline:
            self.deadline_misses += 1
            self.counters.incr("missed")
            return
        self.env.process(self._play_at(frame, deadline))

    def sync_adjust(self, new_position: float) -> None:
        """Continuous-sync correction: jump the playout position."""
        self.counters.incr("sync_adjustments")
        self.position = new_position
        if self._epoch is not None:
            # Shift the playout clock so future deadlines line up.
            self._epoch = self.env.now - new_position

    @property
    def miss_rate(self) -> float:
        """Fraction of received frames that missed their deadline."""
        received = self.counters["received"]
        if received == 0:
            return 0.0
        return self.deadline_misses / received

    # -- internals -------------------------------------------------------------

    def _play_at(self, frame: Frame, deadline: float):
        yield self.env.timeout(deadline - self.env.now)
        self._play(frame)

    def _play(self, frame: Frame) -> None:
        frame.played_at = self.env.now
        self.played.append(frame)
        self.position = max(self.position, frame.media_time)
        self.frame_latency.record(frame.played_at - frame.created_at)
        self.counters.incr("played")
        for callback in self._on_play:
            callback(frame)
