"""Traced invocation: follow one RPC from nucleus to nucleus.

Enables the causal tracer, runs a client at one WAN site invoking an
object hosted at another (with simulated think-time between calls), then
exports the trace three ways:

* a JSONL dump (spans + metrics) for ``python -m repro.obs.report``,
* a Chrome ``trace_event`` file that opens in ``about:tracing``/Perfetto,
* the report tables, printed directly.

Run:  PYTHONPATH=src python examples/traced_invoke.py \\
          [--out run.jsonl] [--chrome run.trace.json]
"""

import argparse

from repro import obs
from repro.net import Network, wan
from repro.node import ODPRuntime
from repro.sim import Environment, RandomStreams, exponential


def build(env):
    """Two WAN sites; a counter object at site0, a client at site1."""
    topo = wan(env, sites=2, hosts_per_site=1, site_latency=0.03)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="site0.host0")
    server = runtime.nucleus("site0.host0")
    client = runtime.nucleus("site1.host0")
    capsule = server.create_capsule("cap")
    counter = server.create_object(capsule, "counter", state={"n": 0})

    def incr(caller, state, args):
        state["n"] += args
        return state["n"]

    counter.operation("incr", incr)
    return runtime, client, counter


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="traced_invoke.jsonl",
                        help="JSONL dump path")
    parser.add_argument("--chrome", default="traced_invoke.trace.json",
                        help="Chrome trace_event path")
    options = parser.parse_args(argv)

    tracer = obs.enable_tracing()
    obs.set_metrics(obs.MetricsRegistry())   # fresh registry for this run

    env = Environment()
    runtime, client, counter = build(env)
    rng = RandomStreams(11).stream("think")

    def user(env):
        # Each iteration roots one trace: a think-time span whose child
        # is the node.invoke span (which in turn parents the rpc.call,
        # per-link transit and remote rpc.serve spans).
        for step in range(3):
            with tracer.span("user.think", env, node="site1.host0",
                             step=step) as think:
                yield env.timeout(exponential(rng, 0.5))
                result = yield client.invoke(counter.oid, "incr", 1,
                                             parent=think)
        return result

    proc = env.process(user(env))
    env.run(proc)
    obs.disable_tracing()

    print("final counter value:", proc.value)
    print("sim time: {:.4f}s, spans recorded: {}".format(
        env.now, len(tracer.spans)))
    print("event loop:", env.stats())

    lines = obs.dump_jsonl(options.out, tracer=tracer)
    events = obs.dump_chrome_trace(options.chrome, tracer=tracer)
    print("wrote {} JSONL lines to {}".format(lines, options.out))
    print("wrote {} trace events to {} (open in about:tracing)".format(
        events, options.chrome))

    from repro.obs.report import render_report
    render_report(obs.load_jsonl(options.out))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
