"""Quickstart: a cooperative session on the CSCW-aware ODP platform.

Three colleagues at different sites join a design-review session, edit a
shared document through operation transformation (immediate local
response), and watch each other's activity through the awareness bus —
the Figure 2b information flow the paper calls for.

Run:  python examples/quickstart.py
"""

from repro import CooperativePlatform


def main() -> None:
    platform = CooperativePlatform(sites=3, hosts_per_site=2, seed=7)
    alice, bob, carol = platform.host_names()[0], \
        platform.host_names()[2], platform.host_names()[4]

    print("hosts:", ", ".join(platform.host_names()))
    session = platform.create_session(
        "design-review", [alice, bob, carol], floor="fcfs",
        ordering="causal")
    print("session {!r} members: {}".format(
        session.session.name, session.members))

    # Awareness: bob hears about every change to the shared workspace.
    notifications = []
    session.workspace.watch(
        bob, lambda event: notifications.append(
            (platform.env.now, event.actor, event.artefact)))

    # A shared document, replicated at each member via OT.
    doc = session.shared_document("minutes", initial="Agenda:\n")
    doc.client(alice).insert(len("Agenda:\n"), "- multicast QoS\n")
    print("alice sees her edit instantly: {!r}".format(
        doc.client(alice).text))

    # Concurrent edit from carol before anything has propagated.
    doc.client(carol).insert(0, "[DRAFT] ")

    # Workspace writes flow to colleagues continuously.
    session.session.store.write("decision-log", "adopted stream bindings",
                                writer=alice, at=platform.env.now)

    platform.run()

    print("\nafter propagation:")
    for member, text in sorted(doc.texts().items()):
        print("  {} sees: {!r}".format(member, text))
    assert doc.converged, "replicas must converge"
    print("replicas converged:", doc.converged)
    print("bob's awareness notifications:", notifications)


if __name__ == "__main__":
    main()
