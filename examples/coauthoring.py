"""Co-authoring: Quilt-style annotation plus the concurrency contrast.

Part 1 replays the paper's §3.2.3 Quilt workflow: a base document, a
co-author's revision suggestion, a commenter's remarks, and the author
incorporating the suggestion.

Part 2 demonstrates §4.2.1's central argument on the same editing burst:
under serialisable transactions a colleague is blocked and sees nothing
until commit (walls, Figure 2a); under operation transformation everyone
edits immediately and replicas converge (Figure 2b).

Run:  python examples/coauthoring.py
"""

from repro import CooperativePlatform
from repro.concurrency import SharedStore, TransactionManager
from repro.hypertext import CO_AUTHOR, COMMENTER, QuiltDocument
from repro.sim import Environment


def quilt_walkthrough() -> None:
    print("== Part 1: Quilt annotation network ==")
    doc = QuiltDocument("odp-paper", "CSCW challenges ODP.",
                        creator="gordon")
    doc.add_participant("tom", CO_AUTHOR)
    doc.add_participant("reviewer", COMMENTER)

    remark = doc.comment("reviewer", "the intro needs the ATC example")
    doc.comment("gordon", "agreed, adding it", on=remark.node_id)
    suggestion = doc.suggest_revision(
        "tom", "CSCW challenges ODP; air traffic control shows why.")
    print("open suggestions:",
          [node.content for node in doc.suggestions(status="open")])
    doc.incorporate("gordon", suggestion.node_id)
    print("base v{}: {!r}".format(doc.base_version, doc.base_text))
    print("comments:", [node.content for node in doc.comments()])


def transactional_walls() -> None:
    print("\n== Part 2a: serialisable transactions (the walls) ==")
    env = Environment()
    tm = TransactionManager(env, SharedStore())
    tm.store.write("section-3", "original text")
    observations = []

    def author(env):
        txn = tm.begin("gordon")
        yield from tm.write(txn, "section-3", "rewritten text")
        yield env.timeout(10.0)  # a long editing session
        yield from tm.commit(txn)

    def colleague(env):
        yield env.timeout(1.0)
        txn = tm.begin("tom")
        value = yield from tm.read(txn, "section-3")  # blocks!
        observations.append((env.now, value))
        yield from tm.commit(txn)

    env.process(author(env))
    env.process(colleague(env))
    env.run()
    at, value = observations[0]
    print("tom asked to read at t=1.0; got {!r} at t={:.1f} "
          "(blocked {:.1f}s behind the wall)".format(value, at, at - 1.0))


def ot_awareness() -> None:
    print("\n== Part 2b: operation transformation (no walls) ==")
    platform = CooperativePlatform(sites=2, hosts_per_site=1, seed=3)
    gordon, tom = platform.host_names()
    session = platform.create_session("writing", [gordon, tom])
    doc = session.shared_document("section-3", initial="original text")

    remote_seen = []
    doc.client(tom).on_remote = lambda ops: remote_seen.append(
        platform.env.now)

    doc.client(gordon).insert(0, "rewritten: ")
    print("gordon's view is immediate: {!r}".format(
        doc.client(gordon).text))
    platform.run()
    print("tom received the change at t={:.3f}s "
          "(notification time, not commit time)".format(remote_seen[0]))
    assert doc.converged
    print("replicas converged:", doc.texts())


def main() -> None:
    quilt_walkthrough()
    transactional_walls()
    ot_awareness()


if __name__ == "__main__":
    main()
