"""The paper's §2.3 illustrative example: electronic flight strips.

An electronic flight-progress board for two controller positions.  The
ethnographically-derived requirements are built in:

* **manual strip placement** — new strips are NOT auto-positioned; a
  controller places each one, which draws attention to the arrival
  (the paper's example of a conventional automation assumption that is
  invalid in cooperative settings);
* **at-a-glance monitoring** — the board is a public workspace: every
  placement and amendment flows to all positions as awareness events;
* **mutual assistance** — a position watching its colleague's sector
  load can take over strips when the colleague is overloaded;
* **accountability** — the board keeps a public history of who did what.

Run:  python examples/atc_flightstrips.py
"""

from repro import CooperativePlatform
from repro.awareness import ACTION_EDIT


class FlightStrip:
    """One strip of card: flight data plus controller instructions."""

    def __init__(self, callsign: str, level: int, beacon_eta: float):
        self.callsign = callsign
        self.level = level
        self.beacon_eta = beacon_eta
        self.instructions = []

    def __repr__(self):
        return "{} FL{} eta={:.0f}".format(
            self.callsign, self.level, self.beacon_eta)


class ProgressBoard:
    """The public rack of strips for one sector, held in the session
    store so every change is visible at a glance to all positions."""

    def __init__(self, session, sector: str):
        self.session = session
        self.sector = sector
        self.racks = {}       # position -> ordered list of callsigns
        self.history = []     # (time, controller, action, callsign)

    def place_strip(self, controller: str, position: str,
                    strip: FlightStrip, slot: int) -> None:
        """Manual placement: the controller chooses the slot."""
        rack = self.racks.setdefault(position, [])
        rack.insert(min(slot, len(rack)), strip.callsign)
        self._record(controller, "place", strip)

    def amend(self, controller: str, strip: FlightStrip,
              instruction: str) -> None:
        strip.instructions.append(instruction)
        self._record(controller, "amend:" + instruction, strip)

    def take_over(self, controller: str, from_position: str,
                  to_position: str, callsign: str) -> None:
        """A colleague relieves an overloaded position of one strip."""
        self.racks[from_position].remove(callsign)
        self.racks.setdefault(to_position, []).append(callsign)
        self.history.append((self.session.platform.env.now, controller,
                             "take-over", callsign))
        self.session.session.store.write(
            "board/" + callsign, to_position, writer=controller,
            at=self.session.platform.env.now)

    def load_of(self, position: str) -> int:
        return len(self.racks.get(position, []))

    def _record(self, controller: str, action: str,
                strip: FlightStrip) -> None:
        now = self.session.platform.env.now
        self.history.append((now, controller, action, strip.callsign))
        self.session.session.store.write(
            "board/" + strip.callsign,
            {"level": strip.level, "instructions": list(
                strip.instructions)},
            writer=controller, at=now)


def main() -> None:
    platform = CooperativePlatform(sites=1, hosts_per_site=3,
                                   topology="lan", seed=11)
    north, south, chief = platform.host_names()
    session = platform.create_session(
        "sector-5", [north, south, chief], floor=None)
    board = ProgressBoard(session, "sector-5")

    # The chief monitors the whole board at a glance.
    glances = []
    session.workspace.watch(
        chief, lambda event: glances.append(
            (round(platform.env.now, 3), event.actor, event.artefact)))

    def north_position(env):
        strips = [FlightStrip("BA{}".format(100 + i), 340 - 10 * i,
                              60.0 * i) for i in range(4)]
        for i, strip in enumerate(strips):
            yield env.timeout(2.0)
            # Manual placement: deliberately NOT sorted automatically.
            board.place_strip("north", "north-rack", strip, slot=i)
        yield env.timeout(1.0)
        board.amend("north", strips[0], "descend FL200")

    def south_position(env):
        yield env.timeout(12.0)
        # South notices north's rack is loaded and assists.
        if board.load_of("north-rack") >= 4:
            board.take_over("south", "north-rack", "south-rack", "BA103")

    platform.env.process(north_position(platform.env))
    platform.env.process(south_position(platform.env))
    platform.run()

    print("north rack:", board.racks.get("north-rack"))
    print("south rack:", board.racks.get("south-rack"))
    print("\npublic history (accountability):")
    for at, controller, action, callsign in board.history:
        print("  t={:>5.1f}  {:<6} {:<22} {}".format(
            at, controller, action, callsign))
    print("\nchief's at-a-glance awareness feed "
          "({} events):".format(len(glances)))
    for at, actor, artefact in glances[:5]:
        print("  t={:>5.1f}  {} touched {}".format(at, actor, artefact))
    assert board.load_of("north-rack") == 3
    assert board.load_of("south-rack") == 1
    print("\nmutual assistance worked: south relieved north of BA103")


if __name__ == "__main__":
    main()
