"""Desktop conferencing: multimedia group interaction (§3.2.2, §4.2.2).

A three-site desktop conference with everything §4.2.2 demands:

* QoS-negotiated audio and video flows (admission control + monitoring);
* lip synchronisation between the two flows (continuous sync);
* a caption fired at a media time (event-driven sync);
* group-invoked camera start ("if a group of cameras are to be started
  simultaneously in a conference") with a real-time bound;
* floor-controlled shared application input.

Run:  python examples/desktop_conference.py
"""

from repro import CooperativePlatform
from repro.groups import GroupInvoker
from repro.qos import QoSParameters
from repro.sessions import FcfsFloor, SingleUserApp, TransparentConference
from repro.streams import (
    ARRIVAL,
    ContinuousSynchroniser,
    EventSynchroniser,
    MediaSink,
    MediaSource,
)


def main() -> None:
    platform = CooperativePlatform(sites=3, hosts_per_site=2, seed=23)
    env = platform.env
    hosts = platform.host_names()
    speaker, listener_b, listener_c = hosts[0], hosts[2], hosts[4]

    # -- group invocation: start every site's camera under a deadline ----
    invoker = GroupInvoker(platform.network, speaker)
    camera_nodes = [listener_b, listener_c]
    for node in camera_nodes:
        endpoint = invoker.serve(node)
        endpoint.register("start_camera",
                          lambda caller, args, n=node: (n, "rolling"))

    def start_cameras(env):
        result = yield invoker.call(camera_nodes, "start_camera",
                                    deadline=0.5)
        print("cameras started: {} replies, real-time bound met: {}"
              .format(result.replied, result.quorum_met))

    env.process(start_cameras(env))
    platform.run()

    # -- QoS-managed audio + video from the speaker to site B ------------
    video = platform.open_media_flow(
        speaker, listener_b, rate=25.0, frame_size=4000,
        desired=QoSParameters(throughput=1e6, latency=0.2, jitter=0.1,
                              loss=0.05))
    audio = platform.open_media_flow(
        speaker, listener_b, rate=50.0, frame_size=400,
        desired=QoSParameters(throughput=2e5, latency=0.2, jitter=0.1,
                              loss=0.05))
    print("video contract: {:.2g} b/s agreed".format(
        video.binding.contract.agreed.throughput))

    # -- lip sync between drifting local playout devices ------------------
    audio_play = MediaSink(env, "audio-play", mode=ARRIVAL)
    video_play = MediaSink(env, "video-play", mode=ARRIVAL)
    audio_device = MediaSource(env, "mic", audio_play.receive, rate=50.0)
    video_device = MediaSource(env, "cam", video_play.receive, rate=25.0,
                               clock_skew=1.03)  # 3% slow camera clock
    sync = ContinuousSynchroniser(env, audio_play, video_play,
                                  bound=0.08)

    # -- event-driven sync: show a caption at media time 2.0s ------------
    cues = EventSynchroniser(video_play)
    cues.at(2.0, lambda: print(
        "t={:.2f}s: caption displayed at media time 2.0".format(env.now)))

    audio.start(duration=5.0)
    video.start(duration=5.0)
    audio_device.start(duration=5.0)
    video_device.start(duration=5.0)
    platform.run(until=env.now + 5.5)

    print("video frames delivered to {}: {} (deadline misses: {})"
          .format(listener_b, video.sink.counters["played"],
                  video.sink.deadline_misses))
    print("lip-sync corrections: {}; max skew {:.0f} ms (bound 80 ms)"
          .format(sync.counters["corrections"],
                  sync.max_abs_skew * 1000))
    sync.stop()  # the watcher would otherwise keep the simulation alive

    # -- floor-controlled shared whiteboard -------------------------------
    floor = FcfsFloor(env)
    whiteboard = TransparentConference(env, SingleUserApp(), floor)
    for member in (speaker, listener_b, listener_c):
        whiteboard.join(member)

    def participant(env, member, stroke):
        yield whiteboard.submit(member, stroke)

    for i, member in enumerate((speaker, listener_b, listener_c)):
        env.process(participant(env, member, "stroke-{}".format(i)))
    platform.run(until=env.now + 5.0)
    print("whiteboard strokes (one coherent stream): {}".format(
        whiteboard.app.state))
    print("every screen saw {} display updates".format(
        len(whiteboard.screens[speaker])))


if __name__ == "__main__":
    main()
