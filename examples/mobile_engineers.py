"""Mobile field engineers: the MOST-project scenario (§3.3.3, §4.2.2).

A utilities field engineer takes a laptop into the field:

1. hoards job sheets and network maps while docked (FULL connectivity);
2. drives out — PARTIAL radio connectivity with real radio bandwidth;
3. enters a tunnel — DISCONNECTED; reads come from the hoard, work is
   logged optimistically;
4. a disconnection-tolerant QoS contract flags the over-long outage;
5. back in coverage, the replay log reintegrates as one bulk update,
   and a conflicting office-side edit is detected and resolved.

Run:  python examples/mobile_engineers.py
"""

from repro.concurrency import SharedStore
from repro.mobility import (
    DisconnectionTolerantContract,
    MobileCache,
    MobileHost,
    SERVER_WINS,
)
from repro.net import ConnectivityLevel, Network, Topology
from repro.sim import Environment


def main() -> None:
    env = Environment()
    topo = Topology(env)
    topo.add_link("depot", "office-server", latency=0.002)
    network = Network(env, topo)

    office = SharedStore("office")
    office.write("job/1042", "replace transformer, substation 7",
                 writer="dispatcher")
    office.write("map/sector-7", "cable routes v3", writer="gis")

    engineer = MobileHost(network, "laptop", "depot",
                          level=ConnectivityLevel.FULL)
    cache = MobileCache(env, engineer, office,
                        conflict_policy=SERVER_WINS)
    outage_alerts = []
    DisconnectionTolerantContract(
        env, engineer, max_outage=60.0,
        on_violation=lambda outage: outage_alerts.append(
            (env.now, outage)))

    def field_day(env):
        # Docked at the depot: hoard the day's data at LAN speed.
        yield from cache.hoard(["job/1042", "map/sector-7"])
        print("t={:>6.1f}  hoarded: {}".format(env.now,
                                               cache.cached_keys()))

        # On the road: radio only.
        engineer.set_level(ConnectivityLevel.PARTIAL)
        yield env.timeout(30.0)
        job = yield from cache.read("job/1042")
        print("t={:>6.1f}  read job over radio: {!r}".format(env.now,
                                                             job))

        # Into the tunnel: no connectivity for two hours.
        engineer.set_level(ConnectivityLevel.DISCONNECTED)
        print("t={:>6.1f}  entered tunnel (disconnected)".format(env.now))
        yield env.timeout(3600.0)
        job = yield from cache.read("job/1042")  # served from the hoard
        yield from cache.write("job/1042",
                               job + " [DONE: replaced, tested]")
        yield from cache.write("report/1042",
                               "completed 14:30, 2h on site")
        print("t={:>6.1f}  worked offline; {} updates pending".format(
            env.now, cache.pending_updates))
        # Meanwhile the dispatcher reassigns the job (conflict!).
        office.write("job/1042", "reassigned to team B",
                     writer="dispatcher")
        yield env.timeout(3600.0)

        # Out of the tunnel: radio again; bulk reintegration.
        engineer.set_level(ConnectivityLevel.PARTIAL)
        print("t={:>6.1f}  reconnected (partial)".format(env.now))
        applied, conflicted = yield from cache.reintegrate()
        print("t={:>6.1f}  reintegrated: {} applied, {} conflicts"
              .format(env.now, applied, conflicted))

    done = env.process(field_day(env))
    env.run(done)

    print("\noutage alerts (accepted level was 60s):")
    for at, outage in outage_alerts:
        print("  t={:>6.1f}  outage running {:.0f}s".format(at, outage))
    print("\nfinal office state:")
    for key in sorted(office.keys()):
        print("  {} = {!r}".format(key, office.read(key)))
    print("\nconflicts detected for manual review:")
    for key, server_value, client_value in cache.conflicts:
        print("  {}: office kept {!r}, engineer's {!r} preserved "
              "for review".format(key, server_value, client_value))
    print("\ntotal disconnected time: {:.0f}s (longest outage {:.0f}s)"
          .format(engineer.total_disconnected, engineer.longest_outage))


if __name__ == "__main__":
    main()
