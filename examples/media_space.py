"""A day in a media space: rooms, glances, cruises and a video wall.

Recreates §3.3.2's canon: the Xerox PARC coffee-room video wall, a
Cruiser-style cruise down the virtual hallway, RAVE-style accessibility
controls with reciprocity, and the rooms-and-doors metaphor carrying the
social protocol for interruption.

Run:  python examples/media_space.py
"""

from repro.net import Network, lan
from repro.sim import Environment
from repro.spaces import (
    BUSY,
    DOOR_CLOSED,
    MediaSpace,
    OFFICE,
    VirtualBuilding,
)


def main() -> None:
    env = Environment()
    topo = lan(env, hosts=4)
    network = Network(env, topo)

    # -- the media space --------------------------------------------------
    space = MediaSpace(env, network=network, glance_duration=6.0)
    space.add_node("coffee-lancaster", host="host0")
    space.add_node("coffee-portland", host="host1")
    space.add_node("gordon-office", host="host2")
    space.add_node("tom-office", host="host3")

    # Reciprocity: gordon always learns who looked at him.
    looks = []
    space.awareness.subscribe(
        "gordon-office",
        lambda event: looks.append((env.now, event.actor, event.action)),
        event_filter=lambda name, event:
        event.artefact == "gordon-office" and event.actor != name)

    # The Portland experiment: a standing wall between coffee rooms.
    wall = space.video_wall("coffee-lancaster", "coffee-portland")
    print("video wall raised between the coffee rooms "
          "({} media flows)".format(len(wall.flows)))

    def working_day(env):
        # Tom glances at gordon (accessible): granted, 6 seconds.
        connection = yield space.glance("tom-office", "gordon-office")
        print("t={:>5.1f}  tom glanced at gordon: {}".format(
            env.now, "granted" if connection else "refused"))

        # Gordon gets his head down.
        space.set_accessibility("gordon-office", BUSY)
        connection = yield space.glance("tom-office", "gordon-office")
        print("t={:>5.1f}  tom glanced again: {}".format(
            env.now, "granted" if connection else "refused (busy)"))

        # A cruise down the hallway from the coffee room.
        connections = yield space.cruise(
            "coffee-lancaster", ["gordon-office", "tom-office"])
        print("t={:>5.1f}  cruise completed: {} office(s) seen".format(
            env.now, len(connections)))

        # Long-lived pairing between the co-authors' offices.
        space.set_accessibility("gordon-office", "accessible")
        share = space.office_share("gordon-office", "tom-office")
        yield env.timeout(10.0)
        space.hang_up(share)
        print("t={:>5.1f}  office share ended after 10s".format(env.now))

    done = env.process(working_day(env))
    env.run(done)
    space.hang_up(wall)
    env.run(until=env.now + 1.0)

    delivered = sum(sink.counters["played"]
                    for _, _, sink in wall.flows)
    print("\nvideo wall carried {} frames while up".format(delivered))
    print("gordon's reciprocity feed (who looked, when):")
    for at, actor, action in looks:
        print("  t={:>5.1f}  {} -> {}".format(at, actor, action))

    # -- rooms: the interruption protocol ----------------------------------
    print("\n-- rooms and doors --")
    building = VirtualBuilding(env)
    building.add_room("gordons-office", kind=OFFICE, owner="gordon")
    building.add_room("meeting-room")
    office = building.room("gordons-office")
    office.occupants.append("gordon")
    building.whereis["gordon"] = "gordons-office"
    office.answer_policy = lambda visitor: visitor != "salesperson"

    def corridor_life(env):
        outcome = yield building.enter("tom", "gordons-office")
        print("tom knocks on the ajar door: {}".format(outcome))
        outcome = yield building.enter("salesperson", "gordons-office")
        print("salesperson knocks: {}".format(outcome))
        office.set_door(DOOR_CLOSED, by="gordon")
        outcome = yield building.enter("anyone", "gordons-office")
        print("after gordon closes the door: {}".format(outcome))

    done = env.process(corridor_life(env))
    env.run(done)
    print("occupancy at a glance:", building.occupancy())


if __name__ == "__main__":
    main()
