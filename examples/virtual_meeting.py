"""A virtual meeting in a DIVE-style shared space, with OVAL tailoring.

Combines two of the paper's "emerging areas" (§3.3):

* a shared virtual environment where conversations form **by position**
  — walk up to colleagues and an audio link opens; walk away and it
  closes (Benford & Fahlén's spatial model of interaction);
* OVAL-style tailoring handling the meeting's paperwork — an agent files
  the action items that emerge from the conversation.

Run:  python examples/virtual_meeting.py
"""

from repro.sim import Environment
from repro.spaces import VirtualEnvironment
from repro.toolkit import ON_ARRIVAL, OvalSystem, file_into


def main() -> None:
    env = Environment()
    world = VirtualEnvironment(env, check_interval=0.25)

    # Three colleagues scattered across a large space.
    world.embody("gordon", 0, 0)
    world.embody("tom", 60, 0)
    world.embody("nigel", 0, 60)

    # OVAL: nigel's workspace files incoming action items automatically.
    oval = OvalSystem()
    nigel_ws = oval.workspace("nigel")
    nigel_ws.define_view(
        "my-actions",
        lambda obj: obj.fields.get("folder") == "actions")
    nigel_ws.add_agent(
        "file-actions",
        lambda obj, event: event == ON_ARRIVAL
        and obj.kind == "action-item",
        file_into("folder", "actions"))

    def meeting(env):
        # Everyone converges on the meeting corner.
        walks = [world.walk("tom", 3, 0, speed=8.0),
                 world.walk("nigel", 0, 3, speed=8.0)]
        for walk in walks:
            yield walk
        yield env.timeout(0.5)
        print("t={:>5.1f}  links: gordon-tom={} gordon-nigel={} "
              "tom-nigel={}".format(
                  env.now,
                  world.connected("gordon", "tom"),
                  world.connected("gordon", "nigel"),
                  world.connected("tom", "nigel")))

        utterance = world.say(
            "gordon", "we need QoS annotations on stream interfaces")
        print("t={:>5.1f}  gordon speaks; heard by {}".format(
            env.now, sorted(utterance.heard_by)))

        # The discussion produces an action item, routed through OVAL.
        gordon_ws = oval.workspace("gordon")
        item = gordon_ws.create(
            "action-item",
            {"what": "draft QoS annotation proposal", "owner": "nigel"})
        gordon_ws.send(item, "nigel")

        # Tom is called away: his links close as he leaves.
        yield world.walk("tom", 80, 80, speed=20.0)
        yield env.timeout(0.5)
        print("t={:>5.1f}  tom left; gordon-tom link: {}".format(
            env.now, world.connected("gordon", "tom")))

        farewell = world.say("gordon", "thanks both")
        print("t={:>5.1f}  gordon's farewell heard by {}".format(
            env.now, sorted(farewell.heard_by)))

    done = env.process(meeting(env))
    env.run(done)
    world.stop()
    env.run(until=env.now + 1.0)

    print("\nconversation audio-link history:")
    for opened, closed, pair in world.link_history:
        print("  {}: open {:.1f}s".format(
            " <-> ".join(sorted(pair)), closed - opened))
    print("\nnigel's filed actions:",
          [obj.fields["what"]
           for obj in oval.workspace("nigel").view("my-actions")])


if __name__ == "__main__":
    main()
