"""P1 — hot-path throughput: packet storms through the sim kernel.

The scaling benches (E/F/R) are bounded by pure interpreter overhead on
three hot paths: per-packet route walks in
:meth:`~repro.net.topology.Topology.path`, per-hop labelled-metrics key
construction in :mod:`repro.net.network`, and per-event allocation in
the sim kernel.  This bench measures that overhead directly: three
packet storms (switched LAN, six-site WAN, WAN under a chaos schedule)
report wall time, simulated events/second and packets/second, plus a
metrics-on vs metrics-off (``NullRegistry``) comparison on the WAN
storm.  Results merge into ``BENCH_PR5.json``; the ``baseline_*``
figures are the same storms measured on the pre-optimisation tree
(commit c83b711) so the speedup is part of the artifact.

The storms themselves are deterministic (seeded gaps, rotating
destinations), so delivered-packet counts are exact reproduction
targets; only the wall-clock figures vary run to run.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from benchmarks._util import print_table, record_run, run_once
from repro.faults import FaultInjector, FaultSchedule
from repro.net.network import Network
from repro.net.topology import lan, wan
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim import Environment, RandomStreams, exponential

SEED = 31
#: Mean think-gap between a sender's packets (seconds, exponential).
GAP_MEAN = 0.002
PAYLOAD = 512

#: How many repeats each storm runs; the fastest is reported.  The
#: storms are deterministic, so repeats only tighten the wall-clock
#: figure (event/packet counts are identical every time).
REPEATS = 5

#: Pre-optimisation figures for the same storms (seed 31), measured on
#: the tree at commit c83b711 — the "before" half of the speedup table.
#: Best-of-8 on the same machine as the "after" figures in
#: EXPERIMENTS.md §P1 (which documents the capture procedure).
BASELINE: Dict[str, Dict[str, float]] = {
    "lan-storm": {"wall_s": 0.169, "events_per_s": 213302.0},
    "wan-storm": {"wall_s": 0.220, "events_per_s": 212891.0},
    "chaos-storm": {"wall_s": 0.215, "events_per_s": 207330.0},
}


def _best_of(run, repeats: int = REPEATS) -> Dict[str, Any]:
    """Fastest of ``repeats`` runs (counts are deterministic; only the
    wall clock varies, so min is the least-noise estimator)."""
    best = None
    for _ in range(repeats):
        result = run()
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    return best


def _run_storm(env: Environment, network: Network,
               senders: List[Any], seed: int) -> Dict[str, Any]:
    """Drive sender processes to completion and measure the run."""
    streams = RandomStreams(seed)
    for index, (host, peers, packets) in enumerate(senders):
        rng = streams.stream("storm-{}".format(index))

        def sender(host=host, peers=peers, packets=packets, rng=rng):
            fanout = len(peers)
            for i in range(packets):
                yield env.timeout(exponential(rng, GAP_MEAN))
                host.send(peers[i % fanout], size=PAYLOAD)

        env.process(sender())
    started = time.perf_counter()
    env.run()
    wall = time.perf_counter() - started
    sent = network.counters["sent"]
    delivered = network.counters["delivered"]
    return {
        "wall_s": wall,
        "sim_time_s": env.now,
        "events": env.events_processed,
        "events_per_s": env.events_processed / wall if wall else 0.0,
        "sent": sent,
        "delivered": delivered,
        "packets_per_s": delivered / wall if wall else 0.0,
        "dropped": network.counters["dropped"],
    }


def run_lan_storm(hosts: int = 24, packets_each: int = 150,
                  seed: int = SEED) -> Dict[str, Any]:
    """All-to-all storm on one switched LAN (two hops per packet)."""
    env = Environment()
    network = Network(env, lan(env, hosts=hosts))
    names = ["host{}".format(i) for i in range(hosts)]
    senders = []
    for index, name in enumerate(names):
        peers = [names[(index + k) % hosts] for k in range(1, hosts)]
        senders.append((network.host(name), peers, packets_each))
    with use_metrics(MetricsRegistry()):
        return _run_storm(env, network, senders, seed)


def _wan_network(env: Environment, sites: int, hosts_per_site: int,
                 loss: float = 0.0) -> Network:
    return Network(env, wan(env, sites=sites,
                            hosts_per_site=hosts_per_site,
                            site_latency=0.004, loss=loss))


def _cross_site_senders(network: Network, sites: int, hosts_per_site: int,
                        packets_each: int) -> List[Any]:
    names = ["site{}.host{}".format(i, j)
             for i in range(sites) for j in range(hosts_per_site)]
    senders = []
    for index, name in enumerate(names):
        site = name.split(".", 1)[0]
        peers = [peer for peer in
                 (names[(index + k) % len(names)]
                  for k in range(1, len(names)))
                 if not peer.startswith(site + ".")]
        senders.append((network.host(name), peers, packets_each))
    return senders


def run_wan_storm(sites: int = 6, hosts_per_site: int = 3,
                  packets_each: int = 200,
                  seed: int = SEED) -> Dict[str, Any]:
    """Cross-site storm on a WAN mesh (three hops per packet)."""
    env = Environment()
    network = _wan_network(env, sites, hosts_per_site)
    senders = _cross_site_senders(network, sites, hosts_per_site,
                                  packets_each)
    with use_metrics(MetricsRegistry()):
        return _run_storm(env, network, senders, seed)


def run_chaos_storm(sites: int = 6, hosts_per_site: int = 3,
                    packets_each: int = 200,
                    seed: int = SEED) -> Dict[str, Any]:
    """The WAN storm under a fault schedule: flaps, a partition, a
    latency storm and a loss burst, so routes are repeatedly
    invalidated and recomputed mid-storm."""
    env = Environment()
    network = _wan_network(env, sites, hosts_per_site)
    site0 = ["site0.router"] + ["site0.host{}".format(j)
                                for j in range(hosts_per_site)]
    rest = [node for node in network.topology.nodes if node not in site0]
    routers = [("site{}.router".format(i), "site{}.router".format(k))
               for i in range(sites) for k in range(i + 1, sites)]
    schedule = (
        FaultSchedule()
        .link_flap(0.020, "site1.router", "site2.router",
                   count=6, period=0.030)
        .partition(0.080, [site0, rest], heal_at=0.160)
        .latency_storm(0.120, scale=4.0, duration=0.080, links=routers)
        .loss_burst(0.200, extra_loss=0.05, duration=0.060,
                    links=routers[:5])
    )
    FaultInjector(env, network, schedule)
    senders = _cross_site_senders(network, sites, hosts_per_site,
                                  packets_each)
    with use_metrics(MetricsRegistry()):
        return _run_storm(env, network, senders, seed)


def run_metrics_comparison(sites: int = 6, hosts_per_site: int = 3,
                           packets_each: int = 120,
                           seed: int = SEED) -> Dict[str, Any]:
    """The WAN storm under a recording registry vs a NullRegistry."""
    from repro.obs.metrics import NullRegistry

    def once(registry):
        env = Environment()
        network = _wan_network(env, sites, hosts_per_site)
        senders = _cross_site_senders(network, sites, hosts_per_site,
                                      packets_each)
        with use_metrics(registry):
            return _run_storm(env, network, senders, seed)

    # Interleaved repeats: each round runs both registries back to back,
    # so slow moments on the host machine hit both sides equally instead
    # of biasing whichever ran second.
    on = off = None
    for _ in range(REPEATS):
        candidate = once(MetricsRegistry())
        if on is None or candidate["wall_s"] < on["wall_s"]:
            on = candidate
        candidate = once(NullRegistry())
        if off is None or candidate["wall_s"] < off["wall_s"]:
            off = candidate
    return {"metrics_on": on, "metrics_off": off}


def run_experiment() -> Dict[str, Any]:
    results = {
        "lan-storm": _best_of(run_lan_storm),
        "wan-storm": _best_of(run_wan_storm),
        "chaos-storm": _best_of(run_chaos_storm),
    }
    results["metrics"] = run_metrics_comparison()
    return results


def test_p1_kernel_throughput(benchmark):
    results = run_once(benchmark, run_experiment)

    rows = []
    telemetry: Dict[str, Any] = {}
    total_wall = 0.0
    total_baseline = 0.0
    for name in ("lan-storm", "wan-storm", "chaos-storm"):
        run = results[name]
        base = BASELINE.get(name, {})
        speedup = (base["wall_s"] / run["wall_s"]
                   if base.get("wall_s") and run["wall_s"] else 0.0)
        total_wall += run["wall_s"]
        total_baseline += base.get("wall_s", 0.0)
        rows.append((name, run["events"], run["delivered"],
                     run["wall_s"], run["events_per_s"],
                     base.get("wall_s", 0.0), speedup))
        prefix = name.replace("-", "_")
        telemetry[prefix + "_wall_s"] = run["wall_s"]
        telemetry[prefix + "_events"] = run["events"]
        telemetry[prefix + "_events_per_s"] = round(run["events_per_s"])
        telemetry[prefix + "_packets_per_s"] = round(run["packets_per_s"])
        telemetry[prefix + "_delivered"] = run["delivered"]
        telemetry[prefix + "_baseline_wall_s"] = base.get("wall_s", 0.0)
        telemetry[prefix + "_baseline_events_per_s"] = \
            base.get("events_per_s", 0.0)
        telemetry[prefix + "_speedup"] = round(speedup, 3)
    print_table(
        "P1: packet-storm throughput (before = pre-optimisation tree)",
        ["storm", "events", "delivered", "wall (s)", "events/s",
         "before (s)", "speedup"],
        rows)

    comparison = results["metrics"]
    on, off = comparison["metrics_on"], comparison["metrics_off"]
    print_table(
        "P1: metrics-on vs metrics-off (NullRegistry), WAN storm",
        ["registry", "wall (s)", "events/s", "delivered"],
        [("MetricsRegistry", on["wall_s"], on["events_per_s"],
          on["delivered"]),
         ("NullRegistry", off["wall_s"], off["events_per_s"],
          off["delivered"])])
    telemetry["metrics_on_wall_s"] = on["wall_s"]
    telemetry["metrics_off_wall_s"] = off["wall_s"]
    telemetry["overall_speedup"] = round(
        total_baseline / total_wall, 3) if total_wall else 0.0

    # Shape assertions: the storms are deterministic simulations, so the
    # packet accounting is exact; wall-clock numbers are recorded, not
    # asserted (CI machines vary).
    lan_run, wan_run = results["lan-storm"], results["wan-storm"]
    assert lan_run["sent"] == 24 * 150 and lan_run["dropped"] == 0
    assert lan_run["delivered"] == lan_run["sent"]
    assert wan_run["sent"] == 18 * 200 and wan_run["dropped"] == 0
    assert wan_run["delivered"] == wan_run["sent"]
    chaos = results["chaos-storm"]
    assert chaos["sent"] == 18 * 200
    assert chaos["dropped"] > 0, "the chaos schedule injected no faults?"
    assert chaos["delivered"] + chaos["dropped"] == chaos["sent"]
    # Metrics must never change the simulation itself.
    assert on["delivered"] == off["delivered"]
    assert on["events"] == off["events"]

    record_run("p1_kernel_throughput", metrics=telemetry,
               sim_time_s=wan_run["sim_time_s"],
               events=sum(results[n]["events"] for n in
                          ("lan-storm", "wan-storm", "chaos-storm")),
               path="BENCH_PR5.json")
