"""E10 — disconnected operation for mobile cooperation (§4.2.2).

*"users are likely to be disconnected for significant periods of time"*
and *"new techniques will be required, for example, to cache significant
portions of the data on the mobile computer"*, with *"bulk updates"* on
reconnection.

A field engineer's day: a square-wave connectivity trace (connected on
radio / disconnected in the field), a stream of job reads and report
writes.  Regimes:

* **naive transparency** — every operation goes to the server; while
  disconnected it simply fails (the cost of pretending the network is
  always there);
* **caching + replay** — hoarded reads are served locally, writes queue
  in the replay log and reintegrate as one bulk update on reconnection.

Also measured: disconnection-tolerant QoS flags outages beyond the
accepted level, and the reintegration conflict rate when office-side
edits race the field edits.
"""

from benchmarks._util import print_table, run_once
from repro.concurrency import SharedStore
from repro.errors import DisconnectedError, MobilityError
from repro.mobility import (
    DisconnectionTolerantContract,
    MobileCache,
    MobileHost,
    SERVER_WINS,
)
from repro.net import ConnectivityLevel, ConnectivitySchedule, Network, \
    Topology, periodic_trace
from repro.sim import Environment, RandomStreams, exponential

DAY = 2000.0
CONNECTED_SPELL = 120.0
DISCONNECTED_SPELL = 240.0
OP_THINK = 20.0
JOBS = ["job/{}".format(i) for i in range(8)]


def build(env):
    topo = Topology(env)
    topo.add_link("depot", "server", latency=0.002)
    network = Network(env, topo)
    store = SharedStore("office")
    for i, job in enumerate(JOBS):
        store.write(job, "instructions {}".format(i), writer="dispatcher")
    mobile = MobileHost(network, "laptop", "depot",
                        level=ConnectivityLevel.PARTIAL)
    trace = periodic_trace(CONNECTED_SPELL, DISCONNECTED_SPELL,
                           total=DAY,
                           connected_level=ConnectivityLevel.PARTIAL)
    ConnectivitySchedule(env, mobile.link, trace)
    return network, store, mobile


def engineer_ops(rng):
    """The day's operation stream: (think, kind, key)."""
    ops = []
    at = 0.0
    i = 0
    while at < DAY:
        think = exponential(rng, OP_THINK)
        at += think
        job = JOBS[i % len(JOBS)]
        kind = "read" if i % 3 else "write"
        ops.append((think, kind, job))
        i += 1
    return ops


def run_naive():
    env = Environment()
    network, store, mobile = build(env)
    rng = RandomStreams(55).stream("naive")
    ops = engineer_ops(rng)
    succeeded = [0]
    failed = [0]

    def day(env):
        for think, kind, key in ops:
            yield env.timeout(think)
            if not mobile.connected:
                failed[0] += 1      # the transparent call just fails
                continue
            yield env.timeout(0.3)  # radio round trip
            if kind == "read":
                store.read(key)
            else:
                store.write(key, "field note", writer="laptop",
                            at=env.now)
            succeeded[0] += 1

    env.process(day(env))
    env.run(until=DAY + 10)
    return {"succeeded": succeeded[0], "failed": failed[0],
            "conflicts": 0, "alerts": 0}


def run_cached():
    env = Environment()
    network, store, mobile = build(env)
    cache = MobileCache(env, mobile, store,
                        conflict_policy=SERVER_WINS)
    rng = RandomStreams(55).stream("naive")  # same op stream
    ops = engineer_ops(rng)
    succeeded = [0]
    failed = [0]
    alerts = [0]
    DisconnectionTolerantContract(
        env, mobile, max_outage=180.0,
        on_violation=lambda outage: alerts.__setitem__(
            0, alerts[0] + 1))

    def office_racer(env):
        # The dispatcher occasionally edits the same jobs.
        for i in range(4):
            yield env.timeout(DAY / 5)
            store.write(JOBS[0], "office update {}".format(i),
                        writer="dispatcher", at=env.now)

    def day(env):
        yield from cache.hoard(list(JOBS))
        reconnect_pending = [False]
        mobile.on_level_change(
            lambda level: reconnect_pending.__setitem__(
                0, level is not ConnectivityLevel.DISCONNECTED))
        for think, kind, key in ops:
            yield env.timeout(think)
            if reconnect_pending[0] and cache.pending_updates:
                yield from cache.reintegrate()
                reconnect_pending[0] = False
            try:
                if kind == "read":
                    yield from cache.read(key)
                else:
                    yield from cache.write(key, "field note")
                succeeded[0] += 1
            except (DisconnectedError, MobilityError):
                failed[0] += 1
        if mobile.connected and cache.pending_updates:
            yield from cache.reintegrate()

    env.process(office_racer(env))
    env.process(day(env))
    env.run(until=DAY + 200)
    return {"succeeded": succeeded[0], "failed": failed[0],
            "conflicts": len(cache.conflicts), "alerts": alerts[0]}


def run_experiment():
    return {"naive transparency": run_naive(),
            "caching + replay": run_cached()}


def test_e10_mobility(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = []
    for name, stats in results.items():
        total = stats["succeeded"] + stats["failed"]
        rows.append((name, total, stats["succeeded"], stats["failed"],
                     stats["succeeded"] / max(1, total),
                     stats["conflicts"], stats["alerts"]))
    print_table(
        "E10  a field engineer's day across connectivity levels",
        ["regime", "operations", "succeeded", "failed", "success rate",
         "replay conflicts", "outage alerts"],
        rows)
    naive = results["naive transparency"]
    cached = results["caching + replay"]
    naive_rate = naive["succeeded"] / (naive["succeeded"]
                                       + naive["failed"])
    cached_rate = cached["succeeded"] / (cached["succeeded"]
                                         + cached["failed"])
    # Shape: transparency breaks for most of the disconnected day;
    # caching sustains nearly all work and reconciles on reconnection.
    assert naive_rate < 0.6
    assert cached_rate > 0.95
    assert cached["conflicts"] >= 1      # the office raced the field
    assert cached["alerts"] >= 1         # outages exceeded the accepted level
    benchmark.extra_info["naive_rate"] = naive_rate
    benchmark.extra_info["cached_rate"] = cached_rate
