"""A1 (ablation) — the spatial model scales awareness (§3.3.2, §4.2.1).

In a large shared space (DIVE's "large unbounded space"), broadcasting
every action to every inhabitant drowns users and the network.  The
aura/focus/nimbus model scopes each action to the entities that would
plausibly perceive it.

Sweep the population at constant density (the space grows with the
crowd).  For each action, count recipients under:

* broadcast-all — every other entity;
* spatial (peripheral+) — entities with any awareness of the actor;
* spatial (full only) — mutually attending entities.

Expected shape: broadcast grows linearly with population; spatial
recipients stay roughly constant (local density decides), so the ratio
grows without bound — the scalability argument for awareness scoping.
"""

import math

from benchmarks._util import print_table, run_once
from repro.awareness import Entity, FULL, SharedSpace
from repro.sim import RandomStreams

POPULATIONS = (10, 40, 160)
DENSITY = 0.01            # entities per square unit
ACTIONS_PER_ENTITY = 3


def run_population(population):
    rng = RandomStreams(81).stream("a1-{}".format(population))
    side = math.sqrt(population / DENSITY)
    space = SharedSpace("floor")
    for i in range(population):
        space.add(Entity("user-{}".format(i),
                         x=rng.uniform(0, side),
                         y=rng.uniform(0, side),
                         aura=30.0, focus=15.0, nimbus=15.0))
    broadcast_total = 0
    spatial_total = 0
    full_total = 0
    actions = 0
    for entity in space.entities():
        for _ in range(ACTIONS_PER_ENTITY):
            actions += 1
            broadcast_total += population - 1
            spatial_total += len(space.observers_of(entity.name))
            full_total += len(space.observers_of(entity.name,
                                                 minimum=FULL))
    return {
        "broadcast": broadcast_total / actions,
        "spatial": spatial_total / actions,
        "full": full_total / actions,
    }


def run_experiment():
    return {population: run_population(population)
            for population in POPULATIONS}


def test_a1_spatial_awareness(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [(population, stats["broadcast"], stats["spatial"],
             stats["full"],
             stats["broadcast"] / max(stats["spatial"], 0.1))
            for population, stats in results.items()]
    print_table(
        "A1  recipients per action at constant crowd density",
        ["population", "broadcast-all", "spatial (peripheral+)",
         "spatial (full)", "reduction factor"],
        rows)
    small = results[POPULATIONS[0]]
    large = results[POPULATIONS[-1]]
    # Broadcast load grows linearly with the crowd...
    assert large["broadcast"] > small["broadcast"] * 10
    # ...spatially scoped awareness stays bounded by local density.
    assert large["spatial"] < small["broadcast"]
    assert large["spatial"] < large["broadcast"] / 4
    # Full awareness is the strictest subset.
    for stats in results.values():
        assert stats["full"] <= stats["spatial"] <= stats["broadcast"]
    benchmark.extra_info["reduction_at_max"] = (
        large["broadcast"] / max(large["spatial"], 0.1))
