"""E4 — transaction groups with semantic access rules (§4.2.1).

Skarra & Zdonik: *"Within a transaction group, the notion of
serialisability is replaced by access rules based on the semantics of the
cooperation...  these policies can be tailored for a particular
application by amending the access rules."*

One co-authoring pattern — a writer revising a section while colleagues
repeatedly read it ("read over their shoulder") — runs under three access
rules on the same workload:

* **serialisable** — readers block for the whole writing burst;
* **cooperative** — readers are admitted and see work in progress
  (counted as *cooperative interleavings*, interactions serialisability
  forbids);
* **free** — everything admitted (the other extreme).

Also demonstrated: tailoring, by swapping in a custom rule mid-family.
"""

from benchmarks._util import print_table, run_once
from repro.concurrency import (
    AccessRule,
    SharedStore,
    TransactionGroup,
    cooperative_rule,
    free_rule,
    serialisable_rule,
)
from repro.sim import Environment, RandomStreams, Tally, exponential

READERS = 3
READS_PER_READER = 10
WRITE_BURSTS = 4
BURST_LENGTH = 6.0
READ_THINK = 2.0


def run_rule(rule):
    env = Environment()
    store = SharedStore()
    store.write("section", "published v0")
    group = TransactionGroup(env, store, rule=rule)
    group.add_member("writer")
    for i in range(READERS):
        group.add_member("reader-{}".format(i))
    rng = RandomStreams(41).stream("rule-" + rule.name)
    read_wait = Tally("read-wait")
    fresh_reads = [0]
    writing_now = [False]

    def writer(env):
        for burst in range(WRITE_BURSTS):
            yield env.timeout(2.0)
            yield group.write("writer", "section",
                              "draft burst {}".format(burst))
            writing_now[0] = True
            yield env.timeout(BURST_LENGTH)  # writing session
            writing_now[0] = False
            group.release("writer", "section", "write")

    def reader(env, name):
        for _ in range(READS_PER_READER):
            yield env.timeout(exponential(rng, READ_THINK))
            start = env.now
            value = yield group.read(name, "section")
            read_wait.record(env.now - start)
            if writing_now[0] and isinstance(value, str) \
                    and value.startswith("draft"):
                fresh_reads[0] += 1  # saw work while it was in progress
            group.release(name, "section", "read")

    env.process(writer(env))
    for i in range(READERS):
        env.process(reader(env, "reader-{}".format(i)))
    env.run()
    return {
        "read_wait": read_wait,
        "fresh_reads": fresh_reads[0],
        "cooperative_reads": group.counters["cooperative_reads"],
        "blocked": group.counters["blocked"],
        "makespan": env.now,
    }


def tailored_rule() -> AccessRule:
    """Tailoring demo: only the lead may write, everyone may read."""
    def predicate(requester, op, key, holders):
        if op == "write":
            return requester == "writer" and all(
                o == "read" for m, o in holders if m != requester)
        return True

    return AccessRule(predicate, name="lead-writer-only")


def run_experiment():
    rules = [serialisable_rule(), cooperative_rule(), free_rule(),
             tailored_rule()]
    return {rule.name: run_rule(rule) for rule in rules}


def test_e4_transaction_groups(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [(name, stats["read_wait"].mean, stats["blocked"],
             stats["cooperative_reads"], stats["fresh_reads"])
            for name, stats in results.items()]
    print_table(
        "E4  access rules replace serialisability in a transaction group",
        ["access rule", "mean read wait (s)", "blocked requests",
         "cooperative reads", "in-progress reads seen"],
        rows)
    serialisable = results["serialisable"]
    cooperative = results["cooperative"]
    # Serialisability: readers wait out write bursts and never see
    # uncommitted work.
    assert serialisable["blocked"] > 0
    assert serialisable["read_wait"].mean > \
        cooperative["read_wait"].mean
    assert serialisable["cooperative_reads"] == 0
    # The cooperative rule admits reads of in-progress work immediately.
    assert cooperative["read_wait"].maximum == 0.0
    assert cooperative["cooperative_reads"] > 0
    assert cooperative["fresh_reads"] > 0
    # Tailored rule behaves like cooperative for this workload (reads
    # always admitted) — the point is that applications can amend rules.
    assert results["lead-writer-only"]["read_wait"].maximum == 0.0
    benchmark.extra_info["coop_reads"] = cooperative["cooperative_reads"]
