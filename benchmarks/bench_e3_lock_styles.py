"""E3 — tickle, soft and notification locks vs hard locks (§4.2.1).

*"a number of researchers have proposed alternative styles of locking to
increase the flexibility of transaction mechanisms, e.g. tickle locks,
soft locks and notification locks."*

One contended workload — editors repeatedly work on a shared section,
sometimes going idle while holding the lock (the situation tickle locks
exist for) — is run under each style.  Reported: mean wait to start
editing, lock takeovers (tickle), advisory conflicts (soft), change
notifications delivered (notification), and total work completed.

Expected shape: hard locks maximise waiting (idle holders block everyone);
tickle locks recover idle time via takeovers; soft locks never wait but
surface conflicts for the social protocol; notification locks admit
readers freely and keep them informed.
"""

from benchmarks._util import print_table, record_run, run_once
from repro.concurrency import (
    EXCLUSIVE,
    HARD,
    LockTable,
    NOTIFICATION,
    SHARED,
    SOFT,
    STYLES,
    TICKLE,
)
from repro.sim import Environment, RandomStreams, Tally, exponential

WRITERS = 3
READERS = 2
ROUNDS = 12
THINK_MEAN = 1.5
EDIT_TIME = 1.0
IDLE_PROBABILITY = 0.3     # holder walks away without releasing
IDLE_TIME = 8.0
TICKLE_GRACE = 2.0


def run_style(style):
    env = Environment()
    table = LockTable(env, style=style, tickle_grace=TICKLE_GRACE)
    rng = RandomStreams(31).stream("style-" + style)
    wait = Tally("wait")
    completed = [0]
    notified = [0]
    table.watch("section", lambda key, writer, kind:
                notified.__setitem__(0, notified[0] + 1))

    def writer(env, name):
        for _ in range(ROUNDS):
            yield env.timeout(exponential(rng, THINK_MEAN))
            start = env.now
            grant = yield table.acquire("section", name, EXCLUSIVE)
            wait.record(env.now - start)
            yield env.timeout(EDIT_TIME)
            grant.touch()
            if style == NOTIFICATION:
                table.notify_write("section", name)
            completed[0] += 1
            if rng.random() < IDLE_PROBABILITY:
                # Distraction: keep holding the lock while idle.  Under
                # tickle locks a colleague can take it over.
                yield env.timeout(IDLE_TIME)
            if not grant.revoked:
                grant.release()

    def reader(env, name):
        for _ in range(ROUNDS):
            yield env.timeout(exponential(rng, THINK_MEAN))
            start = env.now
            grant = yield table.acquire("section", name, SHARED)
            wait.record(env.now - start)
            yield env.timeout(EDIT_TIME / 2)
            if not grant.revoked:
                grant.release()

    for i in range(WRITERS):
        env.process(writer(env, "writer-{}".format(i)))
    for i in range(READERS):
        env.process(reader(env, "reader-{}".format(i)))
    env.run()
    counters = table.counters
    return {
        "wait": wait,
        "completed": completed[0],
        "takeovers": counters["takeovers"],
        "conflicts": counters["conflicts"],
        "notifications": notified[0],
        "makespan": env.now,
        "events": env.stats()["events_processed"],
    }


def run_experiment():
    return {style: run_style(style) for style in STYLES}


def test_e3_lock_styles(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [(style, stats["wait"].mean, stats["wait"].p95,
             stats["takeovers"], stats["conflicts"],
             stats["notifications"], stats["makespan"])
            for style, stats in results.items()]
    print_table(
        "E3  lock styles under contention with idle holders",
        ["style", "mean wait (s)", "p95 wait (s)", "takeovers",
         "conflicts", "notifies", "makespan (s)"],
        rows)
    hard = results[HARD]
    tickle = results[TICKLE]
    soft = results[SOFT]
    notification = results[NOTIFICATION]
    # Tickle locks reclaim idle holding: less waiting, finishes earlier.
    assert tickle["takeovers"] > 0
    assert tickle["wait"].mean < hard["wait"].mean
    assert tickle["makespan"] < hard["makespan"]
    # Soft locks never block but flag conflicts instead.
    assert soft["wait"].maximum == 0.0
    assert soft["conflicts"] > 0
    # Notification locks inform watchers of every write.
    assert notification["notifications"] > 0
    # All styles complete the same amount of work.
    assert all(stats["completed"] == WRITERS * ROUNDS
               for stats in results.values())
    benchmark.extra_info["hard_wait"] = hard["wait"].mean
    benchmark.extra_info["tickle_wait"] = tickle["wait"].mean
    record_run(
        "e3_lock_styles",
        sim_time_s=max(stats["makespan"] for stats in results.values()),
        events=sum(stats["events"] for stats in results.values()),
        metrics={
            "hard_wait_mean": hard["wait"].mean,
            "tickle_wait_mean": tickle["wait"].mean,
            "tickle_takeovers": tickle["takeovers"],
            "soft_conflicts": soft["conflicts"],
            "notifications": notification["notifications"],
        })
