"""E12 — floor-control policies trade fairness vs responsiveness (§3.2.2).

Collaboration-transparent conferencing needs a floor policy so a single-
user application receives one coherent input stream.  Six participants
contend for the floor over a meeting; policies compared on one seeded
demand pattern (one participant is a chronic floor-hog):

* free — instant access, but simultaneous speakers collide;
* fcfs — ordered, but the hog's long turns inflate everyone's wait;
* round-robin — preemption bounds the hog;
* chaired — a human chair filters and serialises (decision latency);
* negotiated — the holder is asked to yield (Colab's informal style).
"""

from benchmarks._util import print_table, record_run, run_once
from repro.sessions import (
    ChairedFloor,
    FcfsFloor,
    FreeFloor,
    NegotiatedFloor,
    RoundRobinFloor,
)
from repro.sim import Environment, RandomStreams, exponential

PARTICIPANTS = 6
TURNS_EACH = 8
THINK_MEAN = 3.0
TURN_MEAN = 2.0
HOG_TURN = 12.0     # participant 0 talks forever given the chance


def make_policy(name, env):
    if name == "free":
        return FreeFloor(env)
    if name == "fcfs":
        return FcfsFloor(env)
    if name == "round-robin":
        return RoundRobinFloor(env, quantum=3.0)
    if name == "chaired":
        return ChairedFloor(env, chair="chair", decision_latency=0.5)
    return NegotiatedFloor(
        env, yields=lambda holder, requester: holder != "speaker-0",
        negotiation_latency=0.5)


def run_policy(name):
    env = Environment()
    floor = make_policy(name, env)
    rng = RandomStreams(71).stream("floor-" + name)
    preempted = []
    if isinstance(floor, RoundRobinFloor):
        floor.on_preempt = preempted.append

    def speaker(env, index):
        member = "speaker-{}".format(index)
        for _ in range(TURNS_EACH):
            yield env.timeout(exponential(rng, THINK_MEAN))
            try:
                yield floor.request(member)
            except Exception:
                continue  # chair rejection: sit this turn out
            hold = HOG_TURN if index == 0 \
                else exponential(rng, TURN_MEAN)
            yield env.timeout(hold)
            if floor.holds(member):
                floor.release(member)

    for index in range(PARTICIPANTS):
        env.process(speaker(env, index))
    env.run()
    counts = floor.turn_counts()
    values = [counts.get("speaker-{}".format(i), 0)
              for i in range(PARTICIPANTS)]
    mean_turns = sum(values) / len(values)
    fairness = max(values) - min(values)
    return {
        "wait": floor.wait_time,
        "turns_spread": fairness,
        "collisions": floor.counters["collisions"],
        "preemptions": floor.counters["preemptions"],
        "makespan": env.now,
        "events": env.stats()["events_processed"],
    }


def run_experiment():
    policies = ("free", "fcfs", "round-robin", "chaired", "negotiated")
    return {name: run_policy(name) for name in policies}


def test_e12_floor_control(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [(name, stats["wait"].mean, stats["wait"].p95,
             stats["turns_spread"], stats["collisions"],
             stats["preemptions"], stats["makespan"])
            for name, stats in results.items()]
    print_table(
        "E12  floor policies with one floor-hog among six speakers",
        ["policy", "mean wait (s)", "p95 wait (s)", "turn spread",
         "collisions", "preemptions", "meeting length (s)"],
        rows)
    free = results["free"]
    fcfs = results["fcfs"]
    rr = results["round-robin"]
    # Free floor: zero wait but garbled input (collisions).
    assert free["wait"].maximum == 0.0
    assert free["collisions"] > 0
    # Ordered policies eliminate collisions at the cost of waiting.
    assert fcfs["collisions"] == 0
    assert fcfs["wait"].mean > 0
    # Round-robin bounds the hog: preemptions occur and waits shrink
    # relative to FCFS under the same demand.
    assert rr["preemptions"] > 0
    assert rr["wait"].mean < fcfs["wait"].mean
    benchmark.extra_info["fcfs_wait"] = fcfs["wait"].mean
    benchmark.extra_info["rr_wait"] = rr["wait"].mean
    record_run(
        "e12_floor_control",
        sim_time_s=max(stats["makespan"] for stats in results.values()),
        events=sum(stats["events"] for stats in results.values()),
        metrics={
            "fcfs_wait_mean": fcfs["wait"].mean,
            "rr_wait_mean": rr["wait"].mean,
            "free_collisions": free["collisions"],
            "rr_preemptions": rr["preemptions"],
        })
