"""A5 (ablation) — collaboration-transparent vs collaboration-aware
sharing (§3.2.2).

Transparent sharing puts an unmodified single-user application in front
of the group by multicasting its *display* to every member and forcing
turn-taking on input; aware sharing replicates the application's *state
changes* and lets each member present them locally.

One editing session is run through both architectures while sweeping the
group size.  Measured: bytes shipped per input event (full display
multicast vs small state delta), input serialisation delay (floor wait
vs none), and tailorability (distinct presentations possible).
"""

from benchmarks._util import print_table, run_once
from repro.sessions import (
    AwareSharedObject,
    FcfsFloor,
    SingleUserApp,
    TransparentConference,
    identical_view,
    summary_view,
)
from repro.sim import Environment, RandomStreams, Tally, exponential

GROUP_SIZES = (2, 4, 8)
INPUTS_PER_MEMBER = 10
DISPLAY_SIZE = 20_000      # a full screen update, bytes
DELTA_SIZE = 200           # a state delta, bytes
THINK_MEAN = 1.0
EDIT_HOLD = 0.5


def run_transparent(members_count):
    env = Environment()
    floor = FcfsFloor(env)
    conference = TransparentConference(env, SingleUserApp(), floor,
                                       display_size=DISPLAY_SIZE,
                                       display_latency=0.02)
    members = ["member-{}".format(i) for i in range(members_count)]
    for member in members:
        conference.join(member)
    rng = RandomStreams(131).stream("transparent")
    input_delay = Tally("delay")

    def participant(env, member):
        for i in range(INPUTS_PER_MEMBER):
            yield env.timeout(exponential(rng, THINK_MEAN))
            start = env.now
            yield conference.submit(member, (member, i))
            input_delay.record(env.now - start)
            yield env.timeout(EDIT_HOLD)

    for member in members:
        env.process(participant(env, member))
    env.run()
    inputs = conference.counters["inputs"]
    return {
        "bytes_per_input": conference.display_bytes_sent / inputs,
        "input_delay": input_delay,
        "distinct_presentations": 1,   # WYSIWIS: everyone sees the same
    }


def run_aware(members_count):
    env = Environment()
    shared = AwareSharedObject(env)
    members = ["member-{}".format(i) for i in range(members_count)]
    for i, member in enumerate(members):
        shared.join(member,
                    view=identical_view if i % 2 == 0 else summary_view)
    rng = RandomStreams(131).stream("aware")
    input_delay = Tally("delay")
    bytes_sent = [0]

    def participant(env, member):
        for i in range(INPUTS_PER_MEMBER):
            yield env.timeout(exponential(rng, THINK_MEAN))
            start = env.now
            shared.update(member, "k{}".format(i),
                          "edit {} of a long paragraph by {}".format(
                              i, member))
            bytes_sent[0] += DELTA_SIZE * (members_count - 1)
            input_delay.record(env.now - start)

    for member in members:
        env.process(participant(env, member))
    env.run()
    presentations = set()
    for member in members:
        presentations.add(str(shared.presented[member][-1][2]))
    return {
        "bytes_per_input": bytes_sent[0] / shared.counters["updates"],
        "input_delay": input_delay,
        "distinct_presentations": len(presentations),
    }


def run_experiment():
    rows = []
    for n in GROUP_SIZES:
        transparent = run_transparent(n)
        aware = run_aware(n)
        rows.append((n,
                     transparent["bytes_per_input"],
                     aware["bytes_per_input"],
                     transparent["input_delay"].mean,
                     aware["input_delay"].mean,
                     transparent["distinct_presentations"],
                     aware["distinct_presentations"]))
    return rows


def test_a5_sharing_architectures(benchmark):
    rows = run_once(benchmark, run_experiment)
    print_table(
        "A5  transparent vs aware sharing as the group grows",
        ["members", "transparent B/input", "aware B/input",
         "transparent delay (s)", "aware delay (s)",
         "transparent views", "aware views"],
        rows)
    for (n, t_bytes, a_bytes, t_delay, a_delay,
         t_views, a_views) in rows:
        # Transparent ships the whole display to every member; aware
        # ships small deltas: far cheaper per input at any size.
        assert t_bytes / a_bytes > 20
        # Transparent inputs pass through the floor + display pipeline;
        # aware updates present immediately.
        assert a_delay == 0.0
        assert t_delay > 0.0
        # Transparent is strictly WYSIWIS; aware tailors per member.
        assert t_views == 1
        if n >= 2:
            assert a_views == 2
    benchmark.extra_info["byte_ratio_at_8"] = rows[-1][1] / rows[-1][2]
