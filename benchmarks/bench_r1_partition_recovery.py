"""R1 — surviving partitions: detection, degradation, recovery (§2.3).

*"...reliability stems from the system as a whole"* — a cooperative
session should survive the failure of individual connections by
degrading gracefully and recovering automatically, not by collapsing.

Setup: the two chaos workloads from :mod:`repro.faults.chaos`.

* **partition-recovery** — a four-member floor-controlled session with a
  QoS-monitored media flow across a two-site WAN.  A scheduled two-way
  partition splits the sites; the phi-accrual detector suspects the far
  members (automatic view change), the degradation manager reclaims the
  suspected holder's floor, sheds the media contract and drops the
  session to asynchronous mode when the SLO burn alert fires.  After the
  heal the members rejoin and full service is restored.  Compared
  against the identical stack under an *empty* fault schedule (the
  injector must be inert without scheduled events).
* **flaky-links** — recovery policies (exponential backoff, deadline
  budget, per-destination circuit breaker) under link flaps, a loss
  burst and a latency storm, with tail-based trace sampling rescuing
  the error traces the head sampler would have dropped.

Telemetry lands in ``BENCH_PR4.json``.
"""

from benchmarks._util import print_table, record_run, run_once
from repro.faults.chaos import (
    HEAL_AT,
    MEMBERS,
    PARTITION_AT,
    flaky_links_workload,
    partition_recovery_workload,
)

SEED = 31


def run_experiment():
    return {
        "baseline": partition_recovery_workload(seed=SEED,
                                                include_faults=False),
        "partition": partition_recovery_workload(seed=SEED),
        "flaky": flaky_links_workload(seed=SEED),
    }


def test_r1_partition_recovery(benchmark):
    results = run_once(benchmark, run_experiment)
    baseline = results["baseline"]
    partition = results["partition"]
    flaky = results["flaky"]

    rows = []
    for name in ("baseline", "partition"):
        r = results[name]
        rows.append((
            name, len(r["suspicions"]), len(r["views"]),
            "-" if r["recovery_time"] is None else r["recovery_time"],
            "-" if r["slo_fired_at"] is None else r["slo_fired_at"],
            "-" if r["slo_cleared_at"] is None else r["slo_cleared_at"],
            r["session_counters"].get("floor_reclaims", 0),
            r["final_throughput"]))
    print_table(
        "R1  partition recovery: healthy baseline vs injected split",
        ["run", "suspicions", "views", "recovery s", "slo fired",
         "slo cleared", "floor reclaims", "final tp"],
        rows)
    print_table(
        "R1  flaky links: recovery policies + tail sampling",
        ["rpc ok", "rejected fast", "rpc retries", "breaker opened",
         "chan retries", "chan gave up", "tail promoted"],
        [(flaky["outcomes"].get("ok", 0),
          flaky["breaker_rejected"],
          flaky["metric_rpc_retries"],
          flaky["metric_breaker_opened"],
          flaky["chan_retries"],
          flaky["chan_gave_up"],
          flaky["tail_promoted"])])

    # Without scheduled faults the injector is inert: full membership,
    # no suspicions, the SLO never fires, full service throughout.
    assert baseline["faults"] == []
    assert baseline["suspicions"] == []
    assert baseline["slo_fired_at"] is None
    assert baseline["session_transitions"] == []
    assert baseline["final_throughput"] == 150000.0

    # The partition is detected (after it starts), shrinks the view,
    # and the heal brings every member back automatically.
    assert partition["first_suspicion_at"] is not None
    assert partition["first_suspicion_at"] > PARTITION_AT
    assert min(len(v["members"]) for v in partition["views"]) \
        < len(MEMBERS)
    assert partition["recovered_at"] is not None
    assert partition["recovery_time"] is not None
    assert partition["recovery_time"] <= 3.0

    # The SLO burn alert fires during the split and clears after the
    # heal; degradation sheds the contract and recovery restores it.
    assert partition["slo_fired_at"] is not None
    assert PARTITION_AT < partition["slo_fired_at"] < HEAL_AT
    assert partition["slo_cleared_at"] is not None
    assert partition["slo_cleared_at"] > HEAL_AT
    events = [entry["event"] for entry in partition["degradation_log"]]
    assert "degrade" in events and "recover" in events
    assert partition["final_throughput"] == 150000.0

    # The suspected floor holder's floor is reclaimed; the session dips
    # to asynchronous mode and comes back.
    assert partition["session_counters"]["floor_reclaims"] == 1
    assert len(partition["session_transitions"]) == 2

    # Fault injection is traced: every injected event has a span.
    assert partition["fault_spans"] == ["fault.heal", "fault.partition"]
    assert partition["faults_injected"] == 2

    # Flaky links: the policies visibly engage and the breaker recovers.
    assert flaky["metric_rpc_retries"] > 0
    assert flaky["metric_breaker_opened"] > 0
    assert flaky["breaker_rejected"] > 0
    assert flaky["breaker"] == {"server": "closed"}
    assert flaky["chan_retries"] > 0
    assert flaky["chan_gave_up"] > 0
    assert flaky["tail_promoted"] > 0
    assert flaky["outcomes"].get("ok", 0) > 100

    benchmark.extra_info["recovery_time_s"] = partition["recovery_time"]
    benchmark.extra_info["slo_fired_at"] = partition["slo_fired_at"]
    record_run(
        "r1_partition_recovery",
        sim_time_s=partition["env"]["now"],
        events=sum(results[name]["env"]["events_processed"]
                   for name in results),
        metrics={
            "first_suspicion_at": partition["first_suspicion_at"],
            "recovered_at": partition["recovered_at"],
            "recovery_time_s": partition["recovery_time"],
            "slo_fired_at": partition["slo_fired_at"],
            "slo_cleared_at": partition["slo_cleared_at"],
            "floor_reclaims":
                partition["session_counters"]["floor_reclaims"],
            "qos_windows_ok": partition["qos_windows"]["ok"],
            "qos_windows_violated": partition["qos_windows"]["violated"],
            "flaky_rpc_ok": flaky["outcomes"].get("ok", 0),
            "flaky_rpc_retries": flaky["metric_rpc_retries"],
            "flaky_breaker_opened": flaky["metric_breaker_opened"],
            "flaky_breaker_rejected": flaky["breaker_rejected"],
            "flaky_chan_retries": flaky["chan_retries"],
            "flaky_chan_gave_up": flaky["chan_gave_up"],
            "flaky_tail_promoted": flaky["tail_promoted"],
        },
        path="BENCH_PR4.json")
