"""A3 (ablation) — continuous awareness vs Portholes digests (§3.3.2).

Portholes supported awareness *asynchronously*: periodic low-fidelity
summaries instead of a continuous event stream.  The trade is load
against freshness.  One bursty activity trace is delivered to a work
group as (a) continuous events and (b) digests at three intervals; we
measure deliveries per subscriber and the staleness (age of information
when it reaches the subscriber).
"""

from benchmarks._util import print_table, run_once
from repro.awareness import AwarenessBus, DigestService
from repro.sim import Environment, RandomStreams, Tally, exponential

SUBSCRIBERS = 5
ACTORS = 6
ACTIONS_PER_ACTOR = 40
THINK_MEAN = 6.0
DIGEST_INTERVALS = (30.0, 120.0)


def generate_activity(env, bus):
    rng = RandomStreams(111).stream("a3")

    def actor(env, name):
        for i in range(ACTIONS_PER_ACTOR):
            yield env.timeout(exponential(rng, THINK_MEAN))
            bus.publish(name, "artefact-{}".format(i % 7), "edit")

    for i in range(ACTORS):
        env.process(actor(env, "actor-{}".format(i)))


def run_continuous():
    env = Environment()
    bus = AwarenessBus(env)
    deliveries = [0]
    staleness = Tally("staleness")
    for i in range(SUBSCRIBERS):
        def on_event(event, i=i):
            deliveries[0] += 1
            staleness.record(env.now - event.at)
        bus.subscribe("colleague-{}".format(i), on_event)
    generate_activity(env, bus)
    env.run()
    return {"deliveries": deliveries[0] / SUBSCRIBERS,
            "staleness": staleness}


def run_digested(interval):
    env = Environment()
    bus = AwarenessBus(env)
    service = DigestService(env, bus, interval=interval)
    deliveries = [0]
    staleness = Tally("staleness")
    for i in range(SUBSCRIBERS):
        def on_digest(digest, i=i):
            deliveries[0] += 1
            for event in digest.events:
                staleness.record(env.now - event.at)
        service.subscribe("colleague-{}".format(i), on_digest)
    generate_activity(env, bus)
    env.run(until=ACTORS * ACTIONS_PER_ACTOR * THINK_MEAN)
    return {"deliveries": deliveries[0] / SUBSCRIBERS,
            "staleness": staleness}


def run_experiment():
    results = {"continuous events": run_continuous()}
    for interval in DIGEST_INTERVALS:
        results["digest every {:.0f}s".format(interval)] = \
            run_digested(interval)
    return results


def test_a3_digest_tradeoff(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [(name, stats["deliveries"], stats["staleness"].mean,
             stats["staleness"].maximum)
            for name, stats in results.items()]
    print_table(
        "A3  continuous awareness vs Portholes digests "
        "({} actors x {} actions)".format(ACTORS, ACTIONS_PER_ACTOR),
        ["mode", "deliveries per subscriber", "mean staleness (s)",
         "max staleness (s)"],
        rows)
    continuous = results["continuous events"]
    digest_30 = results["digest every 30s"]
    digest_120 = results["digest every 120s"]
    # Continuous: one delivery per action, zero staleness.
    assert continuous["deliveries"] == ACTORS * ACTIONS_PER_ACTOR
    assert continuous["staleness"].maximum == 0.0
    # Digests: far fewer deliveries, staleness bounded by the interval.
    assert digest_30["deliveries"] < continuous["deliveries"] / 4
    assert digest_120["deliveries"] < digest_30["deliveries"]
    assert digest_30["staleness"].maximum <= 30.0 + 1e-9
    assert digest_120["staleness"].maximum <= 120.0 + 1e-9
    assert digest_120["staleness"].mean > digest_30["staleness"].mean
    benchmark.extra_info["reduction_30s"] = (
        continuous["deliveries"] / digest_30["deliveries"])
