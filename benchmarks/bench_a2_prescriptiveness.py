"""A2 (ablation) — the cost of prescriptive coordination models (§4.1).

The paper quotes the Co-ordinator experience: *"Co-ordinator makes
explicit and textual a dimension of human communication which is
otherwise contained in the overall context of interaction"* — an overly
prescriptive model rejects the work people actually do.

We generate interaction traces with a controlled *informality rate*
(acknowledgements, thanks, a colleague covering a step, work done
slightly out of script — all observed in real offices, §2.2) and replay
each trace through four coordination models:

* speech-act conversation (Coordinator) — strict state machine;
* office procedure, strict (Domino-style);
* office procedure, tolerant — deviations logged, work proceeds;
* informal routing (Object Lens) — nothing rejected.

Expected shape: rejection rates of the strict models grow linearly with
informality and completion collapses; the tolerant/informal models keep
completing while still recording what deviated.
"""

from benchmarks._util import print_table, run_once
from repro.sim import RandomStreams
from repro.workflow import (
    FlexibleRouter,
    Procedure,
    STRICT,
    Step,
    TOLERANT,
    WorkObject,
    run_trace,
)

CASES = 60
INFORMALITY = (0.0, 0.25, 0.5)

CANONICAL_CFA = [("customer", "request"), ("performer", "promise"),
                 ("performer", "report_completion"),
                 ("customer", "declare_complete")]
SOCIAL_ACTS = [("performer", "acknowledge"), ("customer", "thank"),
               ("performer", "clarify"), ("customer", "nudge")]

CANONICAL_PROCEDURE = [("employee", "file_claim"),
                       ("supervisor", "approve"),
                       ("finance", "transfer")]
PROCEDURE_DEVIATIONS = [("colleague", "approve"),
                        ("employee", "resubmit_claim"),
                        ("supervisor", "transfer")]


def make_cfa_trace(rng, informality):
    trace = []
    for act in CANONICAL_CFA:
        if rng.random() < informality:
            trace.append(SOCIAL_ACTS[rng.randrange(len(SOCIAL_ACTS))])
        trace.append(act)
    return trace


def make_procedure_trace(rng, informality):
    trace = []
    for step in CANONICAL_PROCEDURE:
        if rng.random() < informality:
            trace.append(PROCEDURE_DEVIATIONS[
                rng.randrange(len(PROCEDURE_DEVIATIONS))])
        else:
            trace.append(step)
    return trace


def expense_procedure():
    return Procedure("expenses", [
        Step("submit", "employee", "file_claim"),
        Step("check", "supervisor", "approve"),
        Step("pay", "finance", "transfer"),
    ])


def run_informality(informality):
    rng = RandomStreams(91).stream("a2-{:.2f}".format(informality))
    stats = {name: {"completed": 0, "rejections": 0}
             for name in ("speech-act", "procedure-strict",
                          "procedure-tolerant", "informal-routing")}
    for case in range(CASES):
        cfa_trace = make_cfa_trace(rng, informality)
        conversation, rejections = run_trace("customer", "performer",
                                             [(p, a) for p, a in
                                              _bind(cfa_trace)])
        stats["speech-act"]["rejections"] += rejections
        if conversation.state == "completed":
            stats["speech-act"]["completed"] += 1

        proc_trace = make_procedure_trace(rng, informality)
        done, errors = expense_procedure().instantiate(
            STRICT).run_trace(proc_trace)
        stats["procedure-strict"]["rejections"] += errors
        stats["procedure-strict"]["completed"] += int(done)

        done, errors = expense_procedure().instantiate(
            TOLERANT).run_trace(proc_trace)
        stats["procedure-tolerant"]["rejections"] += errors
        stats["procedure-tolerant"]["completed"] += int(done)

        router = FlexibleRouter()
        obj = WorkObject("claim")
        router.submit(obj)
        done, rejections = router.run_trace(
            obj, proc_trace + [("finance", "done")])
        stats["informal-routing"]["rejections"] += rejections
        stats["informal-routing"]["completed"] += int(done)
    return stats


def _bind(trace):
    """Map role names to the two conversation parties."""
    return [("customer" if role == "customer" else "performer", act)
            for role, act in trace]


def run_experiment():
    return {informality: run_informality(informality)
            for informality in INFORMALITY}


def test_a2_prescriptiveness(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = []
    for informality, stats in results.items():
        for model, values in stats.items():
            rows.append(("{:.0%}".format(informality), model,
                         values["completed"] / CASES,
                         values["rejections"]))
    print_table(
        "A2  coordination models vs real (informal) work patterns "
        "({} cases each)".format(CASES),
        ["informality", "model", "completion rate", "rejections"],
        rows)
    clean = results[0.0]
    messy = results[0.5]
    # With canonical behaviour every model completes everything.
    assert all(values["completed"] == CASES
               for values in clean.values())
    # Informality: the strict models reject and strict procedures stall...
    assert messy["speech-act"]["rejections"] > 0
    assert messy["procedure-strict"]["completed"] < CASES
    assert messy["procedure-strict"]["rejections"] > 0
    # ...while tolerant and informal models keep completing, with the
    # deviations recorded rather than forbidden.
    assert messy["procedure-tolerant"]["completed"] == CASES
    assert messy["informal-routing"]["completed"] == CASES
    assert messy["informal-routing"]["rejections"] == 0
    assert messy["procedure-tolerant"]["rejections"] > 0
    # Rejections grow with informality for the strict models.
    strict_series = [results[i]["procedure-strict"]["rejections"]
                     for i in INFORMALITY]
    assert strict_series == sorted(strict_series)
    benchmark.extra_info["strict_completion_at_50"] = (
        messy["procedure-strict"]["completed"] / CASES)
