"""F1-fuzz — chaos-search throughput: generation, oracles, shrinking.

The fuzz engine's budget is spent in three places, measured separately:

* **generation** — sampling valid schedules against a static topology
  (pure RNG + schedule building; thousands per second);
* **oracle evaluation** — the per-trial cost split into the workload
  runs themselves (one for a single-run trial, two when the replay
  oracle is armed) and the oracle suite's judgement over the collected
  evidence (microseconds — the runs dominate);
* **shrinking** — delta-debugging a real failure from the seed-7
  partition-recovery campaign down to its minimal reproducer, counting
  probes and wall time per probe.

Correctness is asserted alongside: two budget-3 campaigns under one
seed must produce byte-identical summaries, and the shrink must
converge to the known 2-event minimum.  Figures land in
``BENCH_PR9.json``.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from benchmarks._util import print_table, record_run, run_once
from repro.faults.fuzz import (
    ScheduleGenerator,
    evaluate_schedule,
    get_profile,
    run_campaign,
    run_trial,
    _shrink_test,
)
from repro.faults.oracles import (
    TrialEvidence,
    check_hb,
    check_liveness,
    check_replay,
    check_slo_clears,
    evaluate,
)
from repro.faults.schedule import FaultSchedule
from repro.faults.shrink import shrink_schedule
from repro.net import Network, Topology
from repro.sim import Environment, RandomStreams

SEED = 7
WORKLOAD_SEED = 31
GENERATE_COUNT = 2000
ORACLE_REPEATS = 2000
CAMPAIGN_BUDGET = 3

ORACLE_FNS = (("replay", check_replay), ("hb-conflicts", check_hb),
              ("liveness", check_liveness),
              ("slo-clears", check_slo_clears))


def _static_net() -> Network:
    env = Environment()
    streams = RandomStreams(WORKLOAD_SEED)
    topo = Topology(env)
    for a, b in (("n0", "n1"), ("n1", "n2"), ("n2", "n3"),
                 ("n0", "n3"), ("n0", "n2")):
        topo.add_link(a, b, latency=0.005, bandwidth=1e7,
                      rng=streams.stream("link-{}-{}".format(a, b)))
    return Network(env, topo)


def run_experiment() -> Dict[str, Any]:
    results: Dict[str, Any] = {}

    # -- generation throughput ------------------------------------------
    profile = get_profile("fuzz-probe")
    net = _static_net()
    generator = ScheduleGenerator(profile,
                                  RandomStreams(SEED).stream("bench"))
    started = time.perf_counter()
    events = 0
    for _ in range(GENERATE_COUNT):
        events += len(generator.generate(net))
    generation_s = time.perf_counter() - started
    results["generate"] = {
        "schedules": GENERATE_COUNT,
        "events": events,
        "wall_s": generation_s,
        "schedules_per_s": GENERATE_COUNT / generation_s,
    }

    # -- trial cost: single-run vs replay-armed trials -------------------
    trial_generator = ScheduleGenerator(
        profile, RandomStreams(SEED).stream("trial-bench"))
    started = time.perf_counter()
    trial = run_trial("fuzz-probe", WORKLOAD_SEED, trial_generator)
    two_run_s = time.perf_counter() - started
    started = time.perf_counter()
    single = evaluate_schedule("fuzz-probe", WORKLOAD_SEED,
                               trial["schedule"], runs=1)
    one_run_s = time.perf_counter() - started
    results["trial"] = {
        "one_run_s": one_run_s,
        "two_run_s": two_run_s,
        "replay_oracle_overhead_s": two_run_s - one_run_s,
    }
    assert trial["digests"][0] == trial["digests"][1]
    assert single["workload"] == "fuzz-probe"

    # -- per-oracle judgement cost over fixed evidence -------------------
    schedule = FaultSchedule.from_dict(trial["schedule"])
    evidence = TrialEvidence(profile, schedule, {"inflight": {}},
                             {"write-write": 0}, trial["digests"])
    oracle_micro: Dict[str, float] = {}
    for name, oracle in ORACLE_FNS:
        started = time.perf_counter()
        for _ in range(ORACLE_REPEATS):
            oracle(evidence)
        oracle_micro[name] = ((time.perf_counter() - started)
                              / ORACLE_REPEATS * 1e6)
    started = time.perf_counter()
    for _ in range(ORACLE_REPEATS):
        evaluate(evidence)
    oracle_micro["full-suite"] = ((time.perf_counter() - started)
                                  / ORACLE_REPEATS * 1e6)
    results["oracle_us"] = oracle_micro

    # -- campaign determinism (and its wall cost) ------------------------
    started = time.perf_counter()
    first = run_campaign("fuzz-probe", budget=CAMPAIGN_BUDGET,
                         seed=SEED + 4)
    campaign_s = time.perf_counter() - started
    second = run_campaign("fuzz-probe", budget=CAMPAIGN_BUDGET,
                          seed=SEED + 4)
    assert first == second, "same-seed campaigns must be identical"
    results["campaign"] = {
        "budget": CAMPAIGN_BUDGET,
        "wall_s": campaign_s,
        "trials_per_s": CAMPAIGN_BUDGET / campaign_s,
    }

    # -- shrink cost on a real found failure -----------------------------
    prp = get_profile("partition-recovery")
    failing_generator = ScheduleGenerator(
        prp, RandomStreams(SEED).stream("trial-00000"))
    failure = run_trial("partition-recovery", WORKLOAD_SEED,
                        failing_generator)
    assert failure["oracles"], \
        "seed-7 trial 0 is the known failing fixture"
    target = failure["oracles"][0]
    started = time.perf_counter()
    report = shrink_schedule(
        failure["schedule"]["events"],
        _shrink_test("partition-recovery", WORKLOAD_SEED, target))
    shrink_s = time.perf_counter() - started
    assert report["reproduced"]
    assert report["events_after"] == 2, \
        "the known fixture shrinks to one onset/lift pair"
    results["shrink"] = {
        "events_before": report["events_before"],
        "events_after": report["events_after"],
        "probes": report["tests_run"],
        "wall_s": shrink_s,
        "s_per_probe": shrink_s / max(1, report["tests_run"]),
    }
    return results


def test_fuzz_throughput(benchmark):
    results = run_once(benchmark, run_experiment)

    print_table(
        "F1-fuzz: chaos-search engine cost breakdown",
        ["stage", "metric", "value"],
        [
            ["generate", "schedules/s",
             results["generate"]["schedules_per_s"]],
            ["generate", "events sampled", results["generate"]["events"]],
            ["trial", "1-run eval (s)", results["trial"]["one_run_s"]],
            ["trial", "2-run eval (s)", results["trial"]["two_run_s"]],
            ["oracles", "full suite (us)",
             results["oracle_us"]["full-suite"]],
            ["campaign", "trials/s",
             results["campaign"]["trials_per_s"]],
            ["shrink", "probes", results["shrink"]["probes"]],
            ["shrink", "s/probe", results["shrink"]["s_per_probe"]],
            ["shrink", "events", "{} -> {}".format(
                results["shrink"]["events_before"],
                results["shrink"]["events_after"])],
        ])

    # Loose backstops only — BENCH_PR9.json carries the real figures.
    assert results["generate"]["schedules_per_s"] > 50
    assert results["shrink"]["probes"] > 0

    record_run(
        "f1_fuzz_throughput",
        metrics={
            "generate.schedules_per_s":
                results["generate"]["schedules_per_s"],
            "generate.events": results["generate"]["events"],
            "trial.one_run_s": results["trial"]["one_run_s"],
            "trial.two_run_s": results["trial"]["two_run_s"],
            "trial.replay_overhead_s":
                results["trial"]["replay_oracle_overhead_s"],
            "oracle.full_suite_us": results["oracle_us"]["full-suite"],
            "oracle.replay_us": results["oracle_us"]["replay"],
            "oracle.hb_us": results["oracle_us"]["hb-conflicts"],
            "oracle.liveness_us": results["oracle_us"]["liveness"],
            "oracle.slo_us": results["oracle_us"]["slo-clears"],
            "campaign.trials_per_s":
                results["campaign"]["trials_per_s"],
            "shrink.probes": results["shrink"]["probes"],
            "shrink.s_per_probe": results["shrink"]["s_per_probe"],
            "shrink.events_before": results["shrink"]["events_before"],
            "shrink.events_after": results["shrink"]["events_after"],
        },
        path="BENCH_PR9.json")


if __name__ == "__main__":
    run_experiment()
