"""E11 — ordering guarantees vs latency in group communication (§3.1/§4.2.2).

Cooperative sessions need messages delivered in an order users can make
sense of — but stronger orderings cost latency.  Five members broadcast
over a jittery WAN; some messages are *replies* to messages the sender
just delivered (real causal dependencies).  Protocols compared on one
trace:

* unordered — cheapest, but replies can arrive before their originals;
* FIFO — per-sender order only; cross-sender causality still breaks;
* causal — vector-clock hold-back: no reply ever precedes its original;
* total — sequencer: identical delivery sequence everywhere, at the cost
  of the extra hop through the sequencer.
"""

from benchmarks._util import print_table, run_once
from repro.groups import ProcessGroup
from repro.net import Network, wan
from repro.sim import Environment, RandomStreams, Tally, exponential

MEMBERS = 5
MESSAGES_PER_MEMBER = 12
REPLY_PROBABILITY = 0.5
#: Jitter large relative to the base latency — e.g. congested Internet
#: paths — so cross-sender reordering actually occurs.
JITTER = 0.08
SITE_LATENCY = 0.01


def run_protocol(ordering):
    env = Environment()
    topo = wan(env, sites=MEMBERS, hosts_per_site=1,
               site_latency=SITE_LATENCY, jitter=JITTER, seed=61)
    net = Network(env, topo)
    group = ProcessGroup(net, "session", ordering=ordering)
    members = ["site{}.host0".format(i) for i in range(MEMBERS)]
    endpoints = {member: group.join(member) for member in members}
    rng = RandomStreams(62).stream("order-" + ordering)
    latency = Tally("latency")
    sent_at = {}
    #: ground-truth causal pairs: reply id -> original id.
    causes = {}

    for member, endpoint in endpoints.items():
        def on_deliver(message, member=member,
                       endpoint=endpoint):
            latency.record(env.now - message.sent_at)
            payload = message.payload
            if payload["kind"] == "original" \
                    and rng.random() < REPLY_PROBABILITY \
                    and payload["replied"] is False \
                    and message.sender != member:
                payload["replied"] = True
                reply_id = "reply-{}-{}".format(member, payload["id"])
                causes[reply_id] = payload["id"]
                sent_at[reply_id] = env.now
                endpoint.broadcast({"kind": "reply", "id": reply_id,
                                    "replied": True}, size=100)
        endpoint.on_deliver(on_deliver)

    def chatter(env, member, index):
        endpoint = endpoints[member]
        for i in range(MESSAGES_PER_MEMBER):
            yield env.timeout(exponential(rng, 0.2))
            message_id = "{}-{}".format(member, i)
            sent_at[message_id] = env.now
            endpoint.broadcast({"kind": "original", "id": message_id,
                                "replied": False}, size=100)

    for index, member in enumerate(members):
        env.process(chatter(env, member, index))
    env.run()

    # Count causal violations: a reply delivered before its original.
    violations = 0
    for endpoint in endpoints.values():
        seen_positions = {m.payload["id"]: pos for pos, m in
                          enumerate(endpoint.delivered_log)}
        for reply_id, original_id in causes.items():
            if reply_id in seen_positions \
                    and original_id in seen_positions \
                    and seen_positions[reply_id] < \
                    seen_positions[original_id]:
                violations += 1
    # Total order: do all members deliver the identical sequence?
    sequences = [[m.payload["id"] for m in endpoint.delivered_log]
                 for endpoint in endpoints.values()]
    common = [seq for seq in sequences if len(seq) == len(sequences[0])]
    identical = all(seq == sequences[0] for seq in common) \
        and len(common) == len(sequences)
    return {
        "latency": latency,
        "violations": violations,
        "identical_sequences": identical,
        "delivered": sum(len(endpoint.delivered_log)
                         for endpoint in endpoints.values()),
    }


def run_experiment():
    return {ordering: run_protocol(ordering)
            for ordering in ("unordered", "fifo", "causal", "total")}


def test_e11_ordering(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [(ordering, stats["delivered"],
             stats["latency"].mean * 1000,
             stats["latency"].p95 * 1000,
             stats["violations"],
             "yes" if stats["identical_sequences"] else "no")
            for ordering, stats in results.items()]
    print_table(
        "E11  ordering protocols: delivery latency vs guarantees",
        ["ordering", "deliveries", "mean lat (ms)", "p95 lat (ms)",
         "causal violations", "identical sequences"],
        rows)
    # Shape: weak orderings violate causality on a jittery network...
    assert results["unordered"]["violations"] \
        + results["fifo"]["violations"] > 0
    assert results["unordered"]["violations"] > 0
    # ...causal and total never do.
    assert results["causal"]["violations"] == 0
    assert results["total"]["violations"] == 0
    # Total order gives identical sequences, at higher latency than
    # unordered (the sequencer hop).
    assert results["total"]["identical_sequences"]
    assert results["total"]["latency"].mean > \
        results["unordered"]["latency"].mean
    benchmark.extra_info["causal_cost_ms"] = (
        results["causal"]["latency"].mean
        - results["unordered"]["latency"].mean) * 1000
