"""E1 — response time and notification time per mechanism (§4.2.1).

Ellis's two real-time requirements: *"response time, which must be short
to support a highly interactive system, and notification time, the time
it takes for one user's actions to be propagated to the other users"*.

Four editors on a WAN make edits with think times.  Three mechanisms:

* **operation transformation** (GROVE/Jupiter): local application is
  immediate (response 0); notification = network propagation;
* **pessimistic locking** (transactions): response includes waiting for
  the lock under contention; notification waits for the release/commit;
* **reservation** (floor passing): response includes waiting for the
  floor; no interleaving at all.

Expected shape: OT response ≈ 0 and stays flat as contention rises;
locking and reservation response grow with contention; all three deliver
every edit eventually.
"""

from benchmarks._util import print_table, record_run, run_once
from repro import CooperativePlatform
from repro.concurrency import (
    EXCLUSIVE,
    LockTable,
    ReservationControl,
    SharedStore,
)
from repro.sim import Environment, RandomStreams, Tally, exponential

EDITORS = 4
EDITS_PER_EDITOR = 15
THINK_MEAN = 2.0
EDIT_DURATION = 1.0
NET_LATENCY = 0.04


def run_ot():
    platform = CooperativePlatform(sites=EDITORS, hosts_per_site=1,
                                   site_latency=NET_LATENCY / 2, seed=5)
    members = platform.host_names()
    session = platform.create_session("edit", members, floor=None)
    doc = session.shared_document("doc", initial="x" * 50)
    response = Tally("ot-response")
    notification = Tally("ot-notify")
    sent_at = {}

    for member in members:
        client = doc.client(member)

        def on_remote(ops, member=member):
            for op in ops:
                key = getattr(op, "char", None)
                if key in sent_at:
                    notification.record(
                        platform.env.now - sent_at[key])

        client.on_remote = on_remote

    rng = RandomStreams(1).stream("ot")
    marker = iter(range(10 ** 6))

    def editor(env, member, index):
        client = doc.client(member)
        for _ in range(EDITS_PER_EDITOR):
            yield env.timeout(exponential(rng, THINK_MEAN))
            start = env.now
            tag = chr(33 + (next(marker) % 90))
            sent_at[tag] = env.now
            client.insert(len(client.text) // 2, tag)
            response.record(env.now - start)  # immediate: same instant

    for index, member in enumerate(members):
        platform.env.process(editor(platform.env, member, index))
    platform.run()
    return response, notification


def run_locking():
    env = Environment()
    store = SharedStore()
    store.write("doc", "")
    table = LockTable(env)
    response = Tally("lock-response")
    notification = Tally("lock-notify")
    rng = RandomStreams(2).stream("lock")

    def editor(env, name):
        for _ in range(EDITS_PER_EDITOR):
            yield env.timeout(exponential(rng, THINK_MEAN))
            start = env.now
            yield env.timeout(NET_LATENCY)  # reach the lock server
            grant = yield table.acquire("doc", name, EXCLUSIVE)
            response.record(env.now - start)
            yield env.timeout(EDIT_DURATION)  # hold while editing
            store.write("doc", name, writer=name, at=env.now)
            yield env.timeout(NET_LATENCY)  # propagation to others
            # Others see the change only now, after hold + propagation.
            notification.record(env.now - start)
            grant.release()

    for i in range(EDITORS):
        env.process(editor(env, "editor-{}".format(i)))
    env.run()
    return response, notification


def run_reservation():
    env = Environment()
    floor = ReservationControl(env)
    response = Tally("resv-response")
    notification = Tally("resv-notify")
    rng = RandomStreams(3).stream("resv")

    def editor(env, name):
        for _ in range(EDITS_PER_EDITOR):
            yield env.timeout(exponential(rng, THINK_MEAN))
            start = env.now
            yield floor.request(name)
            response.record(env.now - start)
            yield env.timeout(EDIT_DURATION)
            notification.record(env.now - start + NET_LATENCY)
            floor.release(name)

    for i in range(EDITORS):
        env.process(editor(env, "editor-{}".format(i)))
    env.run()
    return response, notification


def run_experiment():
    return {
        "operation transformation": run_ot(),
        "pessimistic locking": run_locking(),
        "reservation (floor)": run_reservation(),
    }


def test_e1_response_notification(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = []
    for name, (response, notification) in results.items():
        rows.append((name, response.count, response.mean, response.p95,
                     notification.mean))
    print_table(
        "E1  response time vs notification time under contention",
        ["mechanism", "edits", "response mean (s)", "response p95 (s)",
         "notify mean (s)"],
        rows)
    ot_response, ot_notify = results["operation transformation"]
    lock_response, _ = results["pessimistic locking"]
    resv_response, _ = results["reservation (floor)"]
    assert ot_response.count == EDITORS * EDITS_PER_EDITOR
    # GROVE's claim: operations proceed immediately.
    assert ot_response.maximum == 0.0
    # Locking and reservation pay contention in response time.
    assert lock_response.mean > 0.1
    assert resv_response.mean > 0.1
    # OT notification is bounded by propagation, far below lock waits.
    assert ot_notify.mean < 0.5
    benchmark.extra_info["lock_over_ot_response"] = (
        lock_response.mean + 1e-9) / (ot_response.mean + 1e-9)
    record_run("e1_response_notification", metrics={
        "ot_response_mean": ot_response.mean,
        "ot_notify_mean": ot_notify.mean,
        "lock_response_mean": lock_response.mean,
        "resv_response_mean": resv_response.mean,
        "edits": ot_response.count,
    })
