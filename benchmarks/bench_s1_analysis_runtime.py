"""S1 — whole-repo analyzer runtime, per pass.

The analyzer's contract is "fast enough to gate every CI run": parse
the repo once into the shared AST index, then run lint, taint,
protocol and lock-order over that index.  This bench times each pass
(plus the index and call-graph builds) over ``src/`` and records the
breakdown into ``BENCH_PR7.json``.  The hard ceiling asserted here is
generous (30 s on a cold CI machine); the checked-in figures are the
real artifact.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_s1_analysis_runtime.py
"""

from __future__ import annotations

import os
from typing import Any, Dict

from benchmarks._util import print_table, record_run, run_once
from repro.analysis.check import PASS_NAMES, run_passes

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: Total analyzer budget (seconds): generous for cold CI machines.
BUDGET_S = 30.0


def run_experiment() -> Dict[str, Any]:
    findings, timings, index = run_passes([REPO_SRC])
    functions = sum(len(module.functions)
                    for module in index.modules.values())
    return {
        "findings": len(findings),
        "modules": len(index.modules),
        "functions": functions,
        "timings": timings,
    }


def test_s1_analysis_runtime(benchmark):
    result = run_once(benchmark, run_experiment)
    timings = result["timings"]
    total = sum(timings.values())

    print_table(
        "S1: whole-repo analyzer runtime ({} modules, {} functions)"
        .format(result["modules"], result["functions"]),
        ["stage", "wall (s)", "share"],
        [(name, round(timings[name], 4),
          "{:.0f}%".format(100.0 * timings[name] / total if total
                           else 0.0))
         for name in sorted(timings, key=timings.get, reverse=True)]
        + [("total", round(total, 4), "100%")])

    # The shipped tree gates clean, every pass actually ran, and the
    # whole sweep stays inside the CI budget.
    assert result["findings"] == 0, \
        "shipped tree must be analyzer-clean"
    for name in PASS_NAMES + ("index", "callgraph"):
        assert name in timings, "missing stage timing: " + name
        assert timings[name] >= 0.0
    assert total < BUDGET_S, \
        "analyzer took {:.1f}s (budget {}s)".format(total, BUDGET_S)

    metrics = {"{}_s".format(name): round(value, 4)
               for name, value in timings.items()}
    metrics.update({
        "total_s": round(total, 4),
        "modules": result["modules"],
        "functions": result["functions"],
        "findings": result["findings"],
        "budget_s": BUDGET_S,
    })
    record_run("s1_analysis_runtime", metrics=metrics,
               path="BENCH_PR7.json")
