"""E5 — access control for collaboration (§4.2.1 "Security").

Three claims operationalised:

1. **Dynamic change**: the classic access matrix assumes rights are
   "set up and only occasionally altered by a single administrator";
   CSCW needs changes that take effect *during* the collaboration.  We
   measure time-to-effect of a rights change under (a) the administered
   matrix, (b) dynamic roles and (c) negotiation between the parties.
2. **Fine granularity**: per-line rights via patterns and via the
   Shen & Dewan object hierarchy, with the check cost as the document
   hierarchy deepens.
3. **Visibility**: the role policy prints as a complete specification.
"""

from benchmarks._util import print_table, run_once
from repro.access import (
    AccessMatrix,
    AccessNegotiator,
    GRANTED,
    Hierarchy,
    READ,
    Role,
    RoleBasedPolicy,
    ShenDewanPolicy,
    WRITE,
)
from repro.sim import Environment, Tally

ADMIN_DELAY = 120.0      # the administrator gets to it eventually
NEGOTIATION_RTT = 2.0    # colleagues answer within seconds
CHANGES = 10


def run_matrix_changes():
    env = Environment()
    matrix = AccessMatrix(env, administrator="admin",
                          admin_delay=ADMIN_DELAY)
    effect = Tally("matrix-effect")

    def collaboration(env):
        for i in range(CHANGES):
            requested = env.now
            done = matrix.request_change(
                "admin", "alice", "doc/sec:{}".format(i), WRITE)
            yield done
            effect.record(env.now - requested)

    env.process(collaboration(env))
    env.run()
    return effect


def run_role_changes():
    env = Environment()
    policy = RoleBasedPolicy()
    policy.define(Role("editor-of-sec").allow("doc/*", WRITE))
    effect = Tally("role-effect")
    for _ in range(CHANGES):
        requested = env.now
        policy.assign("alice", "editor-of-sec", at=env.now)
        effect.record(env.now - requested)  # immediate
        policy.revoke("alice", "editor-of-sec", at=env.now)
    return effect


def run_negotiated_changes():
    env = Environment()
    policy = RoleBasedPolicy()
    negotiator = AccessNegotiator(env, policy)
    effect = Tally("negotiation-effect")

    def owner_behaviour(request):
        def answer(env):
            yield env.timeout(NEGOTIATION_RTT)
            negotiator.respond(request.request_id, "owner", True)
        env.process(answer(env))

    negotiator.on_request("owner", owner_behaviour)

    def collaboration(env):
        for i in range(CHANGES):
            requested = env.now
            outcome = yield negotiator.request(
                "alice", "doc/sec:{}".format(i), WRITE, ["owner"])
            assert outcome == GRANTED
            effect.record(env.now - requested)

    env.process(collaboration(env))
    env.run()
    return effect


def run_check_cost():
    """Shen & Dewan check cost vs object-hierarchy depth."""
    rows = []
    for depth in (2, 4, 6, 8):
        subjects = Hierarchy("everyone")
        subjects.add("authors", "everyone")
        subjects.add("alice", "authors")
        objects = Hierarchy("doc")
        parent = "doc"
        for level in range(depth):
            node = "level-{}".format(level)
            objects.add(node, parent)
            parent = node
        policy = ShenDewanPolicy(subjects, objects)
        policy.grant("authors", "doc", READ)
        policy.deny("alice", parent, READ)
        assert policy.check("alice", parent, READ) is False
        leafward = policy.counters["entries_examined"]
        rows.append((depth, leafward))
    return rows


def run_experiment():
    return {
        "changes": {
            "access matrix (single admin)": run_matrix_changes(),
            "dynamic roles": run_role_changes(),
            "negotiated": run_negotiated_changes(),
        },
        "check_cost": run_check_cost(),
    }


def test_e5_access_control(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [(name, tally.count, tally.mean, tally.maximum)
            for name, tally in results["changes"].items()]
    print_table(
        "E5a  time for a rights change to take effect mid-collaboration",
        ["mechanism", "changes", "mean (s)", "max (s)"],
        rows)
    print_table(
        "E5b  Shen & Dewan check cost vs hierarchy depth",
        ["object depth", "entries examined per check"],
        results["check_cost"])
    matrix = results["changes"]["access matrix (single admin)"]
    roles = results["changes"]["dynamic roles"]
    negotiated = results["changes"]["negotiated"]
    # Shape: administered changes are orders of magnitude slower than
    # role changes; negotiation sits between (human-latency bound).
    assert matrix.mean >= ADMIN_DELAY
    assert roles.mean == 0.0
    assert 0 < negotiated.mean <= 2 * NEGOTIATION_RTT
    assert matrix.mean > negotiated.mean > roles.mean
    # Check cost grows with hierarchy depth (linear, not exponential).
    depths = [row[0] for row in results["check_cost"]]
    costs = [row[1] for row in results["check_cost"]]
    assert costs == sorted(costs)
    assert costs[-1] <= costs[0] * (depths[-1] / depths[0]) * 3

    # Visibility: the policy describes itself completely.
    policy = RoleBasedPolicy()
    policy.define(Role("author").allow("doc/*", READ, WRITE))
    policy.assign("alice", "author")
    description = policy.describe()
    assert "author" in description and "doc/*" in description
    benchmark.extra_info["admin_over_roles"] = matrix.mean
