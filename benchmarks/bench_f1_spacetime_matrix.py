"""F1 — Figure 1: the space-time matrix and seamless transitions (§3.1).

The paper's claim: a groupware platform must support all four quadrants
of Johansen's matrix AND switch a live session between them *seamlessly*
(no loss of membership, artefacts or history).

The bench runs one representative activity per quadrant in a single
session, forcing a transition before each, and measures (a) state carried
across every transition and (b) the transition cost in simulated time.
"""

from benchmarks._util import print_table, run_once
from repro.core.matrix import classify, render_matrix, transition_path
from repro.sessions import (
    ASYNCHRONOUS,
    CO_LOCATED,
    REMOTE,
    SYNCHRONOUS,
    Session,
)
from repro.sim import Environment

SCENARIOS = [
    ((SYNCHRONOUS, CO_LOCATED), "meeting: brainstorm items"),
    ((SYNCHRONOUS, REMOTE), "conference: shared editing"),
    ((ASYNCHRONOUS, REMOTE), "co-authoring: annotate overnight"),
    ((ASYNCHRONOUS, CO_LOCATED), "shared filing: archive minutes"),
]


def run_experiment():
    env = Environment()
    session = Session(env, "project-x", time_mode=SYNCHRONOUS,
                      place_mode=CO_LOCATED)
    for member in ("alice", "bob", "carol"):
        session.join(member)
    rows = []
    artefacts_written = 0
    for (time_mode, place_mode), activity in SCENARIOS:
        members_before = list(session.members)
        artefacts_before = dict(session.store.snapshot())
        start = env.now
        before, after = transition_path(session, time_mode, place_mode)
        transition_cost = env.now - start
        # State must survive the transition bit-for-bit.
        state_preserved = (session.members == members_before
                           and {k: v for k, v in
                                session.store.snapshot().items()
                                if k in artefacts_before}
                           == artefacts_before)
        # Perform the quadrant's activity in the new mode.
        session.store.write("artefact-" + activity.split(":")[0],
                            activity, writer="alice", at=env.now)
        artefacts_written += 1
        env.run(until=env.now + 10.0)
        rows.append((classify(session), activity, transition_cost,
                     "yes" if state_preserved else "NO"))
    return {
        "rows": rows,
        "transitions": len(session.transitions),
        "artefacts": len(session.store.keys()),
        "expected_artefacts": artefacts_written,
    }


def test_f1_spacetime_matrix(benchmark):
    result = run_once(benchmark, run_experiment)
    print("\n" + render_matrix())
    print_table(
        "F1  space-time matrix coverage and seamless transitions",
        ["quadrant", "activity", "transition cost (s)",
         "state preserved"],
        result["rows"])
    # Paper shape: all four quadrants exercised, zero state loss, and
    # transitions are instantaneous mode switches, not session restarts.
    quadrants = {row[0] for row in result["rows"]}
    assert len(quadrants) == 4
    assert all(row[3] == "yes" for row in result["rows"])
    assert all(row[2] == 0.0 for row in result["rows"])
    assert result["artefacts"] == result["expected_artefacts"]
    benchmark.extra_info["quadrants"] = len(quadrants)
