"""E8 — real-time synchronisation of media activities (§4.2.2-iii).

Two styles the paper identifies:

* **event-driven** — "initiate an action (such as displaying a caption)
  at a particular point in time": we verify cue accuracy against the
  playout timeline;
* **continuous** — "data presentation devices must be tied together so
  that they consume data in fixed ratios (e.g. in lip synchronisation)":
  an audio device and a video device whose clocks drift are played with
  and without the continuous synchroniser, sweeping the drift rate.

Expected shape: uncorrected skew grows linearly with drift and duration
(integrity destroyed); corrected skew stays within the lip-sync bound
regardless of drift.
"""

from benchmarks._util import print_table, run_once
from repro.sim import Environment
from repro.streams import (
    ARRIVAL,
    ContinuousSynchroniser,
    EventSynchroniser,
    Frame,
    MediaSink,
    MediaSource,
    measure_drift,
)

DURATION = 60.0
BOUND = 0.08           # 80 ms lip-sync tolerance
SKEWS = (1.01, 1.03, 1.05)


def run_drift(skew, corrected):
    env = Environment()
    audio_sink = MediaSink(env, "audio", mode=ARRIVAL)
    video_sink = MediaSink(env, "video", mode=ARRIVAL)
    audio = MediaSource(env, "audio", audio_sink.receive, rate=50.0)
    video = MediaSource(env, "video", video_sink.receive, rate=25.0,
                        clock_skew=skew)
    audio.start(duration=DURATION)
    video.start(duration=DURATION)
    if corrected:
        # The correction loop must run a few times per tolerance window:
        # bounded skew is governed by check cadence as well as the bound.
        sync = ContinuousSynchroniser(env, audio_sink, video_sink,
                                      bound=BOUND, check_interval=0.04)
        env.run(until=DURATION)
        sync.stop()
        return {"max_skew": sync.max_abs_skew,
                "corrections": sync.counters["corrections"]}
    drift = measure_drift(env, audio_sink, video_sink,
                          duration=DURATION)
    env.run(until=DURATION + 1.0)
    return {"max_skew": max(abs(v) for v in drift.values),
            "corrections": 0}


def run_event_sync():
    env = Environment()
    sink = MediaSink(env, "video", mode=ARRIVAL)
    cues = EventSynchroniser(sink)
    errors = []
    for media_time in (1.0, 2.5, 4.0):
        cues.at(media_time,
                lambda mt=media_time: errors.append(
                    abs(sink.position - mt)))
    source = MediaSource(env, "video", sink.receive, rate=25.0)
    source.start(duration=5.0)
    env.run(until=6.0)
    return {"cues_fired": len(errors),
            "max_error": max(errors) if errors else float("inf")}


def run_experiment():
    drift_rows = []
    for skew in SKEWS:
        uncorrected = run_drift(skew, corrected=False)
        corrected = run_drift(skew, corrected=True)
        drift_rows.append((
            "{:.0f}%".format((skew - 1) * 100),
            uncorrected["max_skew"],
            corrected["max_skew"],
            corrected["corrections"]))
    return {"drift": drift_rows, "event": run_event_sync()}


def test_e8_sync(benchmark):
    results = run_once(benchmark, run_experiment)
    print_table(
        "E8a  continuous synchronisation (lip sync) over {}s".format(
            int(DURATION)),
        ["clock drift", "max skew uncorrected (s)",
         "max skew corrected (s)", "corrections"],
        results["drift"])
    event = results["event"]
    print_table(
        "E8b  event-driven synchronisation (caption cues)",
        ["cues fired", "max cue error (media s)"],
        [(event["cues_fired"], event["max_error"])])
    # Shape: uncorrected skew ≈ drift × duration (far beyond tolerance);
    # corrected skew bounded near the 80 ms tolerance at every drift.
    for (label, uncorrected, corrected, corrections) in results["drift"]:
        drift_fraction = float(label.rstrip("%")) / 100
        assert uncorrected > drift_fraction * DURATION * 0.5
        assert corrected < 2 * BOUND
        assert corrections > 0
    # Uncorrected skew grows with the drift rate.
    uncorrected_series = [row[1] for row in results["drift"]]
    assert uncorrected_series == sorted(uncorrected_series)
    # Event cues fire exactly once, within one frame of the target.
    assert event["cues_fired"] == 3
    assert event["max_error"] <= 1.0 / 25.0 + 1e-9
    benchmark.extra_info["uncorrected_5pct"] = uncorrected_series[-1]
