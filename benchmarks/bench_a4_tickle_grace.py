"""A4 (ablation) — tuning the tickle lock's grace period (§4.2.1).

Tickle locks (Greif & Sarin) transfer a lock away from an *idle* holder.
The grace period is the design knob: too short and active holders get
robbed mid-thought (disruptive takeovers); too long and the mechanism
degenerates into a hard lock (idle time is never reclaimed).

One workload — holders alternating active editing (touching the grant)
with distractions — is run across a grace sweep.  Reported: waiting
time, takeovers, and *wrongful* takeovers (the holder was distracted for
less than a social "I'm still here" threshold).
"""

from benchmarks._util import print_table, run_once
from repro.concurrency import EXCLUSIVE, LockTable, TICKLE
from repro.sim import Environment, RandomStreams, Tally, exponential

EDITORS = 4
ROUNDS = 10
EDIT_TIME = 1.0
DISTRACTION_MEAN = 6.0
STILL_THERE_THRESHOLD = 3.0     # distractions shorter than this are
                                # "still working" in the social sense
GRACES = (0.5, 2.0, 5.0, 20.0, 1e9)


def run_grace(grace):
    env = Environment()
    table = LockTable(env, style=TICKLE, tickle_grace=grace)
    rng = RandomStreams(121).stream("a4-{}".format(grace))
    wait = Tally("wait")
    takeovers = [0]
    wrongful = [0]
    idle_since = {}

    def on_takeover(grant, taker):
        takeovers[0] += 1
        idle = env.now - grant.last_activity
        if idle < STILL_THERE_THRESHOLD:
            wrongful[0] += 1

    table.on_takeover = on_takeover

    def editor(env, name):
        for _ in range(ROUNDS):
            yield env.timeout(exponential(rng, 2.0))
            start = env.now
            grant = yield table.acquire("doc", name, EXCLUSIVE)
            wait.record(env.now - start)
            # Active editing with periodic touches.
            for _ in range(4):
                yield env.timeout(EDIT_TIME / 4)
                if grant.revoked:
                    break
                grant.touch()
            if grant.revoked:
                continue
            # A distraction of random length, grant left idle.
            yield env.timeout(exponential(rng, DISTRACTION_MEAN))
            if not grant.revoked:
                grant.release()

    for i in range(EDITORS):
        env.process(editor(env, "editor-{}".format(i)))
    env.run()
    return {"wait": wait, "takeovers": takeovers[0],
            "wrongful": wrongful[0], "makespan": env.now}


def run_experiment():
    return {grace: run_grace(grace) for grace in GRACES}


def test_a4_tickle_grace(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [("hard lock" if grace >= 1e9 else "{:g}s".format(grace),
             stats["wait"].mean, stats["takeovers"],
             stats["wrongful"], stats["makespan"])
            for grace, stats in results.items()]
    print_table(
        "A4  tickle grace period sweep (idle-prone holders)",
        ["grace", "mean wait (s)", "takeovers", "wrongful takeovers",
         "makespan (s)"],
        rows)
    shortest = results[GRACES[0]]
    moderate = results[2.0]
    hard = results[GRACES[-1]]
    # The hard-lock limit: no takeovers, maximal waiting.
    assert hard["takeovers"] == 0
    assert hard["wait"].mean >= moderate["wait"].mean
    # A very short grace robs active holders.
    assert shortest["wrongful"] > 0
    # A moderate grace reclaims idle time without wrongful takeovers
    # dominating.
    assert moderate["takeovers"] > 0
    assert moderate["wrongful"] <= shortest["wrongful"]
    assert moderate["wait"].mean < hard["wait"].mean
    benchmark.extra_info["hard_wait"] = hard["wait"].mean
    benchmark.extra_info["moderate_wait"] = moderate["wait"].mean
