"""E9 — group communication for continuous media (§4.2.2-iv).

Two requirements:

* *"multicast transport protocols are necessary to enable group
  communication of continuous media"* — part (a) fans one video frame
  stream out to N sites via (i) repeated unicast and (ii) a source-rooted
  multicast tree, and compares total link bytes and delivery latency as
  N grows;
* *"group RPC protocols are required which provide bounded real-time
  performance"* — part (b) measures group-invocation completion against
  a real-time deadline across group sizes.

Expected shape: unicast cost grows ~linearly with N on the sender's
links; multicast cost grows with the tree (shared trunk links carry each
frame once), so the gap widens with N.
"""

from benchmarks._util import print_table, record_run, run_once
from repro.groups import GroupInvoker, QUORUM_ALL
from repro.net import MulticastService, Network, wan
from repro.sim import Environment, Tally

GROUP_SIZES = (2, 4, 8)
FRAMES = 50
FRAME_SIZE = 4000
RATE = 25.0


def run_fanout(n_sites, use_multicast):
    env = Environment()
    topo = wan(env, sites=n_sites, hosts_per_site=1,
               site_latency=0.02)
    net = Network(env, topo)
    service = MulticastService(net)
    group = service.create_group("conference")
    members = ["site{}.host0".format(i) for i in range(n_sites)]
    for member in members:
        net.host(member)
        group.join(member)
    src = members[0]
    latency = Tally("latency")
    for member in members[1:]:
        net.hosts[member].on_packet(
            service.port,
            lambda packet: latency.record(
                env.now - packet.created_at))

    def pump(env):
        for _ in range(FRAMES):
            if use_multicast:
                service.send("conference", src, size=FRAME_SIZE)
            else:
                service.unicast_fanout("conference", src,
                                       size=FRAME_SIZE)
            yield env.timeout(1.0 / RATE)

    env.process(pump(env))
    env.run()
    return {
        "bytes": net.total_link_bytes(),
        "latency": latency,
        "delivered": latency.count,
    }


def run_group_rpc(n_members):
    env = Environment()
    topo = wan(env, sites=n_members + 1, hosts_per_site=1,
               site_latency=0.02)
    net = Network(env, topo)
    invoker = GroupInvoker(net, "site0.host0")
    members = []
    for i in range(1, n_members + 1):
        node = "site{}.host0".format(i)
        endpoint = invoker.serve(node)
        endpoint.register("start_camera",
                          lambda caller, args: "rolling")
        members.append(node)

    def root(env):
        result = yield invoker.call(members, "start_camera",
                                    deadline=0.5, quorum=QUORUM_ALL)
        return result

    proc = env.process(root(env))
    env.run(proc)
    result = proc.value
    return {"replied": result.replied, "met": result.quorum_met,
            "worst": result.worst_latency}


def run_experiment():
    fanout_rows = []
    for n in GROUP_SIZES:
        unicast = run_fanout(n, use_multicast=False)
        multicast = run_fanout(n, use_multicast=True)
        fanout_rows.append((
            n, unicast["bytes"], multicast["bytes"],
            unicast["bytes"] / multicast["bytes"],
            unicast["latency"].mean * 1000,
            multicast["latency"].mean * 1000,
            unicast["delivered"], multicast["delivered"]))
    rpc_rows = [(n, stats["replied"], stats["worst"] * 1000,
                 stats["met"])
                for n, stats in ((n, run_group_rpc(n))
                                 for n in GROUP_SIZES)]
    return {"fanout": fanout_rows, "rpc": rpc_rows}


def test_e9_group_media(benchmark):
    results = run_once(benchmark, run_experiment)
    print_table(
        "E9a  1->N continuous-media fan-out: unicast vs multicast tree",
        ["members", "unicast bytes", "multicast bytes", "ratio",
         "unicast lat (ms)", "multicast lat (ms)",
         "uni delivered", "mc delivered"],
        results["fanout"])
    print_table(
        "E9b  group invocation under a 500 ms real-time deadline",
        ["members", "replied", "worst reply (ms)", "bound met"],
        results["rpc"])
    ratios = [row[3] for row in results["fanout"]]
    # Multicast never costs more, and its advantage grows with N.
    assert all(ratio >= 1.0 for ratio in ratios)
    assert ratios[-1] > ratios[0]
    # Everyone receives every frame under both transports.
    for row in results["fanout"]:
        n = row[0]
        assert row[6] == row[7] == FRAMES * (n - 1)
    # Group invocation meets the bound at every size here.
    assert all(met for _, _, _, met in results["rpc"])
    benchmark.extra_info["ratio_at_8"] = ratios[-1]
    largest = results["fanout"][-1]
    record_run("e9_group_media", metrics={
        "multicast_ratio_smallest": ratios[0],
        "multicast_ratio_largest": ratios[-1],
        "unicast_bytes_largest": int(largest[1]),
        "multicast_bytes_largest": int(largest[2]),
        "worst_group_rpc_ms": max(row[2] for row in results["rpc"]),
    })
