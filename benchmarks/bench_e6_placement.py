"""E6 — group-aware placement and migration (§4.2.1 "Management").

*"objects are likely to be shared by a group of users at geographically
dispersed sites with each site requiring similar real-time response.
This adds considerable complexity to the placement and migration
strategies of objects."*

Setup: a WAN with asymmetric site distances; a shared object used by a
group spanning three sites.  Part (a) compares placement policies by the
*measured* per-member invocation round trip (worst member and spread —
the fairness the paper asks for).  Part (b) shows usage-driven migration
relocating a badly placed object at run time and the per-member latency
before and after.
"""

from benchmarks._util import print_table, record_run, run_once
from repro.management import (
    FirstNodePlacement,
    GroupAwarePlacement,
    LoadBalancedPlacement,
    MigrationManager,
    RandomPlacement,
    UsageMonitor,
)
from repro.net import Network, Topology
from repro.node import ODPRuntime
from repro.sim import Environment, RandomStreams, Tally

SITES = {
    # name -> latency to the exchange hub (seconds)
    "london": 0.002,
    "lancaster": 0.004,
    "paris": 0.010,
    "tokyo": 0.120,
}
GROUP = ["lancaster", "paris", "tokyo"]
#: Part (b): overnight, the active users are all in tokyo — the object
#: (created in london) should follow them.
MIGRATION_GROUP = ["tokyo"]
INVOCATIONS_PER_MEMBER = 10


def build_runtime(env):
    topo = Topology(env)
    for site, latency in SITES.items():
        topo.add_link(site, "hub", latency=latency)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="london")
    for site in SITES:
        runtime.nucleus(site)
    return runtime


def measure_placement(policy):
    env = Environment()
    runtime = build_runtime(env)
    topo = runtime.network.topology
    candidates = sorted(SITES) + ["hub"]
    runtime.nucleus("hub")
    chosen = policy.place(candidates, GROUP, topo)
    nucleus = runtime.nuclei[chosen]
    capsule = nucleus.create_capsule()
    obj = nucleus.create_object(capsule, "whiteboard", state={"n": 0})
    obj.operation("poke", lambda caller, state, args: state["n"])

    per_member = {member: Tally(member) for member in GROUP}

    def member_proc(env, member):
        for _ in range(INVOCATIONS_PER_MEMBER):
            yield env.timeout(0.5)
            start = env.now
            yield runtime.nuclei[member].invoke(obj.oid, "poke")
            per_member[member].record(env.now - start)

    for member in GROUP:
        env.process(member_proc(env, member))
    env.run()
    means = [tally.mean for tally in per_member.values()]
    return {
        "chosen": chosen,
        "worst": max(means),
        "spread": max(means) - min(means),
    }


def run_migration_demo():
    env = Environment()
    runtime = build_runtime(env)
    nucleus = runtime.nuclei["london"]  # badly placed for the group
    capsule = nucleus.create_capsule()
    obj = nucleus.create_object(capsule, "board", state={"n": 0},
                                state_size=65536)
    obj.operation("poke", lambda caller, state, args: state["n"])
    monitor = UsageMonitor(env, window=300.0)
    manager = MigrationManager(
        runtime, monitor, policy=GroupAwarePlacement(),
        candidates=sorted(SITES) + ["hub"], period=10.0,
        improvement_threshold=0.2)
    runtime.nucleus("hub")
    early = Tally("early")
    late = Tally("late")

    def member_proc(env, member):
        for i in range(30):
            yield env.timeout(1.0)
            monitor.record(obj.oid, member)
            start = env.now
            yield runtime.nuclei[member].invoke(obj.oid, "poke")
            (early if start < 10.0 else late).record(env.now - start)

    for member in MIGRATION_GROUP:
        env.process(member_proc(env, member))
    env.run(until=40.0)
    manager.stop()
    return {
        "migrations": manager.migrations,
        "before": early.mean,
        "after": late.mean,
        "final_location": runtime.locate(obj.oid),
        "env": env.stats(),
    }


def run_experiment():
    policies = {
        "first-node (creator)": FirstNodePlacement(),
        "random": RandomPlacement(RandomStreams(9).stream("placement")),
        "load-balanced": LoadBalancedPlacement(),
        "group-aware": GroupAwarePlacement(),
    }
    placement = {name: measure_placement(policy)
                 for name, policy in policies.items()}
    return {"placement": placement, "migration": run_migration_demo()}


def test_e6_placement(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [(name, stats["chosen"], stats["worst"] * 1000,
             stats["spread"] * 1000)
            for name, stats in results["placement"].items()]
    print_table(
        "E6a  placement policies: measured group response",
        ["policy", "chosen node", "worst member RTT (ms)",
         "member spread (ms)"],
        rows)
    migration = results["migration"]
    print_table(
        "E6b  usage-driven migration (object starts at london; the "
        "active group works from tokyo)",
        ["migrations", "final location", "mean RTT before (ms)",
         "mean RTT after (ms)"],
        [(len(migration["migrations"]), migration["final_location"],
          migration["before"] * 1000, migration["after"] * 1000)])
    group_aware = results["placement"]["group-aware"]
    first = results["placement"]["first-node (creator)"]
    # The group-aware policy minimises the worst member's response.
    assert group_aware["worst"] <= min(
        stats["worst"] for stats in results["placement"].values())
    assert group_aware["worst"] < first["worst"]
    # Migration found a better home and improved measured latency.
    assert len(migration["migrations"]) >= 1
    assert migration["after"] < migration["before"]
    benchmark.extra_info["group_aware_worst_ms"] = \
        group_aware["worst"] * 1000
    record_run(
        "e6_placement",
        sim_time_s=migration["env"]["now"],
        events=migration["env"]["events_processed"],
        metrics={
            "group_aware_worst_ms": group_aware["worst"] * 1000,
            "first_node_worst_ms": first["worst"] * 1000,
            "migrations": len(migration["migrations"]),
            "rtt_before_ms": migration["before"] * 1000,
            "rtt_after_ms": migration["after"] * 1000,
        })
