"""E7 — QoS contracts keep continuous media intact (§4.2.2-i/ii).

*"If the required rate of presentation is not met, the integrity of these
media is destroyed"* — so QoS must be agreed, enforced end-to-end and
monitored, with renegotiation on degradation.

Setup: a video stream crosses a dumbbell bottleneck while bulk-transfer
flows flood the same link.  Regimes compared on one workload:

* **best effort** — no reservation: video frames queue behind the flood;
  deadline-miss rate collapses the stream;
* **QoS-reserved** — admission control + reserved priority: the video is
  isolated from the flood; the monitor sees clean windows;
* **renegotiation** — mid-stream the application downgrades its contract
  (half rate) and continues within the new agreement.
"""

from benchmarks._util import print_table, record_run, run_once
from repro.net import Network, dumbbell
from repro.qos import QoSBroker, QoSMonitor, QoSParameters
from repro.sim import Environment
from repro.streams import MediaSink, MediaSource, StreamBinding

RATE = 25.0
FRAME = 4000               # bytes -> 800 kb/s of video
BOTTLENECK = 2e6           # 2 Mb/s
FLOODERS = 3
FLOOD_PACKET = 9000        # bytes, back-to-back
DURATION = 8.0


def build(env):
    topo = dumbbell(env, left=FLOODERS + 1, right=FLOODERS + 1,
                    bottleneck_bandwidth=BOTTLENECK,
                    bottleneck_latency=0.01)
    return Network(env, topo)


def flood(env, network, index):
    src = network.host("left{}".format(index + 1))
    dst = "right{}".format(index + 1)
    network.host(dst)

    def pump(env):
        while env.now < DURATION:
            src.send(dst, size=FLOOD_PACKET)
            # Offered load per flooder ≈ bottleneck / 2: heavy overload.
            yield env.timeout(FLOOD_PACKET * 8 / (BOTTLENECK / 2))

    env.process(pump(env))


def run_best_effort():
    env = Environment()
    network = build(env)
    binding = StreamBinding(network, "left0", "right0")
    sink = MediaSink(env, "viewer", target_delay=0.15)
    binding.attach_sink(sink)
    source = MediaSource(env, "camera", binding.send_frame, rate=RATE,
                         frame_size=FRAME)
    for i in range(FLOODERS):
        flood(env, network, i)
    source.start(duration=DURATION)
    env.run(until=DURATION + 2.0)
    return {"sink": sink, "admitted": "n/a", "renegotiations": 0,
            "env": env.stats()}


def run_reserved(renegotiate=False):
    env = Environment()
    network = build(env)
    broker = QoSBroker(network)
    desired = QoSParameters(throughput=RATE * FRAME * 8,
                            latency=0.15, jitter=0.1, loss=0.05)
    contract = broker.negotiate("left0", "right0", desired,
                                minimum=desired.scaled(0.4))
    monitor = QoSMonitor(env, contract, window=1.0,
                         expected_frames_per_window=RATE)
    binding = StreamBinding(network, "left0", "right0",
                            contract=contract, monitor=monitor)
    sink = MediaSink(env, "viewer", target_delay=0.15)
    binding.attach_sink(sink)
    source = MediaSource(env, "camera", binding.send_frame, rate=RATE,
                         frame_size=FRAME)
    for i in range(FLOODERS):
        flood(env, network, i)
    source.start(duration=DURATION)
    if renegotiate:
        def downgrade(env):
            yield env.timeout(DURATION / 2)
            # The application accepts half the bandwidth mid-stream and
            # adapts by halving frame size (coarser quantisation).
            broker.renegotiate(contract,
                               contract.agreed.throughput * 0.5)
            source.frame_size = FRAME // 2
        env.process(downgrade(env))
    env.run(until=DURATION + 2.0)
    return {"sink": sink, "admitted": contract.agreed.throughput,
            "renegotiations": contract.renegotiations,
            "env": env.stats()}


def run_experiment():
    return {
        "best effort (no QoS)": run_best_effort(),
        "QoS reserved": run_reserved(),
        "QoS + renegotiation": run_reserved(renegotiate=True),
    }


def test_e7_qos(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = []
    for name, stats in results.items():
        sink = stats["sink"]
        rows.append((name, sink.counters["received"],
                     sink.counters["played"], sink.deadline_misses,
                     sink.miss_rate, stats["renegotiations"]))
    print_table(
        "E7  video integrity across a flooded bottleneck",
        ["regime", "frames arrived", "played on time", "missed",
         "miss rate", "renegotiations"],
        rows)
    best_effort = results["best effort (no QoS)"]["sink"]
    reserved = results["QoS reserved"]["sink"]
    renegotiated = results["QoS + renegotiation"]
    # The paper's shape: without QoS the stream's integrity is destroyed;
    # with admission + enforcement it survives intact.
    assert best_effort.miss_rate > 0.3
    assert reserved.miss_rate < 0.02
    assert reserved.counters["played"] > \
        best_effort.counters["played"] * 1.5
    assert renegotiated["renegotiations"] == 1
    assert renegotiated["sink"].miss_rate < 0.02
    benchmark.extra_info["best_effort_miss"] = best_effort.miss_rate
    benchmark.extra_info["reserved_miss"] = reserved.miss_rate
    record_run(
        "e7_qos",
        sim_time_s=max(stats["env"]["now"] for stats in results.values()),
        events=sum(stats["env"]["events_processed"]
                   for stats in results.values()),
        metrics={
            "best_effort_miss_rate": best_effort.miss_rate,
            "reserved_miss_rate": reserved.miss_rate,
            "renegotiated_miss_rate": renegotiated["sink"].miss_rate,
            "renegotiations": renegotiated["renegotiations"],
            "frames_played_reserved": reserved.counters["played"],
        })
