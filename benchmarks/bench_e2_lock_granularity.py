"""E2 — the lock-granularity trade-off (§4.2.1).

*"it is not clear in joint authoring applications whether locks should be
applied at the granularity of sections, paragraphs, sentences or even
words"* — because it is a trade-off.  One co-editing workload (hot-spot
skewed) is replayed against a hard lock table at each granularity:

* coarse units → few lock operations but high conflict waiting;
* fine units → minimal waiting but many lock operations per edit.

The bench reports mean wait per edit, fraction of edits that blocked, and
locks acquired per edit across the granularity spectrum.
"""

from benchmarks._util import print_table, run_once
from repro.concurrency import (
    EXCLUSIVE,
    GRANULARITIES,
    LockTable,
    StructuredDocument,
)
from repro.sim import Environment, Tally
from repro.workload import EditingWorkload

USERS = ["alice", "bob", "carol", "dave"]
DURATION = 150.0


def run_granularity(granularity, document, events):
    env = Environment()
    table = LockTable(env)
    wait = Tally("wait")
    locks_per_edit = Tally("locks")
    blocked_edits = [0]

    def perform(env, event):
        yield env.timeout(event.at)
        units = document.units_for_span(granularity, event.position,
                                        event.span)
        locks_per_edit.record(len(units))
        start = env.now
        grants = []
        for unit in units:
            grant = yield table.acquire(unit, event.user, EXCLUSIVE)
            grants.append(grant)
        waited = env.now - start
        wait.record(waited)
        if waited > 0:
            blocked_edits[0] += 1
        yield env.timeout(event.duration)
        for grant in grants:
            grant.release()

    for event in events:
        env.process(perform(env, event))
    env.run()
    return {
        "wait": wait,
        "locks": locks_per_edit,
        "blocked_fraction": blocked_edits[0] / max(1, len(events)),
    }


def run_experiment():
    document = StructuredDocument(sections=4, paragraphs_per_section=5,
                                  sentences_per_paragraph=4,
                                  words_per_sentence=10)
    events = EditingWorkload(USERS, document=document, think_mean=4.0,
                             span_mean=6.0, edit_duration_mean=2.0,
                             hotspot_skew=1.2, duration=DURATION,
                             seed=17).generate()
    return {granularity: run_granularity(granularity, document, events)
            for granularity in GRANULARITIES}, len(events)


def test_e2_lock_granularity(benchmark):
    results, edit_count = run_once(benchmark, run_experiment)
    rows = [(granularity,
             stats["wait"].mean,
             stats["blocked_fraction"],
             stats["locks"].mean)
            for granularity, stats in results.items()]
    print_table(
        "E2  lock granularity trade-off ({} edits, 4 authors)".format(
            edit_count),
        ["granularity", "mean wait (s)", "blocked fraction",
         "locks per edit"],
        rows)
    # Shape: waiting decreases monotonically from document to word...
    waits = [results[g]["wait"].mean for g in GRANULARITIES]
    assert waits[0] == max(waits)
    assert waits[-1] == min(waits)
    assert results["document"]["wait"].mean > \
        results["word"]["wait"].mean * 2
    # ...while lock overhead increases.
    locks = [results[g]["locks"].mean for g in GRANULARITIES]
    assert locks == sorted(locks)
    assert results["word"]["locks"].mean > \
        results["document"]["locks"].mean
    benchmark.extra_info["edits"] = edit_count
