"""O2 — flight recorder overhead on the P1 LAN packet storm.

The flight recorder's contract mirrors the timeline recorder's: free
when off, cheap when on, invisible to the simulation either way.  This
bench measures it on the P1 LAN storm (24 hosts, 150 packets each):

* **flight-off** — the :data:`~repro.obs.flight.NOOP_FLIGHT` default;
* **flight-on** — a :class:`~repro.obs.flight.FlightRecorder` with all
  channels journalling at the default 512-event epochs;
* **digests-only** — the divergence CLI's cheap pass: a 16-record ring
  where every journalled record is folded into the epoch hash and
  immediately evicted.

The sim-observable outcome must be digest-identical across all three —
the recorder draws no RNG and schedules nothing, so replay cannot
distinguish a journalled run.  Same-seed flight epoch digests must also
be identical between independent recorder-on runs.  Both are asserted
hard; wall-clock overhead lands in ``BENCH_PR8.json`` with a loose
backstop (checked-in figures are the artifact, CI machines vary).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from benchmarks._util import digest, print_table, record_run, run_once
from benchmarks.bench_p1_kernel_throughput import _run_storm
from repro.net.network import Network
from repro.net.topology import lan
from repro.obs.flight import FlightRecorder, use_flight
from repro.obs.metrics import NullRegistry, use_metrics
from repro.sim import Environment

SEED = 31
HOSTS = 24
PACKETS_EACH = 150
REPEATS = 8

#: The sim-observable subset of a storm result (see bench_o1).
OBSERVABLE = ("sim_time_s", "events", "sent", "delivered", "dropped")


def _build_and_run() -> Dict[str, Any]:
    env = Environment()
    network = Network(env, lan(env, hosts=HOSTS))
    names = ["host{}".format(i) for i in range(HOSTS)]
    senders = []
    for index, name in enumerate(names):
        peers = [names[(index + k) % HOSTS] for k in range(1, HOSTS)]
        senders.append((network.host(name), peers, PACKETS_EACH))
    with use_metrics(NullRegistry()):
        return _run_storm(env, network, senders, SEED)


def _storm(recorder: Optional[FlightRecorder] = None) -> Dict[str, Any]:
    # The recorder must be ambient before Environment() is constructed:
    # environments bind the flight hook at creation, like the tracer.
    if recorder is not None:
        with use_flight(recorder):
            result = _build_and_run()
        result["flight_epochs"] = recorder.finish()
        result["flight_recorded"] = recorder.recorded
        result["flight_digests"] = list(recorder.epoch_digests)
    else:
        result = _build_and_run()
    result["digest"] = digest({key: result[key] for key in OBSERVABLE})
    return result


def run_experiment() -> Dict[str, Any]:
    # Interleaved repeats, fastest of each variant (see bench_o1).
    best: Dict[str, Optional[Dict[str, Any]]] = {
        "flight_off": None, "flight_on": None, "digests_only": None}

    def keep(key, candidate):
        if best[key] is None or candidate["wall_s"] < best[key]["wall_s"]:
            best[key] = candidate

    for _ in range(REPEATS):
        keep("flight_off", _storm())
        keep("flight_on", _storm(FlightRecorder(ring=1 << 16)))
        keep("digests_only", _storm(FlightRecorder(ring=16)))
    # One more full run to prove same-seed journal determinism.
    best["flight_on_again"] = _storm(FlightRecorder(ring=1 << 16))
    return best


def test_o2_flight_overhead(benchmark):
    results = run_once(benchmark, run_experiment)
    off = results["flight_off"]
    on = results["flight_on"]
    cheap = results["digests_only"]
    again = results["flight_on_again"]

    overhead_on = (on["wall_s"] / off["wall_s"] - 1.0) * 100 \
        if off["wall_s"] else 0.0
    overhead_cheap = (cheap["wall_s"] / off["wall_s"] - 1.0) * 100 \
        if off["wall_s"] else 0.0
    print_table(
        "O2: flight recorder overhead (P1 LAN storm)",
        ["variant", "wall (s)", "events/s", "journalled", "epochs",
         "digest"],
        [("flight off (noop)", off["wall_s"], off["events_per_s"],
          "-", "-", off["digest"][:12]),
         ("flight on (full ring)", on["wall_s"], on["events_per_s"],
          on["flight_recorded"], on["flight_epochs"],
          on["digest"][:12]),
         ("digests only (ring=16)", cheap["wall_s"],
          cheap["events_per_s"], cheap["flight_recorded"],
          cheap["flight_epochs"], cheap["digest"][:12])])

    # Invisibility is exact: journalling must not change anything the
    # simulation can observe.
    assert on["digest"] == off["digest"], \
        "the flight recorder changed the simulation"
    assert cheap["digest"] == off["digest"], \
        "the digests-only recorder changed the simulation"
    # Determinism of the journal itself: same seed, same chained
    # digests — independent runs and retention settings alike.
    assert on["flight_digests"] == again["flight_digests"]
    assert on["flight_digests"] == cheap["flight_digests"]
    assert on["flight_epochs"] > 0
    assert on["flight_recorded"] > 0
    assert on["sent"] == HOSTS * PACKETS_EACH
    assert on["delivered"] == on["sent"] and on["dropped"] == 0
    # Loose backstop only — BENCH_PR8.json carries the real figure.
    assert on["wall_s"] < off["wall_s"] * 3.0, \
        "flight-on more than tripled the storm wall time"

    record_run(
        "o2_flight_overhead",
        metrics={
            "flight_off_wall_s": off["wall_s"],
            "flight_on_wall_s": on["wall_s"],
            "digests_only_wall_s": cheap["wall_s"],
            "flight_on_overhead_pct": round(overhead_on, 2),
            "digests_only_overhead_pct": round(overhead_cheap, 2),
            "journalled_records": on["flight_recorded"],
            "epochs": on["flight_epochs"],
            "events_per_s_on": round(on["events_per_s"]),
            "events_per_s_off": round(off["events_per_s"]),
            "digest_match": on["digest"] == off["digest"],
            "journal_deterministic":
                on["flight_digests"] == again["flight_digests"],
        },
        sim_time_s=on["sim_time_s"], events=on["events"],
        path="BENCH_PR8.json")
