"""P10 — calendar queue, batched metrics and burst carry: the next 2×.

The P1 storms re-measured with the fast path against its own legacy
formulation, *interleaved per round on the same machine*: every repeat
runs the new configuration (calendar queue + burst carry) and the
legacy one (binary heap + per-event carry) back to back, so host noise
hits both sides equally and the speedup column is honest.  The legacy
side IS the PR 5 tree's behaviour — same queue, same carry, same event
counts — so this bench carries its own baseline instead of trusting
figures captured on another machine state.

Event counts must be *exactly equal* between the two sides: burst-carry
elisions are virtually accounted and the calendar queue preserves the
``(time, priority, eid)`` order, so any count drift is a correctness
bug, not noise.  Results merge into ``BENCH_PR10.json``; CI's
perf-smoke gate asserts the schema and a ≥1.0× no-regression floor on
every storm (the ≥1.5× headline is asserted locally, where the machine
is quiet — see docs/performance.md).
"""

from __future__ import annotations

from typing import Any, Dict

from benchmarks._util import print_table, record_run, run_once
from benchmarks.bench_p1_kernel_throughput import (
    REPEATS,
    run_chaos_storm,
    run_lan_storm,
    run_wan_storm,
)
from repro.net.network import use_burst_carry
from repro.sim.environment import use_scheduler

STORMS = (
    ("lan-storm", run_lan_storm),
    ("wan-storm", run_wan_storm),
    ("chaos-storm", run_chaos_storm),
)


def _interleaved(run, repeats: int = REPEATS) -> Dict[str, Any]:
    """Best-of-``repeats`` for both configurations, interleaved."""
    fast = legacy = None
    for _ in range(repeats):
        candidate = run()  # process defaults: calendar + burst
        if fast is None or candidate["wall_s"] < fast["wall_s"]:
            fast = candidate
        with use_scheduler("heap"), use_burst_carry(False):
            candidate = run()
        if legacy is None or candidate["wall_s"] < legacy["wall_s"]:
            legacy = candidate
    return {"fast": fast, "legacy": legacy}


def run_experiment() -> Dict[str, Any]:
    return {name: _interleaved(run) for name, run in STORMS}


def test_p10_calendar_queue_throughput(benchmark):
    results = run_once(benchmark, run_experiment)

    rows = []
    telemetry: Dict[str, Any] = {}
    for name, _ in STORMS:
        fast = results[name]["fast"]
        legacy = results[name]["legacy"]

        # The headline invariant: the fast path is the same simulation.
        # Elided events are virtually accounted, so scheduled/processed
        # counts — and every packet outcome — line up exactly.
        assert fast["events"] == legacy["events"], name
        assert fast["sent"] == legacy["sent"], name
        assert fast["delivered"] == legacy["delivered"], name
        assert fast["dropped"] == legacy["dropped"], name
        assert fast["sim_time_s"] == legacy["sim_time_s"], name

        speedup = legacy["wall_s"] / fast["wall_s"] \
            if fast["wall_s"] else 0.0
        rows.append((name, fast["events"], fast["delivered"],
                     legacy["wall_s"], fast["wall_s"], speedup))
        prefix = name.replace("-", "_")
        telemetry[prefix + "_wall_s"] = fast["wall_s"]
        telemetry[prefix + "_events"] = fast["events"]
        telemetry[prefix + "_events_per_s"] = round(fast["events_per_s"])
        telemetry[prefix + "_delivered"] = fast["delivered"]
        telemetry[prefix + "_legacy_wall_s"] = legacy["wall_s"]
        telemetry[prefix + "_legacy_events_per_s"] = \
            round(legacy["events_per_s"])
        telemetry[prefix + "_speedup"] = round(speedup, 3)

    print_table(
        "P10: calendar+burst vs heap+legacy (interleaved, best of {})"
        .format(REPEATS),
        ["storm", "events", "delivered", "legacy (s)", "fast (s)",
         "speedup"],
        rows)

    # Exact packet accounting (mirrors P1's shape assertions).
    lan_run = results["lan-storm"]["fast"]
    wan_run = results["wan-storm"]["fast"]
    chaos = results["chaos-storm"]["fast"]
    assert lan_run["sent"] == 24 * 150 and lan_run["dropped"] == 0
    assert wan_run["sent"] == 18 * 200 and wan_run["dropped"] == 0
    assert chaos["sent"] == 18 * 200 and chaos["dropped"] > 0
    assert chaos["delivered"] + chaos["dropped"] == chaos["sent"]

    record_run("p10_calendar_queue", metrics=telemetry,
               sim_time_s=wan_run["sim_time_s"],
               events=sum(results[name]["fast"]["events"]
                          for name, _ in STORMS),
               path="BENCH_PR10.json")
