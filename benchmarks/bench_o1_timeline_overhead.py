"""O1 — timeline recorder overhead on the P1 LAN packet storm.

The recorder's contract is "free when off, cheap when on, invisible to
the simulation either way".  This bench measures all three clauses on
the P1 LAN storm (24 hosts, 150 packets each — the hot-path workload
PR 5 optimised):

* **no-obs** — ``NullRegistry``, no recorder: the PR 5 baseline;
* **timeline-off** — a recording ``MetricsRegistry``, no recorder;
* **timeline-on** — the same registry plus a
  :class:`~repro.obs.timeline.TimelineRecorder` at 10 ms windows
  (~30 windows over the ~0.3 s storm).

The simulation-observable outcome (events, sent/delivered/dropped, sim
time) must be digest-identical across all three — the window hook
schedules no events, so replay digests cannot distinguish a recorded
run.  That is asserted hard.  Wall-clock overhead is recorded into
``BENCH_PR6.json`` (the checked-in figures are the artifact; CI
machines vary too much to assert a tight ratio) with a loose backstop
assertion.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from benchmarks._util import digest, print_table, record_run, run_once
from benchmarks.bench_p1_kernel_throughput import _run_storm
from repro.net.network import Network
from repro.net.topology import lan
from repro.obs.metrics import MetricsRegistry, NullRegistry, use_metrics
from repro.obs.timeline import TimelineRecorder
from repro.sim import Environment

SEED = 31
HOSTS = 24
PACKETS_EACH = 150
RESOLUTION = 0.01
REPEATS = 8

#: The sim-observable subset of a storm result: everything a replay
#: digest would see, nothing the wall clock touches.
OBSERVABLE = ("sim_time_s", "events", "sent", "delivered", "dropped")


def _storm(registry, resolution: Optional[float] = None) -> Dict[str, Any]:
    env = Environment()
    network = Network(env, lan(env, hosts=HOSTS))
    names = ["host{}".format(i) for i in range(HOSTS)]
    senders = []
    for index, name in enumerate(names):
        peers = [names[(index + k) % HOSTS] for k in range(1, HOSTS)]
        senders.append((network.host(name), peers, PACKETS_EACH))
    recorder = None
    if resolution is not None:
        recorder = TimelineRecorder(env, registry=registry,
                                    resolution=resolution)
    with use_metrics(registry):
        result = _run_storm(env, network, senders, SEED)
    if recorder is not None:
        recorder.finish()
        result["windows"] = recorder.flushed
    result["digest"] = digest({key: result[key] for key in OBSERVABLE})
    return result


def run_experiment() -> Dict[str, Any]:
    # Interleaved repeats (same rationale as P1's metrics comparison):
    # each round runs all three variants back to back so host-machine
    # noise hits them equally; fastest of each is reported.
    best: Dict[str, Optional[Dict[str, Any]]] = {
        "no_obs": None, "timeline_off": None, "timeline_on": None}

    def keep(key, candidate):
        if best[key] is None or candidate["wall_s"] < best[key]["wall_s"]:
            best[key] = candidate

    for _ in range(REPEATS):
        keep("no_obs", _storm(NullRegistry()))
        keep("timeline_off", _storm(MetricsRegistry()))
        keep("timeline_on", _storm(MetricsRegistry(),
                                   resolution=RESOLUTION))
    return best


def test_o1_timeline_overhead(benchmark):
    results = run_once(benchmark, run_experiment)
    no_obs = results["no_obs"]
    off = results["timeline_off"]
    on = results["timeline_on"]

    overhead_off = (off["wall_s"] / no_obs["wall_s"] - 1.0) * 100 \
        if no_obs["wall_s"] else 0.0
    overhead_on = (on["wall_s"] / off["wall_s"] - 1.0) * 100 \
        if off["wall_s"] else 0.0
    print_table(
        "O1: timeline recorder overhead (P1 LAN storm)",
        ["variant", "wall (s)", "events/s", "windows", "digest"],
        [("no-obs (NullRegistry)", no_obs["wall_s"],
          no_obs["events_per_s"], "-", no_obs["digest"][:12]),
         ("timeline off", off["wall_s"], off["events_per_s"], "-",
          off["digest"][:12]),
         ("timeline on ({}s windows)".format(RESOLUTION), on["wall_s"],
          on["events_per_s"], on["windows"], on["digest"][:12])])

    # Invisibility is exact, not statistical: all three variants must
    # be digest-identical on everything the simulation can observe.
    assert off["digest"] == no_obs["digest"], \
        "a recording registry changed the simulation"
    assert on["digest"] == off["digest"], \
        "the timeline recorder changed the simulation"
    assert on["windows"] > 0
    assert on["sent"] == HOSTS * PACKETS_EACH
    assert on["delivered"] == on["sent"] and on["dropped"] == 0
    # Loose backstop only — the checked-in BENCH_PR6.json carries the
    # real overhead figure; CI machines are too noisy for ≤10% hard.
    assert on["wall_s"] < off["wall_s"] * 2.0, \
        "timeline-on more than doubled the storm wall time"

    record_run(
        "o1_timeline_overhead",
        metrics={
            "no_obs_wall_s": no_obs["wall_s"],
            "timeline_off_wall_s": off["wall_s"],
            "timeline_on_wall_s": on["wall_s"],
            "timeline_off_overhead_pct": round(overhead_off, 2),
            "timeline_on_overhead_pct": round(overhead_on, 2),
            "windows": on["windows"],
            "resolution_s": RESOLUTION,
            "events_per_s_on": round(on["events_per_s"]),
            "events_per_s_no_obs": round(no_obs["events_per_s"]),
            "digest_match": on["digest"] == no_obs["digest"],
        },
        sim_time_s=on["sim_time_s"], events=on["events"],
        path="BENCH_PR6.json")
