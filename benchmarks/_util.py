"""Shared helpers for the experiment benches.

Each bench reproduces one figure/claim of the paper (see DESIGN.md §3 and
EXPERIMENTS.md).  Experiments are deterministic simulations, so each runs
once under pytest-benchmark (the interesting output is the printed table
and the shape assertions, not wall-clock timing).

Benches can additionally opt into the standardized telemetry file with
one :func:`record_run` call after their assertions: wall time (captured
by :func:`run_once`), simulated time, event count and a flat dict of key
metric snapshots are merged into ``BENCH_PR3.json`` at the repo root
(override the path with ``REPRO_BENCH_TELEMETRY``).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

#: Version tag of the telemetry document format.
TELEMETRY_SCHEMA = "repro-bench/1"

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Wall-clock duration of the most recent run_once() call, consumed by
#: record_run(); benches run one experiment at a time under pytest.
_LAST: Dict[str, float] = {}


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark fixture."""
    def timed():
        started = time.perf_counter()
        result = fn()
        _LAST["wall_time_s"] = time.perf_counter() - started
        return result
    return benchmark.pedantic(timed, rounds=1, iterations=1)


def telemetry_path(default: Optional[str] = None) -> str:
    """Where record_run() writes (env override for tests / CI smoke).

    ``default`` names an alternative document (a path relative to the
    repo root, e.g. ``BENCH_PR4.json``) for benches that report into a
    different file; the ``REPRO_BENCH_TELEMETRY`` override still wins.
    """
    fallback = os.path.join(_REPO_ROOT, default) if default \
        else os.path.join(_REPO_ROOT, "BENCH_PR3.json")
    return os.environ.get("REPRO_BENCH_TELEMETRY", fallback)


def digest(result: Any) -> str:
    """SHA-256 over canonical JSON — the same digest the replay checker
    uses, so "observability changed nothing" is assertable as string
    equality on any JSON-serialisable result subset."""
    encoded = json.dumps(result, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def _json_value(value: Any) -> Any:
    if isinstance(value, bool) or isinstance(value, int):
        return value
    if isinstance(value, float):
        return round(value, 6)
    return str(value)


def record_run(name: str, metrics: Optional[Dict[str, Any]] = None,
               sim_time_s: Optional[float] = None,
               events: Optional[int] = None,
               path: Optional[str] = None) -> Dict[str, Any]:
    """Merge one bench's telemetry entry into the shared document.

    The document is read-modify-written so each bench owns only its own
    entry; unknown top-level keys from future schema versions survive.
    Fields a bench cannot measure (an experiment running many internal
    environments may have no single sim clock) are recorded as null.
    """
    entry = {
        "wall_time_s": round(_LAST.get("wall_time_s", 0.0), 6),
        "sim_time_s": None if sim_time_s is None
        else round(float(sim_time_s), 6),
        "events": None if events is None else int(events),
        "metrics": {key: _json_value(value)
                    for key, value in sorted((metrics or {}).items())},
    }
    path = telemetry_path(path)
    document: Dict[str, Any] = {"schema": TELEMETRY_SCHEMA, "benches": {}}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                loaded = json.load(handle)
        except (OSError, ValueError):
            loaded = None
        if isinstance(loaded, dict) \
                and isinstance(loaded.get("benches"), dict):
            document = loaded
            document["schema"] = TELEMETRY_SCHEMA
    document["benches"][name] = entry
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entry


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[Any]]) -> None:
    """Print a compact fixed-width results table."""
    widths = [len(str(h)) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_fmt(cell) for cell in row]
        rendered_rows.append(rendered)
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
    line = "  ".join("{:<{w}}".format(h, w=w)
                     for h, w in zip(headers, widths))
    print("\n" + "=" * len(line))
    print(title)
    print("=" * len(line))
    print(line)
    print("-" * len(line))
    for rendered in rendered_rows:
        print("  ".join("{:<{w}}".format(cell, w=w)
                        for cell, w in zip(rendered, widths)))


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return "{:.3g}".format(cell)
        return "{:.4g}".format(cell)
    return str(cell)
