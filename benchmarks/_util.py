"""Shared helpers for the experiment benches.

Each bench reproduces one figure/claim of the paper (see DESIGN.md §3 and
EXPERIMENTS.md).  Experiments are deterministic simulations, so each runs
once under pytest-benchmark (the interesting output is the printed table
and the shape assertions, not wall-clock timing).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[Any]]) -> None:
    """Print a compact fixed-width results table."""
    widths = [len(str(h)) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_fmt(cell) for cell in row]
        rendered_rows.append(rendered)
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
    line = "  ".join("{:<{w}}".format(h, w=w)
                     for h, w in zip(headers, widths))
    print("\n" + "=" * len(line))
    print(title)
    print("=" * len(line))
    print(line)
    print("-" * len(line))
    for rendered in rendered_rows:
        print("  ".join("{:<{w}}".format(cell, w=w)
                        for cell, w in zip(rendered, widths)))


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return "{:.3g}".format(cell)
        return "{:.4g}".format(cell)
    return str(cell)
