"""F2 — Figure 2: transactional walls vs awareness-based sharing (§4.2.1).

Figure 2a: classic atomic transactions "control shared access by creating
walls between the different users and the existence of other users is
masked out completely".  Figure 2b: information flows between users so a
social protocol can regulate access.

Operationalisation: one author makes a burst of edits to a shared section
over a long editing session, committing only at the end.  A colleague
watches.  We measure **notification time** — how long after each change
the colleague learns of it — under three regimes:

* serialisable transactions (walls): nothing until commit;
* notification locks: every write signals watchers immediately;
* workspace awareness (Figure 2b): every write flows as an event.

Paper-shape expectation: transactional notification time is unbounded-
until-commit (mean ≈ half the session length), the awareness mechanisms
are bounded by the event-delivery latency — orders of magnitude smaller.
"""

from benchmarks._util import print_table, run_once
from repro.awareness import WorkspaceAwareness
from repro.concurrency import (
    EXCLUSIVE,
    LockTable,
    NOTIFICATION,
    SharedStore,
    TransactionManager,
)
from repro.sim import Environment, Tally

EDITS = 20
EDIT_INTERVAL = 10.0          # seconds between author edits
AWARENESS_LATENCY = 0.05      # event-delivery latency


def run_transactions():
    env = Environment()
    tm = TransactionManager(env, SharedStore())
    tm.store.write("section", "v0")
    edit_times = []
    notify = Tally("txn-notify")
    tm.store.subscribe(lambda key, value, version, writer:
                       [notify.record(env.now - at)
                        for at in edit_times] if writer == "author"
                       else None)

    def author(env):
        txn = tm.begin("author")
        for i in range(EDITS):
            yield env.timeout(EDIT_INTERVAL)
            yield from tm.write(txn, "section", "edit-{}".format(i))
            edit_times.append(env.now)
        yield from tm.commit(txn)

    env.process(author(env))
    env.run()
    return notify


def run_notification_locks():
    env = Environment()
    table = LockTable(env, style=NOTIFICATION)
    store = SharedStore()
    store.write("section", "v0")
    notify = Tally("lock-notify")
    pending = []

    def on_notify(key, writer, kind):
        for at in pending:
            notify.record(env.now - at)
        pending.clear()

    table.watch("section", on_notify)

    def author(env):
        grant = yield table.acquire("section", "author", EXCLUSIVE)
        for i in range(EDITS):
            yield env.timeout(EDIT_INTERVAL)
            store.write("section", "edit-{}".format(i), writer="author",
                        at=env.now)
            pending.append(env.now)
            # Notification locks propagate the change signal at once.
            yield env.timeout(AWARENESS_LATENCY)
            table.notify_write("section", "author")
        grant.release()

    env.process(author(env))
    env.run()
    return notify


def run_workspace_awareness():
    env = Environment()
    store = SharedStore()
    store.write("section", "v0")
    workspace = WorkspaceAwareness(env, store,
                                   latency=AWARENESS_LATENCY)
    notify = Tally("awareness-notify")
    edit_at = {}
    workspace.watch("colleague",
                    lambda event: notify.record(
                        env.now - edit_at[event.detail["version"]]))

    def author(env):
        for i in range(EDITS):
            yield env.timeout(EDIT_INTERVAL)
            version = store.write("section", "edit-{}".format(i),
                                  writer="author", at=env.now)
            edit_at[version] = env.now

    env.process(author(env))
    env.run()
    return notify


def run_experiment():
    return {
        "transactions (Fig 2a)": run_transactions(),
        "notification locks": run_notification_locks(),
        "workspace awareness (Fig 2b)": run_workspace_awareness(),
    }


def test_f2_walls_vs_awareness(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [(name, tally.count, tally.mean, tally.maximum)
            for name, tally in results.items()]
    print_table(
        "F2  notification time: when does a colleague learn of a change?",
        ["mechanism", "changes seen", "mean notify (s)", "max notify (s)"],
        rows)
    txn = results["transactions (Fig 2a)"]
    locks = results["notification locks"]
    awareness = results["workspace awareness (Fig 2b)"]
    # Every change is eventually seen under all three mechanisms.
    assert txn.count == locks.count == awareness.count == EDITS
    # The walls: mean notification ≈ half the session; the alternatives
    # are bounded by delivery latency — orders of magnitude smaller.
    assert txn.mean > EDITS * EDIT_INTERVAL / 4
    assert locks.mean <= 2 * AWARENESS_LATENCY
    assert awareness.mean <= 2 * AWARENESS_LATENCY
    assert txn.mean / awareness.mean > 100
    benchmark.extra_info["txn_over_awareness"] = txn.mean / awareness.mean
