"""The error hierarchy: every library error is a ReproError."""

import inspect

import pytest

from repro import errors


def all_error_classes():
    return [obj for _, obj in inspect.getmembers(errors, inspect.isclass)
            if issubclass(obj, Exception)]


def test_every_error_derives_from_repro_error():
    for cls in all_error_classes():
        assert issubclass(cls, errors.ReproError), cls


def test_catching_the_family():
    with pytest.raises(errors.ReproError):
        raise errors.QoSNegotiationFailed("no capacity")
    with pytest.raises(errors.QoSError):
        raise errors.QoSViolation("late frames")
    with pytest.raises(errors.NetworkError):
        raise errors.RoutingError("no route")
    with pytest.raises(errors.ConcurrencyError):
        raise errors.TransactionAborted("deadlock")
    with pytest.raises(errors.SessionError):
        raise errors.FloorControlError("not holding")
    with pytest.raises(errors.GroupError):
        raise errors.MembershipError("not a member")
    with pytest.raises(errors.MobilityError):
        raise errors.DisconnectedError("in the tunnel")
    with pytest.raises(errors.WorkflowError):
        raise errors.IllegalSpeechAct("cannot promise yet")


def test_hierarchy_is_wide():
    # The library distinguishes its subsystems' failures.
    assert len(all_error_classes()) >= 20
