"""Tests for usage monitoring, placement policies and migration."""

import pytest

from repro.errors import PlacementError, ReproError
from repro.management import (
    FirstNodePlacement,
    GroupAwarePlacement,
    LoadBalancedPlacement,
    MigrationManager,
    PLACEMENT_POLICIES,
    RandomPlacement,
    UsageMonitor,
    response_latencies,
)
from repro.net import Network, Topology, wan
from repro.node import ODPRuntime
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


# -- usage monitor -------------------------------------------------------------

def test_monitor_window_validation(env):
    with pytest.raises(ReproError):
        UsageMonitor(env, window=0)


def test_monitor_access_pattern(env):
    monitor = UsageMonitor(env, window=10.0)
    monitor.record("obj-1", "siteA")
    monitor.record("obj-1", "siteA")
    monitor.record("obj-1", "siteB")
    monitor.record("obj-2", "siteC")
    assert monitor.access_pattern("obj-1") == {"siteA": 2, "siteB": 1}
    assert monitor.total_accesses("obj-1") == 3
    assert monitor.user_nodes("obj-1") == ["siteA", "siteB"]
    assert monitor.active_objects() == ["obj-1", "obj-2"]


def test_monitor_window_expires_samples(env):
    monitor = UsageMonitor(env, window=5.0)
    monitor.record("obj-1", "siteA")
    env.run(until=10.0)
    monitor.record("obj-2", "siteB")
    assert monitor.access_pattern("obj-1") == {}
    assert monitor.active_objects() == ["obj-2"]


def test_monitor_expiry_drops_only_stale_prefix(env):
    monitor = UsageMonitor(env, window=5.0)
    monitor.record("obj-1", "siteA")
    env.run(until=3.0)
    monitor.record("obj-2", "siteB")
    env.run(until=7.0)   # obj-1's sample is now outside the window
    assert monitor.active_objects() == ["obj-2"]
    assert len(monitor._samples) == 1   # expired samples are popped


def test_monitor_routes_samples_through_metrics_registry(env):
    from repro import obs

    registry = obs.MetricsRegistry()
    monitor = UsageMonitor(env, window=5.0, metrics=registry)
    monitor.record("obj-1", "siteA")
    monitor.record("obj-1", "siteA")
    monitor.record("obj-1", "siteB")
    assert registry.counter("usage.access", oid="obj-1",
                            node="siteA").value == 2
    assert registry.counter("usage.access", oid="obj-1",
                            node="siteB").value == 1
    # The registry view is cumulative (no window), the monitor's is
    # windowed: both must agree before anything expires.
    assert monitor.total_accesses("obj-1") == 3


# -- placement policies -----------------------------------------------------------

def star_topology(env):
    """Three sites: A and B close together, C far away, plus a hub."""
    topo = Topology(env)
    topo.add_link("siteA", "hub", latency=0.002)
    topo.add_link("siteB", "hub", latency=0.002)
    topo.add_link("siteC", "hub", latency=0.100)
    return topo


def test_policies_require_candidates(env):
    topo = star_topology(env)
    for policy in (FirstNodePlacement(), RandomPlacement(),
                   LoadBalancedPlacement(), GroupAwarePlacement()):
        with pytest.raises(PlacementError):
            policy.place([], ["siteA"], topo)


def test_first_node_policy(env):
    topo = star_topology(env)
    policy = FirstNodePlacement()
    assert policy.place(["siteC", "siteA"], ["siteA"], topo) == "siteC"


def test_random_policy_deterministic_with_seed(env):
    topo = star_topology(env)
    rng = RandomStreams(5).stream("placement")
    policy = RandomPlacement(rng=rng)
    choices = {policy.place(["siteA", "siteB", "siteC"], [], topo)
               for _ in range(50)}
    assert choices <= {"siteA", "siteB", "siteC"}
    assert len(choices) > 1


def test_load_balanced_spreads_objects(env):
    topo = star_topology(env)
    policy = LoadBalancedPlacement()
    placements = [policy.place(["siteA", "siteB"], [], topo)
                  for _ in range(4)]
    assert placements.count("siteA") == 2
    assert placements.count("siteB") == 2


def test_group_aware_minimises_worst_latency(env):
    topo = star_topology(env)
    policy = GroupAwarePlacement()
    # Group spans all three sites: the hub equalises; siteA would leave
    # siteC with a 2-hop worst path.
    chosen = policy.place(["siteA", "siteB", "siteC", "hub"],
                          ["siteA", "siteB", "siteC"], topo)
    assert chosen == "hub"


def test_group_aware_follows_the_group(env):
    topo = star_topology(env)
    policy = GroupAwarePlacement()
    chosen = policy.place(["siteA", "siteB", "siteC", "hub"],
                          ["siteC"], topo)
    assert chosen == "siteC"


def test_group_aware_weights_bias_choice(env):
    topo = Topology(env)
    topo.add_link("left", "mid", latency=0.01)
    topo.add_link("mid", "right", latency=0.01)
    policy = GroupAwarePlacement()
    # Unweighted, mid equalises left and right.
    assert policy.place(["left", "mid", "right"],
                        ["left", "right"], topo) == "mid"
    # Heavy use from the left pulls the object leftward: left's weighted
    # latency dominates, so hosting at 'left' minimises the worst member.
    chosen = policy.place(["left", "mid", "right"], ["left", "right"],
                          topo, weights={"left": 100, "right": 0})
    assert chosen == "left"


def test_group_aware_empty_group_defaults(env):
    topo = star_topology(env)
    assert GroupAwarePlacement().place(["siteB"], [], topo) == "siteB"


def test_response_latencies(env):
    topo = star_topology(env)
    latencies = response_latencies("hub", ["siteA", "siteC"], topo)
    assert latencies["siteA"] == pytest.approx(0.004)
    assert latencies["siteC"] == pytest.approx(0.200)


def test_policy_registry():
    assert set(PLACEMENT_POLICIES) == {"first-node", "random",
                                       "load-balanced", "group-aware"}


# -- migration manager --------------------------------------------------------------

def make_runtime(env):
    topo = wan(env, sites=3, hosts_per_site=1, site_latency=0.05)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="site0.host0")
    for i in range(3):
        runtime.nucleus("site{}.host0".format(i))
    return runtime


def test_migration_manager_validation(env):
    runtime = make_runtime(env)
    monitor = UsageMonitor(env)
    with pytest.raises(PlacementError):
        MigrationManager(runtime, monitor, period=0)
    with pytest.raises(PlacementError):
        MigrationManager(runtime, monitor, improvement_threshold=1.5)


def test_migration_moves_object_toward_users(env):
    runtime = make_runtime(env)
    creator = runtime.nuclei["site0.host0"]
    capsule = creator.create_capsule()
    obj = creator.create_object(capsule, "whiteboard", state={"n": 0})
    obj.operation("poke", lambda caller, state, args: state["n"])
    monitor = UsageMonitor(env, window=100.0)
    manager = MigrationManager(
        runtime, monitor, period=5.0, improvement_threshold=0.1,
        candidates=["site0.host0", "site1.host0", "site2.host0"])

    def users(env):
        # Only site2 uses the object.
        for _ in range(10):
            yield env.timeout(1.0)
            monitor.record(obj.oid, "site2.host0")
            yield runtime.nuclei["site2.host0"].invoke(obj.oid, "poke")

    env.process(users(env))
    env.run(until=30.0)
    assert runtime.locate(obj.oid) == "site2.host0"
    assert manager.counters["migrations"] == 1
    assert manager.migrations[0][2:] == ("site0.host0", "site2.host0")


def test_migration_skips_marginal_improvement(env):
    # Custom geometry: moving A -> C would improve the single user at B
    # by only 40%, below the 90% threshold.
    topo = Topology(env)
    topo.add_link("A", "B", latency=0.1)
    topo.add_link("C", "B", latency=0.06)
    topo.add_link("A", "C", latency=0.05)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="A")
    for node in ("A", "B", "C"):
        runtime.nucleus(node)
    creator = runtime.nuclei["A"]
    capsule = creator.create_capsule()
    obj = creator.create_object(capsule, "doc")
    monitor = UsageMonitor(env, window=100.0)
    manager = MigrationManager(
        runtime, monitor, period=5.0, improvement_threshold=0.9,
        candidates=["A", "C"])
    monitor.record(obj.oid, "B")
    env.run(until=12.0)
    assert runtime.locate(obj.oid) == "A"
    assert manager.counters["migrations"] == 0
    assert manager.counters["evaluations"] >= 1
    manager.stop()


def test_migration_manager_stop(env):
    runtime = make_runtime(env)
    monitor = UsageMonitor(env)
    manager = MigrationManager(runtime, monitor, period=1.0)
    manager.stop()
    env.run(until=5.0)
    assert manager.counters["evaluations"] == 0
