"""Tests for congestion-aware communications management."""

import pytest

from repro.errors import ReproError
from repro.management import CommunicationsManager
from repro.net import Network, Topology
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def triangle(env, bandwidth=1e6):
    """Two routes from a to b: a short direct link and a 2-hop detour
    whose combined weight is slightly higher."""
    topo = Topology(env)
    topo.add_link("a", "b", latency=0.010, bandwidth=bandwidth)
    topo.add_link("a", "c", latency=0.006, bandwidth=bandwidth)
    topo.add_link("c", "b", latency=0.006, bandwidth=bandwidth)
    return topo


def test_validation(env):
    topo = triangle(env)
    net = Network(env, topo)
    with pytest.raises(ReproError):
        CommunicationsManager(net, period=0)
    with pytest.raises(ReproError):
        CommunicationsManager(net, smoothing=0)
    with pytest.raises(ReproError):
        CommunicationsManager(net, sensitivity=-1)


def test_utilisation_tracks_traffic(env):
    topo = triangle(env)
    net = Network(env, topo)
    manager = CommunicationsManager(net, period=1.0, smoothing=1.0)
    src, dst = net.host("a"), net.host("b")

    def pump(env):
        # ~500 kb/s on a 1 Mb/s link: ~50% utilisation.
        while env.now < 5.0:
            src.send("b", size=6250)
            yield env.timeout(0.1)

    env.process(pump(env))
    env.run(until=5.5)
    manager.stop()
    utilisation = manager.utilisation_of("a", "b")
    assert 0.3 < utilisation < 0.7
    assert manager.utilisation_of("a", "c") < 0.05
    hottest = manager.hottest_links(limit=1)
    assert hottest[0][0].ends in (("a", "b"), ("b", "a"))


def test_congestion_reroutes_traffic(env):
    topo = triangle(env)
    net = Network(env, topo)
    manager = CommunicationsManager(net, period=1.0, sensitivity=10.0,
                                    smoothing=1.0)
    src = net.host("a")
    net.host("b")
    # The direct link starts as the chosen route.
    assert len(topo.path("a", "b")) == 1

    def flood(env):
        while env.now < 10.0:
            src.send("b", size=12500)  # 1 Mb/s: saturation
            yield env.timeout(0.1)

    env.process(flood(env))
    env.run(until=3.5)
    # After sampling, the congested direct link's weight has risen and
    # routing prefers the 2-hop detour.
    assert len(topo.path("a", "b")) == 2
    assert manager.counters["reroutes"] >= 1
    manager.stop()
    env.run(until=11.0)


def test_idle_network_keeps_routes(env):
    topo = triangle(env)
    net = Network(env, topo)
    manager = CommunicationsManager(net, period=1.0)
    env.run(until=5.0)
    manager.stop()
    assert len(topo.path("a", "b")) == 1
    assert manager.counters["samples"] >= 4


def test_utilisation_decays_after_burst(env):
    topo = triangle(env)
    net = Network(env, topo)
    manager = CommunicationsManager(net, period=1.0, smoothing=0.5)
    src = net.host("a")
    net.host("b")

    def burst(env):
        while env.now < 2.0:
            src.send("b", size=12500)
            yield env.timeout(0.1)

    env.process(burst(env))
    env.run(until=2.5)
    peak = manager.utilisation_of("a", "b")
    env.run(until=8.0)
    manager.stop()
    assert manager.utilisation_of("a", "b") < peak / 2
