"""Tests for the chaos-search engine: generator, trials, campaigns."""

import json

import pytest

from repro.faults.fuzz import (
    PROFILES,
    TIME_QUANTUM,
    FuzzProfile,
    ScheduleGenerator,
    campaign_digest,
    evaluate_schedule,
    get_profile,
    run_campaign,
    run_trial,
)
from repro.net import Network, Topology
from repro.sim import Environment, RandomStreams


def mesh(env, seed=5):
    streams = RandomStreams(seed)
    topo = Topology(env)
    for a, b in (("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")):
        topo.add_link(a, b, latency=0.01,
                      rng=streams.stream(a + b))
    return Network(env, topo)


def probe_profile(**overrides):
    options = dict(active=(1.0, 10.0), heal_by=12.0, max_ops=4)
    options.update(overrides)
    return FuzzProfile("test", **options)


# -- generator ---------------------------------------------------------------


def test_generator_same_seed_byte_identical_sequence():
    profile = probe_profile()
    sequences = []
    for _ in range(2):
        net = mesh(Environment())
        rng = RandomStreams(3).stream("gen")
        generator = ScheduleGenerator(profile, rng)
        sequences.append([
            json.dumps(generator.generate(net).to_dict(),
                       sort_keys=True)
            for _ in range(8)])
    assert sequences[0] == sequences[1]


def test_generator_different_seeds_differ():
    profile = probe_profile()
    net = mesh(Environment())
    first = ScheduleGenerator(
        profile, RandomStreams(3).stream("gen")).generate(net)
    net2 = mesh(Environment())
    second = ScheduleGenerator(
        profile, RandomStreams(4).stream("gen")).generate(net2)
    assert first.to_dict() != second.to_dict()


def test_generated_schedules_are_valid_and_balanced():
    profile = probe_profile()
    net = mesh(Environment())
    generator = ScheduleGenerator(profile,
                                  RandomStreams(9).stream("gen"))
    for _ in range(20):
        schedule = generator.generate(net)
        assert 1 <= len(schedule) <= 2 * profile.max_ops
        assert schedule.balanced()
        for event in schedule.ordered():
            assert profile.active[0] <= event.at <= profile.heal_by
            # Every generated time sits on the quantum grid.
            assert abs(event.at / TIME_QUANTUM
                       - round(event.at / TIME_QUANTUM)) < 1e-9
        assert schedule.last_lift_at() <= profile.heal_by


def test_generated_targets_come_from_the_topology():
    profile = probe_profile()
    net = mesh(Environment())
    nodes = set(net.topology.nodes)
    generator = ScheduleGenerator(profile,
                                  RandomStreams(2).stream("gen"))
    for _ in range(10):
        for event in generator.generate(net).ordered():
            params = event.params
            for key in ("a", "b", "node"):
                if key in params:
                    assert params[key] in nodes
            for group in params.get("groups", []):
                assert set(group) <= nodes


# -- profiles ----------------------------------------------------------------


def test_get_profile_unknown_names_fuzzable_set():
    with pytest.raises(KeyError) as err:
        get_profile("locks-soft")
    assert "fuzzable" in err.value.args[0]
    assert "partition-recovery" in err.value.args[0]


def test_shipped_profiles_cover_the_chaos_workloads():
    assert {"partition-recovery", "flaky-links",
            "fuzz-probe"} <= set(PROFILES)


# -- trials and campaigns ----------------------------------------------------


def test_trial_replays_generated_schedule_identically():
    profile = get_profile("fuzz-probe")
    generator = ScheduleGenerator(profile,
                                  RandomStreams(7).stream("trial"))
    trial = run_trial("fuzz-probe", 31, generator)
    assert trial["schedule"]["events"]
    assert len(trial["digests"]) == 2
    # The generating run and the fixed-schedule replay must agree —
    # the generator's RNG is separate from the workload's streams.
    assert trial["digests"][0] == trial["digests"][1]


def test_evaluate_schedule_clean_on_empty_schedule():
    report = evaluate_schedule("fuzz-probe", 31, {"events": []},
                               runs=2)
    assert report["violations"] == []
    assert len(set(report["digests"])) == 1


def test_campaign_is_deterministic():
    first = run_campaign("fuzz-probe", budget=3, seed=11)
    second = run_campaign("fuzz-probe", budget=3, seed=11)
    assert first == second
    assert first["digest"] == campaign_digest(second)
    assert first["trials"] == 3


def test_campaign_digest_excludes_itself():
    summary = run_campaign("fuzz-probe", budget=1, seed=11)
    recomputed = campaign_digest(summary)
    assert summary["digest"] == recomputed
