"""Tests for the fuzz corpus: entries, registration, reproduction."""

import json

import pytest

from repro.analysis.workloads import WORKLOADS
from repro.errors import SimulationError
from repro.faults.corpus import (
    REGISTRY_PREFIX,
    SCHEMA,
    corpus_workloads,
    default_corpus_dir,
    entry_id,
    load_corpus,
    load_entry,
    make_entry,
    verify_entry,
    write_entry,
)

SCHEDULE = {"events": [
    {"at": 3.0, "kind": "node-crash", "node": "n2"},
    {"at": 7.0, "kind": "node-restart", "node": "n2"},
]}


def test_entry_round_trips_through_disk(tmp_path):
    entry = make_entry("fuzz-probe", 31, "liveness", SCHEDULE,
                       message="stuck operations",
                       campaign={"seed": 7, "trial": 4})
    path = write_entry(str(tmp_path), entry)
    assert path.endswith("fuzz-{}.json".format(entry["id"]))
    assert load_entry(path) == entry


def test_entry_id_is_content_stable():
    first = entry_id("fuzz-probe", 31, "liveness", SCHEDULE)
    second = entry_id("fuzz-probe", 31, "liveness",
                      json.loads(json.dumps(SCHEDULE)))
    assert first == second
    assert first != entry_id("fuzz-probe", 32, "liveness", SCHEDULE)


def test_load_entry_rejects_wrong_schema(tmp_path):
    path = tmp_path / "fuzz-bad.json"
    path.write_text(json.dumps({"schema": "other/1"}))
    with pytest.raises(SimulationError) as err:
        load_entry(str(path))
    assert SCHEMA in err.value.args[0]


def test_load_entry_rejects_missing_field(tmp_path):
    entry = make_entry("fuzz-probe", 31, "liveness", SCHEDULE, "m")
    del entry["workload_seed"]
    path = tmp_path / "fuzz-x.json"
    path.write_text(json.dumps(entry))
    with pytest.raises(SimulationError) as err:
        load_entry(str(path))
    assert "workload_seed" in err.value.args[0]


def test_load_entry_validation_names_offending_event(tmp_path):
    entry = make_entry("fuzz-probe", 31, "liveness", SCHEDULE, "m")
    entry["schedule"]["events"][1] = {"at": 7.0, "kind": "node-restart"}
    path = tmp_path / "fuzz-y.json"
    path.write_text(json.dumps(entry))
    with pytest.raises(SimulationError) as err:
        load_entry(str(path))
    assert "event 1" in err.value.args[0]
    assert "node" in err.value.args[0]


def test_corpus_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_CORPUS", str(tmp_path))
    assert default_corpus_dir() == str(tmp_path)
    assert load_corpus() == []


def test_corpus_workloads_register_and_run(tmp_path):
    entry = make_entry("fuzz-probe", 31, "liveness", SCHEDULE, "m")
    write_entry(str(tmp_path), entry)
    registry = corpus_workloads(str(tmp_path))
    name = REGISTRY_PREFIX + entry["id"]
    assert set(registry) == {name}
    result = registry[name](seed=31)
    assert result["workload"] == name
    assert result["base"] == "fuzz-probe"
    assert result["events"] == 2
    assert isinstance(result["reproduced"], bool)
    # The regression run itself must be deterministic.
    assert len(set(result["digests"])) == 1


def test_checked_in_corpus_is_registered():
    names = [name for name in WORKLOADS
             if name.startswith(REGISTRY_PREFIX)]
    assert names, "the checked-in corpus should register workloads"


def test_checked_in_corpus_still_reproduces():
    entries = load_corpus()
    assert entries, "corpus/fuzz should hold at least one reproducer"
    for entry in entries:
        verdict = verify_entry(entry)
        assert verdict["reproduced"], \
            "corpus entry {} no longer fails {}".format(
                entry["id"], entry["oracle"])
        assert verdict["deterministic"]
