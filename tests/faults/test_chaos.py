"""Smoke and determinism tests for the chaos workloads."""

from repro.analysis.workloads import WORKLOADS, run_workload
from repro.faults.chaos import (
    HEAL_AT,
    PARTITION_AT,
    flaky_links_workload,
    partition_recovery_workload,
)


def test_chaos_workloads_registered():
    assert "partition-recovery" in WORKLOADS
    assert "flaky-links" in WORKLOADS


def test_partition_recovery_arc():
    result = run_workload("partition-recovery")
    # Detection: the partition (not anything earlier) causes suspicion.
    assert result["first_suspicion_at"] > PARTITION_AT
    assert result["suspicions"]
    # Recovery: every member is back shortly after the heal.
    assert result["recovered_at"] is not None
    assert result["recovered_at"] > HEAL_AT
    assert result["recovery_time"] <= 3.0
    # The SLO fires during the split and clears after the heal.
    assert PARTITION_AT < result["slo_fired_at"] < HEAL_AT
    assert result["slo_cleared_at"] > HEAL_AT
    # Degradation sheds and recovery restores the media contract.
    events = [entry["event"] for entry in result["degradation_log"]]
    assert "degrade" in events and "recover" in events
    assert result["final_throughput"] == 150000.0
    assert result["session_counters"]["floor_reclaims"] == 1
    assert result["fault_spans"] == ["fault.heal", "fault.partition"]


def test_partition_recovery_baseline_is_inert():
    result = partition_recovery_workload(include_faults=False)
    assert result["faults"] == []
    assert result["suspicions"] == []
    assert result["slo_fired_at"] is None
    assert result["session_transitions"] == []
    assert result["final_throughput"] == 150000.0
    assert result["fault_spans"] == []


def test_flaky_links_policies_engage():
    result = run_workload("flaky-links")
    assert result["metric_rpc_retries"] > 0
    assert result["metric_breaker_opened"] > 0
    assert result["breaker_rejected"] > 0
    assert result["breaker"] == {"server": "closed"}
    assert result["chan_retries"] > 0
    assert result["chan_gave_up"] > 0
    assert result["tail_promoted"] > 0
    assert result["outcomes"].get("ok", 0) > 100


def test_chaos_workloads_deterministic():
    assert partition_recovery_workload(seed=7) \
        == partition_recovery_workload(seed=7)
    assert flaky_links_workload(seed=7) == flaky_links_workload(seed=7)


def test_seed_changes_outcome():
    assert flaky_links_workload(seed=1) != flaky_links_workload(seed=2)
