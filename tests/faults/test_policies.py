"""Tests for recovery policies: backoff, budgets, circuit breaking."""

import pytest

from repro.errors import SimulationError
from repro.faults.policies import (
    CircuitBreaker,
    DeadlineBudget,
    FaultPolicies,
    RetryPolicy,
    fixed_retry,
)
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


def test_backoff_grows_exponentially_to_cap():
    policy = RetryPolicy(base=0.1, multiplier=2.0, cap=0.5)
    assert [policy.delay(i) for i in range(5)] == \
        [0.1, 0.2, 0.4, 0.5, 0.5]


def test_fixed_retry_is_constant_interval():
    policy = fixed_retry(0.2, max_retries=3)
    assert [policy.delay(i) for i in range(4)] == [0.2] * 4
    assert policy.max_retries == 3


def test_jitter_is_deterministic_per_seed():
    def delays(seed):
        rng = RandomStreams(seed).stream("backoff")
        policy = RetryPolicy(base=0.1, jitter=0.3, rng=rng)
        return [policy.delay(i) for i in range(6)]

    assert delays(7) == delays(7)
    assert delays(7) != delays(8)
    # Jitter spreads symmetrically around the nominal delay.
    for i, delay in enumerate(delays(7)):
        nominal = 0.1 * 2 ** i
        assert nominal * 0.7 <= delay <= nominal * 1.3


def test_jitter_without_rng_rejected():
    with pytest.raises(SimulationError):
        RetryPolicy(jitter=0.2)


def test_backoff_validation():
    with pytest.raises(SimulationError):
        RetryPolicy(base=0.0)
    with pytest.raises(SimulationError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(SimulationError):
        RetryPolicy(base=0.5, cap=0.1)
    with pytest.raises(SimulationError):
        RetryPolicy(max_retries=-1)


def test_deadline_budget_tracks_sim_time(env):
    budget = DeadlineBudget(env, 2.0)
    assert budget.allows(1.9)
    assert not budget.allows(2.0)

    def advance(env):
        yield env.timeout(1.5)

    env.run(env.process(advance(env)))
    assert budget.remaining == pytest.approx(0.5)
    assert budget.allows(0.4)
    assert not budget.allows(0.6)
    assert not budget.exceeded


def test_breaker_opens_after_threshold(env):
    with use_metrics(MetricsRegistry()) as metrics:
        breaker = CircuitBreaker(env, failure_threshold=3,
                                 reset_timeout=10.0)
        for _ in range(2):
            breaker.record_failure("b")
        assert breaker.state("b") == "closed"
        assert breaker.allow("b")
        breaker.record_failure("b")
        assert breaker.state("b") == "open"
        assert not breaker.allow("b")
        assert breaker.rejected == 1
        assert metrics.counter_total("breaker.opened") == 1
        assert metrics.counter_total("breaker.rejected") == 1


def test_breaker_half_open_trial(env):
    breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout=5.0)
    breaker.record_failure("b")
    assert not breaker.allow("b")

    def later(env):
        yield env.timeout(5.0)

    env.run(env.process(later(env)))
    # One trial call passes; a second concurrent one is refused.
    assert breaker.state("b") == "half-open"
    assert breaker.allow("b")
    assert not breaker.allow("b")
    breaker.record_success("b")
    assert breaker.state("b") == "closed"
    assert breaker.allow("b")


def test_breaker_failed_trial_reopens(env):
    breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout=5.0)
    breaker.record_failure("b")

    def later(env):
        yield env.timeout(5.0)

    env.run(env.process(later(env)))
    assert breaker.allow("b")
    breaker.record_failure("b")
    assert breaker.state("b") == "open"
    assert not breaker.allow("b")


def test_breaker_is_per_destination(env):
    breaker = CircuitBreaker(env, failure_threshold=1, reset_timeout=5.0)
    breaker.record_failure("b")
    assert not breaker.allow("b")
    assert breaker.allow("c")
    assert breaker.snapshot() == {"b": "open", "c": "closed"}


def test_policies_bundle(env):
    policies = FaultPolicies(retry=fixed_retry(0.1, 2), deadline=1.0)
    budget = policies.budget(env)
    assert budget is not None and budget.budget == 1.0
    assert FaultPolicies().budget(env) is None
    with pytest.raises(SimulationError):
        FaultPolicies(deadline=0.0)
