"""Tests for the graceful-degradation manager."""

import pytest

from repro.faults.degrade import DEGRADED, FULL_SERVICE, DegradationManager
from repro.net import Network, lan
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.qos.broker import QoSBroker
from repro.qos.params import QoSParameters
from repro.sessions.floor import FcfsFloor
from repro.sessions.session import ASYNCHRONOUS, SYNCHRONOUS, Session
from repro.sim import Environment


@pytest.fixture(autouse=True)
def _scoped_metrics():
    with use_metrics(MetricsRegistry()):
        yield


@pytest.fixture
def env():
    return Environment()


def make_flow(env):
    net = Network(env, lan(env, hosts=2))
    broker = QoSBroker(net)
    contract = broker.negotiate(
        "host0", "host1",
        desired=QoSParameters(throughput=100000.0, latency=0.5,
                              jitter=0.5, loss=0.1),
        minimum=QoSParameters(throughput=25000.0, latency=0.5,
                              jitter=0.5, loss=0.1))
    return broker, contract


def test_degrade_sheds_and_recover_restores(env):
    broker, contract = make_flow(env)
    manager = DegradationManager(env, broker=broker,
                                 contracts=[contract],
                                 shed_fraction=0.5)
    assert manager.level == FULL_SERVICE
    assert manager.degrade("test")
    assert manager.level == DEGRADED
    assert contract.agreed.throughput == 50000.0
    assert manager.recover("test")
    assert manager.level == FULL_SERVICE
    assert contract.agreed.throughput == 100000.0


def test_shed_respects_contract_minimum(env):
    broker, contract = make_flow(env)
    manager = DegradationManager(env, broker=broker,
                                 contracts=[contract],
                                 shed_fraction=0.9)
    manager.degrade("one")
    # 100k * 0.1 would undercut the 25k minimum: clamp to the minimum.
    assert contract.agreed.throughput == 25000.0


def test_transitions_are_idempotent(env):
    manager = DegradationManager(env)
    assert manager.degrade("a")
    assert not manager.degrade("b")
    assert manager.recover("a")
    assert not manager.recover("a")
    events = [entry["event"] for entry in manager.log]
    assert events == ["degrade", "degrade-again", "recover"]


def test_session_drops_to_async_and_returns(env):
    session = Session(env, "s")
    manager = DegradationManager(env, session=session)
    assert session.time_mode == SYNCHRONOUS
    manager.degrade("slo:test")
    assert session.time_mode == ASYNCHRONOUS
    manager.recover("slo:test")
    assert session.time_mode == SYNCHRONOUS


def test_already_async_session_stays_async(env):
    session = Session(env, "s", time_mode=ASYNCHRONOUS)
    manager = DegradationManager(env, session=session)
    manager.degrade("x")
    manager.recover("x")
    assert session.time_mode == ASYNCHRONOUS


def test_suspected_member_loses_floor(env):
    session = Session(env, "s", floor=FcfsFloor(env))
    for member in ("alice", "bob"):
        session.join(member)

    def grab(env):
        yield session.floor.request("alice")

    env.run(env.process(grab(env)))
    assert session.floor.holds("alice")
    manager = DegradationManager(env, session=session)
    manager.on_suspect("alice")
    assert not session.floor.holds("alice")
    assert session.counters.as_dict()["floor_reclaims"] == 1
    assert manager.level == DEGRADED
    entry = manager.log[0]
    assert entry["event"] == "suspect"
    assert entry["floor_reclaimed"] is True


def test_suspecting_non_holder_still_degrades(env):
    session = Session(env, "s", floor=FcfsFloor(env))
    session.join("alice")
    manager = DegradationManager(env, session=session)
    manager.on_suspect("alice")
    assert manager.level == DEGRADED
    assert manager.log[0]["floor_reclaimed"] is False


def test_slo_alert_callback_shape(env):
    class Alert:
        slo = "qos:flow"

    manager = DegradationManager(env)
    manager.on_alert("fired", Alert())
    assert manager.level == DEGRADED
    manager.on_alert("cleared", Alert())
    assert manager.level == FULL_SERVICE


def test_degradation_metrics(env):
    with use_metrics(MetricsRegistry()) as metrics:
        manager = DegradationManager(env)
        manager.degrade("r")
        manager.recover("r")
        manager.on_suspect("m")
        assert metrics.counter_total("degrade.entered") == 2
        assert metrics.counter_total("degrade.recovered") == 1
        assert metrics.counter_total("degrade.suspicions") == 1


def test_watch_adds_contract(env):
    broker, contract = make_flow(env)
    manager = DegradationManager(env, broker=broker)
    manager.watch(contract)
    manager.degrade("x")
    assert contract.agreed.throughput == 50000.0
