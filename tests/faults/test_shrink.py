"""Tests for the delta-debugging shrinker.

The fixtures are synthetic predicates with *known* minimal schedules,
so convergence is asserted exactly: the shrinker must land on the
minimum, not merely something smaller.
"""

from repro.faults.shrink import ddmin, shrink_schedule


def link_pair(at, lift_at, a="a", b="b"):
    return [{"at": float(at), "kind": "link-down", "a": a, "b": b},
            {"at": float(lift_at), "kind": "link-up", "a": a, "b": b}]


def crash_pair(at, lift_at, node="n"):
    return [{"at": float(at), "kind": "node-crash", "node": node},
            {"at": float(lift_at), "kind": "node-restart",
             "node": node}]


def contains(events, wanted):
    keys = [(e["kind"], e.get("a"), e.get("node")) for e in events]
    return all(w in keys for w in wanted)


# -- ddmin -------------------------------------------------------------------


def test_ddmin_converges_to_single_culprit():
    events = [{"id": i} for i in range(8)]
    minimal, _ = ddmin(events, lambda evs: {"id": 5}
                       in evs)
    assert minimal == [{"id": 5}]


def test_ddmin_converges_to_scattered_pair():
    events = [{"id": i} for i in range(10)]

    def test(evs):
        ids = [e["id"] for e in evs]
        return 2 in ids and 7 in ids

    minimal, _ = ddmin(events, test)
    assert [e["id"] for e in minimal] == [2, 7]


def test_ddmin_converges_to_triple():
    events = [{"id": i} for i in range(12)]

    def test(evs):
        ids = set(e["id"] for e in evs)
        return {0, 5, 11} <= ids

    minimal, _ = ddmin(events, test)
    assert sorted(e["id"] for e in minimal) == [0, 5, 11]


def test_ddmin_returns_input_when_not_failing():
    events = [{"id": i} for i in range(4)]
    minimal, tests_run = ddmin(events, lambda evs: False)
    assert minimal == events
    assert tests_run == 1


# -- seeded fixture failures with known minima -------------------------------


def test_shrink_fixture_lone_crash_pair():
    # Fixture 1: three fault pairs, only the crash of node "x" matters.
    events = (link_pair(2.0, 6.0) + crash_pair(3.0, 8.0, node="x")
              + link_pair(4.0, 9.0, a="c", b="d"))

    def failing(evs):
        return contains(evs, [("node-crash", None, "x"),
                              ("node-restart", None, "x")])

    report = shrink_schedule(events, failing)
    assert report["reproduced"]
    assert report["events_after"] == 2
    kinds = [e["kind"] for e in report["events"]]
    assert kinds == ["node-crash", "node-restart"]


def test_shrink_fixture_overlapping_pair_of_pairs():
    # Fixture 2: the failure needs BOTH the a-b cut and the crash.
    events = (link_pair(2.0, 10.0) + crash_pair(3.0, 9.0)
              + link_pair(5.0, 7.0, a="c", b="d"))

    def failing(evs):
        return contains(evs, [("link-down", "a", None),
                              ("node-crash", None, "n")])

    report = shrink_schedule(events, failing)
    assert report["reproduced"]
    down_kinds = sorted(e["kind"] for e in report["events"])
    assert "link-down" in down_kinds and "node-crash" in down_kinds
    assert report["events_after"] <= 4


def test_shrink_fixture_unbalanced_minimum_retained():
    # Fixture 3: only the onset matters — the lift may be dropped.
    events = link_pair(2.0, 20.0) + crash_pair(5.0, 15.0)

    def failing(evs):
        return any(e["kind"] == "node-crash" for e in evs)

    report = shrink_schedule(events, failing)
    assert report["reproduced"]
    assert report["events_after"] == 1
    assert report["events"][0]["kind"] == "node-crash"


# -- secondary reduction passes ----------------------------------------------


def test_shrink_closes_onset_lift_gap_to_threshold():
    events = link_pair(2.0, 10.0)

    def failing(evs):
        downs = {(e["a"], e["b"]): e["at"] for e in evs
                 if e["kind"] == "link-down"}
        for e in evs:
            if e["kind"] == "link-up":
                start = downs.get((e["a"], e["b"]))
                if start is not None and e["at"] - start >= 1.0:
                    return True
        return False

    report = shrink_schedule(events, failing)
    assert report["reproduced"]
    down, up = report["events"]
    assert up["at"] - down["at"] == 1.0


def test_shrink_rounds_times_to_integers():
    events = link_pair(2.75, 9.25)
    report = shrink_schedule(
        events, lambda evs: contains(evs, [("link-down", "a", None)]))
    assert report["events"][0]["at"] == 2.0


def test_shrink_drops_partition_group_members():
    events = [
        {"at": 2.0, "kind": "partition", "name": "p",
         "groups": [["a", "b"], ["c", "d"]]},
        {"at": 8.0, "kind": "heal", "name": "p"},
    ]

    def failing(evs):
        for e in evs:
            if e["kind"] == "partition":
                return any("a" in group for group in e["groups"])
        return False

    report = shrink_schedule(events, failing)
    partition = report["events"][0]
    assert partition["groups"][0] == ["a"]
    assert len(partition["groups"][1]) == 1


def test_shrink_drops_impairment_links():
    events = [
        {"at": 2.0, "kind": "loss-burst", "extra_loss": 0.4,
         "links": [["a", "b"], ["c", "d"], ["e", "f"]]},
        {"at": 6.0, "kind": "loss-calm", "extra_loss": 0.4,
         "links": [["a", "b"], ["c", "d"], ["e", "f"]]},
    ]

    def failing(evs):
        for e in evs:
            if e["kind"] == "loss-burst":
                return ["c", "d"] in e["links"]
        return False

    report = shrink_schedule(events, failing)
    assert report["events"][0]["links"] == [["c", "d"]]


# -- budget ------------------------------------------------------------------


def test_shrink_budget_bounds_the_search():
    events = [{"id": i} for i in range(20)]
    report = shrink_schedule(events, lambda evs: bool(evs), budget=3)
    assert report["reproduced"]
    assert report["budget_exhausted"]
    assert report["tests_run"] <= 3


def test_shrink_rejects_non_reproducing_input():
    report = shrink_schedule(link_pair(1.0, 3.0), lambda evs: False)
    assert not report["reproduced"]
    assert report["events_after"] == report["events_before"]
