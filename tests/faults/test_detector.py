"""Tests for the phi-accrual failure detector."""

import pytest

from repro.faults.detector import PhiAccrualDetector, _phi
from repro.groups import MonitoredMembership, ProcessGroup
from repro.net import Network, lan
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim import Environment


@pytest.fixture(autouse=True)
def _scoped_metrics():
    with use_metrics(MetricsRegistry()):
        yield


def regular(detector, member="m", interval=1.0, beats=20):
    for i in range(beats):
        detector.observe(member, i * interval)
    return beats * interval


def test_phi_grows_with_silence():
    assert _phi(1.0, mean=1.0, std=0.1) < _phi(1.5, mean=1.0, std=0.1) \
        < _phi(2.0, mean=1.0, std=0.1)


def test_phi_at_mean_is_moderate():
    # Half the arrivals are later than the mean: phi ~ -log10(0.5).
    assert _phi(1.0, mean=1.0, std=0.1) == pytest.approx(0.301, abs=0.01)


def test_regular_heartbeats_not_suspected():
    detector = PhiAccrualDetector(threshold=8.0)
    detector.watch("m", 0.0)
    end = regular_end(1.0)  # last arrival
    regular(detector, interval=1.0)
    # Barely late: phi far below threshold.
    assert not detector.suspect("m", 1.1, end + 1.1)
    # Very late: suspicion.
    assert detector.suspect("m", 6.0, end + 6.0)


def test_adapts_to_observed_cadence():
    # A detector trained on slow heartbeats tolerates silences that
    # would damn a member on a fast cadence.
    fast = PhiAccrualDetector(threshold=8.0)
    slow = PhiAccrualDetector(threshold=8.0)
    fast.watch("m", 0.0)
    slow.watch("m", 0.0)
    regular(fast, interval=0.5)
    regular(slow, interval=2.0)
    silent = 3.0
    assert fast.phi("m", regular_end(0.5) + silent) \
        > slow.phi("m", regular_end(2.0) + silent)
    assert fast.suspect("m", silent, regular_end(0.5) + silent)
    assert not slow.suspect("m", silent, regular_end(2.0) + silent)


def regular_end(interval, beats=20):
    return (beats - 1) * interval


def test_jittery_cadence_is_more_tolerant():
    steady = PhiAccrualDetector(threshold=8.0)
    jittery = PhiAccrualDetector(threshold=8.0)
    steady.watch("m", 0.0)
    jittery.watch("m", 0.0)
    now = 0.0
    for i in range(20):
        steady.observe("m", float(i))
        now = i + (0.4 if i % 2 else 0.0)
        jittery.observe("m", now)
    # Same elapsed silence: the noisier history yields lower phi.
    assert jittery.phi("m", now + 3.0) < steady.phi("m", 19.0 + 3.0)


def test_bootstrap_cold_start():
    # Before min_samples intervals arrive, the detector falls back to
    # the bootstrap interval instead of trusting a degenerate fit.
    detector = PhiAccrualDetector(threshold=8.0, min_samples=3,
                                  bootstrap_interval=1.0)
    detector.watch("m", 0.0)
    assert detector.intervals_observed("m") == 0
    assert not detector.suspect("m", 1.0, 1.0)
    assert detector.suspect("m", 10.0, 10.0)


def test_forget_clears_history():
    detector = PhiAccrualDetector()
    detector.watch("m", 0.0)
    regular(detector)
    detector.forget("m")
    detector.watch("m", 100.0)
    assert detector.intervals_observed("m") == 0


def test_window_bounds_history():
    detector = PhiAccrualDetector(window=8)
    detector.watch("m", 0.0)
    regular(detector, beats=50)
    assert detector.intervals_observed("m") == 8


def test_suspicion_counts_in_metrics():
    with use_metrics(MetricsRegistry()) as metrics:
        detector = PhiAccrualDetector(threshold=8.0)
        detector.watch("m", 0.0)
        regular(detector)
        assert detector.suspect("m", 30.0, 49.0)
        assert metrics.counter_total("detector.suspicions") == 1


def test_validation():
    with pytest.raises(Exception):
        PhiAccrualDetector(threshold=0.0)
    with pytest.raises(Exception):
        PhiAccrualDetector(window=0)
    with pytest.raises(Exception):
        PhiAccrualDetector(bootstrap_interval=0.0)


def test_drives_view_change_as_membership_strategy():
    env = Environment()
    topo = lan(env, hosts=4)
    net = Network(env, topo)
    group = ProcessGroup(net, "g", ordering="fifo")
    for i in range(4):
        group.join("host{}".format(i))
    detector = PhiAccrualDetector(threshold=8.0, min_samples=3,
                                  bootstrap_interval=0.5)
    membership = MonitoredMembership(group, interval=0.5,
                                     strategy=detector)

    def crash_later(env):
        yield env.timeout(5.0)
        membership.crash("host2")

    env.process(crash_later(env))
    env.run(until=20.0)
    assert "host2" not in group.view
    assert len(group.view) == 3
