"""Tests for fault schedules and their injector."""

import pytest

from repro.errors import SimulationError
from repro.faults.schedule import FaultInjector, FaultSchedule
from repro.net import Network, Topology
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.tracer import Tracer, use_tracer
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


@pytest.fixture(autouse=True)
def _scoped_metrics():
    # Each test gets a private registry: the injector's links_down gauge
    # is timestamped in sim time, which restarts at 0 per Environment.
    with use_metrics(MetricsRegistry()):
        yield


def triangle(env, seed=5):
    streams = RandomStreams(seed)
    topo = Topology(env)
    topo.add_link("a", "b", latency=0.01, rng=streams.stream("ab"))
    topo.add_link("b", "c", latency=0.01, rng=streams.stream("bc"))
    topo.add_link("a", "c", latency=0.01, rng=streams.stream("ac"))
    return Network(env, topo)


# -- schedule building -------------------------------------------------------


def test_flap_expands_to_explicit_pairs():
    schedule = FaultSchedule()
    schedule.link_flap(10.0, "a", "b", count=2, period=4.0)
    assert [(e["at"], e["kind"]) for e in schedule.to_dict()["events"]] \
        == [(10.0, "link-down"), (12.0, "link-up"),
            (14.0, "link-down"), (16.0, "link-up")]


def test_timed_impairments_expand_to_pairs():
    schedule = FaultSchedule()
    schedule.latency_storm(5.0, scale=3.0, duration=2.0)
    schedule.loss_burst(6.0, extra_loss=0.5, duration=1.0,
                        links=[("b", "a")])
    kinds = [(e["at"], e["kind"]) for e in schedule.to_dict()["events"]]
    assert kinds == [(5.0, "latency-storm"), (6.0, "loss-burst"),
                     (7.0, "latency-calm"), (7.0, "loss-calm")]
    # Link pairs are canonicalised (sorted) at build time.
    burst = schedule.to_dict()["events"][1]
    assert burst["links"] == [["a", "b"]]


def test_same_time_events_keep_declaration_order():
    schedule = FaultSchedule()
    schedule.link_down(1.0, "a", "b")
    schedule.link_down(1.0, "b", "c")
    ordered = schedule.ordered()
    assert [(e.params["a"], e.params["b"]) for e in ordered] \
        == [("a", "b"), ("b", "c")]


def test_schedule_validation():
    schedule = FaultSchedule()
    with pytest.raises(SimulationError):
        schedule.link_down(2.0, "a", "b", up_at=1.0)
    with pytest.raises(SimulationError):
        schedule.partition(1.0, [["a"]])
    with pytest.raises(SimulationError):
        schedule.link_flap(1.0, "a", "b", count=0, period=1.0)
    with pytest.raises(SimulationError):
        schedule.latency_storm(1.0, scale=0.0, duration=1.0)
    with pytest.raises(SimulationError):
        schedule.loss_burst(1.0, extra_loss=1.5, duration=1.0)
    with pytest.raises(SimulationError):
        schedule._add(-1.0, "link-down")
    with pytest.raises(SimulationError):
        schedule._add(1.0, "meteor-strike")


# -- injection ---------------------------------------------------------------


def test_link_down_drops_traffic_until_up(env):
    net = triangle(env)
    delivered = []
    net.host("b").on_packet(9, lambda p: delivered.append(env.now))

    def sender(env):
        for _ in range(6):
            net.host("a").send("b", size=10, port=9)
            yield env.timeout(1.0)

    env.process(sender(env))
    schedule = FaultSchedule()
    # Cut both a's routes to b so no detour exists.
    schedule.link_down(1.5, "a", "b", up_at=3.5)
    schedule.link_down(1.5, "a", "c", up_at=3.5)
    injector = FaultInjector(env, net, schedule)
    env.run(until=8.0)
    # Sends at t=2 and t=3 fall inside the outage.
    assert len(delivered) == 4
    assert net.drop_stats().get("no-route", 0) == 2
    assert injector.links_down == 0


def test_overlapping_faults_refcount(env):
    net = triangle(env)
    link = net.topology.link_between("a", "b")
    schedule = FaultSchedule()
    schedule.partition(1.0, [["a", "c"], ["b"]], name="p", heal_at=3.0)
    schedule.node_crash(2.0, "b", restart_at=4.0)
    FaultInjector(env, net, schedule)
    env.run(until=1.5)
    assert not link.up
    env.run(until=3.5)
    # The heal lifted the partition, but b is still crashed: the a-b
    # link must stay down until the crash lifts too.
    assert not link.up
    env.run(until=4.5)
    assert link.up
    assert net.topology.link_between("b", "c").up


def test_partition_cuts_only_crossing_links(env):
    net = triangle(env)
    schedule = FaultSchedule()
    schedule.partition(1.0, [["a", "b"], ["c"]], name="p")
    injector = FaultInjector(env, net, schedule)
    env.run(until=2.0)
    assert net.topology.link_between("a", "b").up
    assert not net.topology.link_between("a", "c").up
    assert not net.topology.link_between("b", "c").up
    assert injector.links_down == 2


def test_partition_rejects_overlapping_groups(env):
    net = triangle(env)
    schedule = FaultSchedule()
    schedule.partition(1.0, [["a", "b"], ["b", "c"]], name="p")
    FaultInjector(env, net, schedule)
    with pytest.raises(SimulationError):
        env.run(until=2.0)


def test_impairments_apply_and_lift(env):
    net = triangle(env)
    link = net.topology.link_between("a", "b")
    schedule = FaultSchedule()
    schedule.latency_storm(1.0, scale=4.0, duration=2.0,
                           links=[("a", "b")])
    schedule.loss_burst(1.5, extra_loss=0.3, duration=1.0,
                        links=[("a", "b")])
    FaultInjector(env, net, schedule)
    env.run(until=1.2)
    assert link.impaired
    env.run(until=1.7)
    assert link.impaired
    env.run(until=4.0)
    assert not link.impaired


def test_loss_burst_actually_drops(env):
    net = triangle(env)

    def sender(env):
        for _ in range(200):
            net.host("a").send("b", size=10, port=9)
            yield env.timeout(0.05)

    env.process(sender(env))
    schedule = FaultSchedule()
    schedule.loss_burst(2.0, extra_loss=0.9, duration=5.0,
                        links=[("a", "b")])
    FaultInjector(env, net, schedule)
    env.run(until=12.0)
    # Drops caused by injected extra loss are attributed to the
    # impairment, not the link's intrinsic loss rate (which is zero
    # on a pristine triangle).
    assert net.drop_stats().get("impairment", 0) > 50
    assert net.drop_stats().get("loss", 0) == 0


def test_injector_log_spans_and_metrics(env):
    net = triangle(env)
    schedule = FaultSchedule()
    schedule.link_down(1.0, "a", "b", up_at=2.0)
    seen = []
    with use_tracer(Tracer()) as tracer, \
            use_metrics(MetricsRegistry()) as metrics:
        injector = FaultInjector(env, net, schedule)
        injector.add_listener(lambda event: seen.append(event.kind))
        env.run(until=3.0)
    assert [entry["kind"] for entry in injector.log] \
        == ["link-down", "link-up"]
    assert [entry["at"] for entry in injector.log] == [1.0, 2.0]
    assert seen == ["link-down", "link-up"]
    assert sorted(s.name for s in tracer.spans
                  if s.name.startswith("fault.")) \
        == ["fault.link-down", "fault.link-up"]
    assert metrics.counter_total("fault.injected") == 2


def test_injection_is_deterministic():
    def run():
        env = Environment()
        net = triangle(env)
        count = [0]
        net.host("c").on_packet(9, lambda p: count.__setitem__(
            0, count[0] + 1))

        def sender(env):
            for _ in range(40):
                net.host("a").send("c", size=10, port=9)
                yield env.timeout(0.25)

        env.process(sender(env))
        schedule = FaultSchedule()
        schedule.link_flap(1.0, "a", "c", count=3, period=2.0)
        schedule.loss_burst(4.0, extra_loss=0.5, duration=3.0)
        with use_metrics(MetricsRegistry()):
            injector = FaultInjector(env, net, schedule)
            env.run(until=12.0)
        return injector.log, count[0], env.stats()

    assert run() == run()


def test_empty_schedule_is_inert(env):
    net = triangle(env)
    injector = FaultInjector(env, net, FaultSchedule())
    env.run(until=2.0)
    assert injector.log == []
    assert injector.links_down == 0


# -- serialisation round-trip (from_dict) ------------------------------------


def test_schedule_round_trips_through_dict():
    schedule = FaultSchedule()
    schedule.link_flap(1.0, "a", "b", count=2, period=2.0)
    schedule.partition(2.0, [["a"], ["b", "c"]], name="p", heal_at=6.0)
    schedule.node_crash(3.0, "c", restart_at=5.0)
    schedule.loss_burst(4.0, 0.3, 1.5, links=[("a", "c")])
    data = schedule.to_dict()
    rebuilt = FaultSchedule.from_dict(data)
    assert rebuilt.to_dict() == data
    # Round-trip again: canonical form is a fixed point.
    assert FaultSchedule.from_dict(rebuilt.to_dict()).to_dict() == data


def test_from_dict_errors_name_the_offending_event():
    good = {"at": 1.0, "kind": "link-down", "a": "a", "b": "b"}
    with pytest.raises(SimulationError) as err:
        FaultSchedule.from_dict({"events": [
            good, {"at": 2.0, "kind": "link-down", "a": "a"}]})
    message = err.value.args[0]
    assert "event 1" in message and "'b'" in message

    with pytest.raises(SimulationError) as err:
        FaultSchedule.from_dict({"events": [
            good, good, {"at": -1.0, "kind": "heal", "name": "p"}]})
    assert "event 2" in err.value.args[0]

    with pytest.raises(SimulationError) as err:
        FaultSchedule.from_dict({"events": [
            {"at": 0.5, "kind": "meteor-strike"}]})
    message = err.value.args[0]
    assert "event 0" in message and "meteor-strike" in message


def test_from_dict_validates_param_types():
    with pytest.raises(SimulationError) as err:
        FaultSchedule.from_dict({"events": [
            {"at": 1.0, "kind": "partition", "name": "p",
             "groups": [["a"]]}]})
    assert "two groups" in err.value.args[0]

    with pytest.raises(SimulationError) as err:
        FaultSchedule.from_dict({"events": [
            {"at": 1.0, "kind": "loss-burst", "extra_loss": 1.5,
             "links": None}]})
    assert "(0, 1)" in err.value.args[0]

    with pytest.raises(SimulationError) as err:
        FaultSchedule.from_dict({"events": [
            {"at": 1.0, "kind": "latency-storm", "scale": 2.0,
             "links": [["a", "b", "c"]]}]})
    assert "[a, b] pair" in err.value.args[0]


def test_from_dict_rejects_non_schedule_shapes():
    with pytest.raises(SimulationError):
        FaultSchedule.from_dict({"not-events": []})
    with pytest.raises(SimulationError):
        FaultSchedule.from_dict({"events": "nope"})
    with pytest.raises(SimulationError):
        FaultSchedule.from_dict({"events": ["not-a-dict"]})


# -- balance and lift introspection ------------------------------------------


def test_balanced_requires_matching_lifts():
    schedule = FaultSchedule()
    schedule.link_down(1.0, "a", "b", up_at=3.0)
    schedule.node_crash(2.0, "c", restart_at=4.0)
    assert schedule.balanced()
    assert schedule.last_lift_at() == 4.0

    unbalanced = FaultSchedule()
    unbalanced.link_down(1.0, "a", "b")
    assert not unbalanced.balanced()

    # A lift for a *different* target does not balance the onset.
    mismatched = FaultSchedule()
    mismatched.link_down(1.0, "a", "b")
    mismatched.link_up(2.0, "a", "c")
    assert not mismatched.balanced()


def test_empty_schedule_is_balanced():
    schedule = FaultSchedule()
    assert schedule.balanced()
    assert schedule.last_lift_at() == 0.0


# -- the ambient schedule override -------------------------------------------


def test_schedule_override_swaps_injected_schedule(env):
    from repro.faults.schedule import use_schedule_override

    net = triangle(env)
    original = FaultSchedule()
    original.link_down(1.0, "a", "b", up_at=2.0)
    swapped = FaultSchedule()
    swapped.link_down(1.0, "b", "c", up_at=2.0)
    seen = {}

    def factory(network, schedule):
        seen["network"] = network
        seen["schedule"] = schedule
        return swapped

    with use_schedule_override(factory):
        injector = FaultInjector(env, net, original)
    assert injector.schedule is swapped
    assert seen["network"] is net
    assert seen["schedule"] is original

    # Outside the scope the override is gone.
    later = FaultInjector(env, net, original)
    assert later.schedule is original
