"""Tests for the Shen & Dewan model and access negotiation."""

import pytest

from repro.access import (
    AccessNegotiator,
    DENIED,
    EXPIRED,
    GRANTED,
    Hierarchy,
    Role,
    RoleBasedPolicy,
    ShenDewanPolicy,
)
from repro.errors import AccessDenied, AccessPolicyError
from repro.sim import Environment


def make_hierarchies():
    subjects = Hierarchy("everyone")
    subjects.add("authors", "everyone")
    subjects.add("alice", "authors")
    subjects.add("bob", "everyone")
    objects = Hierarchy("doc")
    objects.add("sec:1", "doc")
    objects.add("par:1.1", "sec:1")
    objects.add("sec:2", "doc")
    return subjects, objects


def test_hierarchy_basics():
    subjects, _ = make_hierarchies()
    assert subjects.chain("alice") == ["alice", "authors", "everyone"]
    assert subjects.depth("alice") == 2
    assert "alice" in subjects
    with pytest.raises(AccessPolicyError):
        subjects.add("alice", "everyone")
    with pytest.raises(AccessPolicyError):
        subjects.add("x", "ghost")
    with pytest.raises(AccessPolicyError):
        subjects.chain("ghost")


def test_hierarchy_move_and_cycles():
    subjects, _ = make_hierarchies()
    subjects.move("bob", "authors")
    assert subjects.chain("bob") == ["bob", "authors", "everyone"]
    with pytest.raises(AccessPolicyError):
        subjects.move("everyone", "alice")
    with pytest.raises(AccessPolicyError):
        subjects.move("authors", "alice")  # would create a cycle


def test_rights_inherit_down_both_hierarchies():
    subjects, objects = make_hierarchies()
    policy = ShenDewanPolicy(subjects, objects)
    policy.grant("authors", "doc", "read")
    # alice inherits through 'authors'; par:1.1 inherits through 'doc'.
    assert policy.check("alice", "par:1.1", "read")
    # bob is not an author.
    assert not policy.check("bob", "par:1.1", "read")


def test_specific_deny_overrides_general_grant():
    subjects, objects = make_hierarchies()
    policy = ShenDewanPolicy(subjects, objects)
    policy.grant("everyone", "doc", "read")
    policy.deny("alice", "sec:2", "read")
    assert policy.check("alice", "sec:1", "read")
    assert not policy.check("alice", "sec:2", "read")
    assert policy.check("bob", "sec:2", "read")


def test_specific_grant_overrides_general_deny():
    subjects, objects = make_hierarchies()
    policy = ShenDewanPolicy(subjects, objects)
    policy.deny("everyone", "doc", "write")
    policy.grant("alice", "par:1.1", "write")
    assert policy.check("alice", "par:1.1", "write")
    assert not policy.check("alice", "sec:1", "write")


def test_equal_specificity_deny_wins():
    subjects, objects = make_hierarchies()
    policy = ShenDewanPolicy(subjects, objects)
    # Same specificity: (authors, sec:1) grant vs (alice, doc) deny —
    # depths 1+1 = 2 and 2+0 = 2.
    policy.grant("authors", "sec:1", "read")
    policy.deny("alice", "doc", "read")
    assert not policy.check("alice", "sec:1", "read")


def test_clear_restores_inheritance():
    subjects, objects = make_hierarchies()
    policy = ShenDewanPolicy(subjects, objects)
    policy.grant("everyone", "doc", "read")
    policy.deny("alice", "doc", "read")
    assert not policy.check("alice", "sec:1", "read")
    policy.clear("alice", "doc", "read")
    assert policy.check("alice", "sec:1", "read")


def test_unknown_nodes_rejected():
    subjects, objects = make_hierarchies()
    policy = ShenDewanPolicy(subjects, objects)
    with pytest.raises(AccessPolicyError):
        policy.grant("ghost", "doc", "read")
    with pytest.raises(AccessPolicyError):
        policy.grant("alice", "ghost", "read")


def test_require_and_counters():
    subjects, objects = make_hierarchies()
    policy = ShenDewanPolicy(subjects, objects)
    with pytest.raises(AccessDenied):
        policy.require("alice", "doc", "read")
    assert policy.counters["checks"] == 1
    assert policy.counters["entries_examined"] > 0
    assert policy.entry_count == 0


# -- negotiation ---------------------------------------------------------------

@pytest.fixture
def env():
    return Environment()


def make_negotiator(env):
    policy = RoleBasedPolicy()
    return AccessNegotiator(env, policy), policy


def test_negotiation_granted_installs_right(env):
    negotiator, policy = make_negotiator(env)

    def controller_behaviour(req):
        negotiator.respond(req.request_id, "owner", True)

    negotiator.on_request("owner", controller_behaviour)

    def root(env):
        outcome = yield negotiator.request(
            "alice", "doc/sec:1", "write", ["owner"])
        return outcome

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == GRANTED
    assert policy.check("alice", "doc/sec:1", "write")


def test_negotiation_refusal_denies(env):
    negotiator, policy = make_negotiator(env)
    negotiator.on_request(
        "owner", lambda req: negotiator.respond(req.request_id, "owner",
                                                False))

    def root(env):
        outcome = yield negotiator.request(
            "alice", "doc", "write", ["owner"])
        return outcome

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == DENIED
    assert not policy.check("alice", "doc", "write")


def test_negotiation_any_refusal_wins(env):
    negotiator, policy = make_negotiator(env)
    votes = {"owner1": True, "owner2": False}
    for owner in votes:
        negotiator.on_request(
            owner, lambda req, o=owner: negotiator.respond(
                req.request_id, o, votes[o]))

    def root(env):
        outcome = yield negotiator.request(
            "alice", "doc", "write", ["owner1", "owner2"])
        return outcome

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == DENIED


def test_negotiation_expires_without_votes(env):
    negotiator, policy = make_negotiator(env)

    def root(env):
        outcome = yield negotiator.request(
            "alice", "doc", "write", ["silent-owner"], deadline=5.0)
        return (env.now, outcome)

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == (5.0, EXPIRED)


def test_negotiation_requires_controllers(env):
    negotiator, _ = make_negotiator(env)
    with pytest.raises(AccessPolicyError):
        negotiator.request("alice", "doc", "write", [])


def test_negotiation_foreign_vote_rejected(env):
    negotiator, _ = make_negotiator(env)
    captured = []
    negotiator.on_request("owner", captured.append)
    negotiator.request("alice", "doc", "write", ["owner"]).defuse()
    request_id = captured[0].request_id
    with pytest.raises(AccessPolicyError):
        negotiator.respond(request_id, "impostor", True)


def test_negotiation_late_vote_dropped(env):
    negotiator, _ = make_negotiator(env)
    captured = []
    negotiator.on_request("owner", captured.append)

    def root(env):
        outcome = yield negotiator.request(
            "alice", "doc", "write", ["owner"], deadline=1.0)
        return outcome

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == EXPIRED
    # A vote after expiry must not blow up or change anything.
    negotiator.respond(captured[0].request_id, "owner", True)
    assert negotiator.counters[EXPIRED] == 1
