"""Tests for dynamic role-based access control."""

import pytest

from repro.access import ANNOTATE, READ, Role, RoleBasedPolicy, WRITE, \
    pattern_matches
from repro.errors import AccessDenied, AccessPolicyError


def test_pattern_exact_match():
    assert pattern_matches("doc/sec:1", "doc/sec:1")
    assert not pattern_matches("doc/sec:1", "doc/sec:2")
    assert not pattern_matches("doc/sec:1", "doc/sec:1/line:5")
    assert not pattern_matches("doc/sec:1/line:5", "doc/sec:1")


def test_pattern_wildcard():
    assert pattern_matches("*", "anything/at/all")
    assert pattern_matches("doc/*", "doc/sec:1")
    assert pattern_matches("doc/*", "doc/sec:1/line:5")
    assert not pattern_matches("doc/*", "memo/sec:1")


def test_role_allow_and_permits():
    role = Role("author").allow("doc/*", READ, WRITE)
    assert role.permits("doc/sec:1", WRITE)
    assert not role.permits("memo", READ)
    with pytest.raises(AccessPolicyError):
        Role("bad").allow("doc")


def test_role_rules_visible():
    role = Role("author").allow("doc/*", READ)
    assert role.rules() == [("doc/*", {READ})]


def test_policy_define_and_duplicate():
    policy = RoleBasedPolicy()
    policy.define(Role("author"))
    with pytest.raises(AccessPolicyError):
        policy.define(Role("author"))
    with pytest.raises(AccessPolicyError):
        policy.role("ghost")


def test_assign_and_check():
    policy = RoleBasedPolicy()
    policy.define(Role("author").allow("doc/*", READ, WRITE))
    policy.assign("alice", "author")
    assert policy.check("alice", "doc/sec:2", WRITE)
    assert not policy.check("bob", "doc/sec:2", WRITE)


def test_assign_unknown_role():
    policy = RoleBasedPolicy()
    with pytest.raises(AccessPolicyError):
        policy.assign("alice", "ghost")


def test_dynamic_role_change_is_immediate():
    """The E5 shape: role changes take effect with zero latency."""
    policy = RoleBasedPolicy()
    policy.define(Role("reviewer").allow("doc/*", READ, ANNOTATE))
    policy.define(Role("author").allow("doc/*", READ, WRITE))
    policy.assign("alice", "reviewer", at=0.0)
    assert not policy.check("alice", "doc/sec:1", WRITE)
    policy.assign("alice", "author", at=5.0)
    assert policy.check("alice", "doc/sec:1", WRITE)
    policy.revoke("alice", "author", at=6.0)
    assert not policy.check("alice", "doc/sec:1", WRITE)
    assert policy.counters["role_changes"] == 3


def test_revoke_unheld_role():
    policy = RoleBasedPolicy()
    policy.define(Role("author"))
    with pytest.raises(AccessPolicyError):
        policy.revoke("alice", "author")


def test_fine_grained_line_rights():
    """Constraining access to individual lines of a shared document."""
    policy = RoleBasedPolicy()
    policy.define(Role("line-editor").allow("doc/sec:1/line:45", WRITE))
    policy.assign("alice", "line-editor")
    assert policy.check("alice", "doc/sec:1/line:45", WRITE)
    assert not policy.check("alice", "doc/sec:1/line:46", WRITE)


def test_require_raises_with_roles_listed():
    policy = RoleBasedPolicy()
    policy.define(Role("reader").allow("doc", READ))
    policy.assign("alice", "reader")
    with pytest.raises(AccessDenied, match="reader"):
        policy.require("alice", "doc", WRITE)


def test_roles_of_snapshot():
    policy = RoleBasedPolicy()
    policy.define(Role("a"))
    policy.assign("alice", "a")
    snapshot = policy.roles_of("alice")
    snapshot.add("tampered")
    assert policy.roles_of("alice") == {"a"}


def test_describe_lists_policy():
    policy = RoleBasedPolicy()
    policy.define(Role("author").allow("doc/*", READ, WRITE))
    policy.assign("alice", "author")
    text = policy.describe()
    assert "role author:" in text
    assert "doc/* -> read, write" in text
    assert "user alice: author" in text


def test_change_log_audit_trail():
    policy = RoleBasedPolicy()
    policy.define(Role("author"))
    policy.assign("alice", "author", at=1.0)
    policy.revoke("alice", "author", at=2.0)
    assert policy.change_log == [(1.0, "alice", "author", True),
                                 (2.0, "alice", "author", False)]
