"""Tests for the access-matrix baseline, ACLs and capabilities."""

import pytest

from repro.access import AccessMatrix, Capability, READ, WRITE
from repro.errors import AccessDenied, AccessPolicyError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_empty_matrix_denies(env):
    matrix = AccessMatrix(env, administrator="admin")
    assert not matrix.check("alice", "doc", READ)
    with pytest.raises(AccessDenied):
        matrix.require("alice", "doc", READ)


def test_admin_change_applies(env):
    matrix = AccessMatrix(env, administrator="admin")

    def root(env):
        yield matrix.request_change("admin", "alice", "doc", READ)
        return matrix.check("alice", "doc", READ)

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value


def test_non_admin_change_rejected(env):
    matrix = AccessMatrix(env, administrator="admin")
    with pytest.raises(AccessDenied):
        matrix.request_change("alice", "alice", "doc", READ)


def test_unknown_right_rejected(env):
    matrix = AccessMatrix(env, administrator="admin")
    with pytest.raises(AccessPolicyError):
        matrix.request_change("admin", "alice", "doc", "fly")


def test_negative_admin_delay_rejected(env):
    with pytest.raises(AccessPolicyError):
        AccessMatrix(env, administrator="admin", admin_delay=-1)


def test_admin_delay_defers_effect(env):
    """The paper's criticism: static administration is slow to react."""
    matrix = AccessMatrix(env, administrator="admin", admin_delay=60.0)
    effective = []

    def root(env):
        at = yield matrix.request_change("admin", "alice", "doc", WRITE)
        effective.append(at)

    env.process(root(env))
    env.run(until=30.0)
    assert not matrix.check("alice", "doc", WRITE)  # still pending
    env.run(until=61.0)
    assert matrix.check("alice", "doc", WRITE)
    assert effective == [60.0]


def test_revocation(env):
    matrix = AccessMatrix(env, administrator="admin")

    def root(env):
        yield matrix.request_change("admin", "alice", "doc", READ)
        yield matrix.request_change("admin", "alice", "doc", READ,
                                    add=False)
        return matrix.check("alice", "doc", READ)

    proc = env.process(root(env))
    env.run(proc)
    assert not proc.value


def test_change_log_records_history(env):
    matrix = AccessMatrix(env, administrator="admin", admin_delay=1.0)

    def root(env):
        yield matrix.request_change("admin", "alice", "doc", READ)

    proc = env.process(root(env))
    env.run(proc)
    assert matrix.change_log == [(1.0, "alice", "doc", "read", True)]


def test_acl_view(env):
    matrix = AccessMatrix(env, administrator="admin")

    def root(env):
        yield matrix.request_change("admin", "alice", "doc", READ)
        yield matrix.request_change("admin", "alice", "doc", WRITE)
        yield matrix.request_change("admin", "bob", "doc", READ)
        yield matrix.request_change("admin", "alice", "other", READ)

    proc = env.process(root(env))
    env.run(proc)
    acl = matrix.acl_of("doc")
    assert acl == {"alice": {READ, WRITE}, "bob": {READ}}


def test_capability_view(env):
    matrix = AccessMatrix(env, administrator="admin")

    def root(env):
        yield matrix.request_change("admin", "alice", "doc", READ)
        yield matrix.request_change("admin", "alice", "memo", WRITE)

    proc = env.process(root(env))
    env.run(proc)
    caps = matrix.capabilities_of("alice")
    assert len(caps) == 2
    assert any(cap.permits("doc", READ) for cap in caps)
    assert any(cap.permits("memo", WRITE) for cap in caps)
    assert not any(cap.permits("doc", WRITE) for cap in caps)


def test_capability_tokens_unique():
    a = Capability("alice", "doc", READ)
    b = Capability("alice", "doc", READ)
    assert a.token != b.token


def test_check_counter(env):
    matrix = AccessMatrix(env, administrator="admin")
    matrix.check("alice", "doc", READ)
    matrix.check("alice", "doc", READ)
    assert matrix.counters["checks"] == 2
