"""Tests for the aura/focus/nimbus spatial model."""

import pytest
from hypothesis import given, strategies as st

from repro.awareness import Entity, FULL, NONE, PERIPHERAL, SharedSpace
from repro.errors import ReproError


def make_space():
    space = SharedSpace()
    return space


def test_entity_validation():
    with pytest.raises(ReproError):
        Entity("x", aura=-1)
    with pytest.raises(ReproError):
        Entity("x", focus=-1)
    with pytest.raises(ReproError):
        Entity("x", nimbus=-1)


def test_entity_movement():
    entity = Entity("a", 0, 0)
    entity.move_to(3, 4)
    assert entity.position == (3, 4)
    entity.move_by(-3, -4)
    assert entity.position == (0, 0)


def test_distance():
    a = Entity("a", 0, 0)
    b = Entity("b", 3, 4)
    assert a.distance_to(b) == 5.0


def test_space_membership():
    space = make_space()
    space.add(Entity("a"))
    assert "a" in space
    assert len(space) == 1
    with pytest.raises(ReproError):
        space.add(Entity("a"))
    space.remove("a")
    assert "a" not in space
    with pytest.raises(ReproError):
        space.remove("a")
    with pytest.raises(ReproError):
        space.entity("ghost")


def test_full_awareness_when_mutually_in_range():
    space = make_space()
    a = space.add(Entity("a", 0, 0, aura=10, focus=5, nimbus=5))
    b = space.add(Entity("b", 3, 0, aura=10, focus=5, nimbus=5))
    assert space.awareness_level(a, b) == FULL
    assert space.awareness_level(b, a) == FULL


def test_peripheral_awareness_asymmetric():
    space = make_space()
    # a has a wide focus; b's nimbus is tiny, so a sees b only through
    # a's own focus (peripheral); b has a narrow focus and doesn't see a
    # in focus, but a's nimbus covers b => also peripheral.
    a = space.add(Entity("a", 0, 0, aura=50, focus=10, nimbus=10))
    b = space.add(Entity("b", 8, 0, aura=50, focus=2, nimbus=2))
    assert space.awareness_level(a, b) == PERIPHERAL
    assert space.awareness_level(b, a) == PERIPHERAL


def test_no_awareness_beyond_aura():
    space = make_space()
    a = space.add(Entity("a", 0, 0, aura=1, focus=100, nimbus=100))
    b = space.add(Entity("b", 50, 0, aura=1, focus=100, nimbus=100))
    assert space.awareness_level(a, b) == NONE


def test_self_awareness_is_none():
    space = make_space()
    a = space.add(Entity("a"))
    assert space.awareness_level(a, a) == NONE


def test_weight_full_greater_than_peripheral():
    space = make_space()
    a = space.add(Entity("a", 0, 0, aura=100, focus=10, nimbus=10))
    b = space.add(Entity("b", 5, 0, aura=100, focus=10, nimbus=10))
    c = space.add(Entity("c", 5, 5, aura=100, focus=10, nimbus=0.1))
    full_weight = space.awareness_weight(a, b)
    peripheral_weight = space.awareness_weight(a, c)
    assert full_weight > peripheral_weight > 0


def test_weight_zero_when_none():
    space = make_space()
    a = space.add(Entity("a", 0, 0, aura=1))
    b = space.add(Entity("b", 99, 0, aura=1))
    assert space.awareness_weight(a, b) == 0.0


def test_weight_decreases_with_distance():
    space = make_space()
    a = space.add(Entity("a", 0, 0, aura=100, focus=20, nimbus=20))
    near = space.add(Entity("near", 2, 0, aura=100, focus=20, nimbus=20))
    far = space.add(Entity("far", 15, 0, aura=100, focus=20, nimbus=20))
    assert space.awareness_weight(a, near) > space.awareness_weight(a, far)


def test_observers_of_scopes_audience():
    space = make_space()
    space.add(Entity("speaker", 0, 0, aura=100, focus=10, nimbus=10))
    space.add(Entity("close", 3, 0, aura=100, focus=10, nimbus=10))
    space.add(Entity("distant", 60, 0, aura=100, focus=10, nimbus=10))
    observers = space.observers_of("speaker")
    assert observers == ["close"]


def test_observers_of_full_only():
    space = make_space()
    space.add(Entity("speaker", 0, 0, aura=100, focus=10, nimbus=10))
    # peripheral observer: speaker in its focus, but it is outside the
    # speaker's nimbus.
    space.add(Entity("periph", 15, 0, aura=100, focus=20, nimbus=20))
    assert space.observers_of("speaker") == ["periph"]
    assert space.observers_of("speaker", minimum=FULL) == []


def test_awareness_matrix_covers_all_pairs():
    space = make_space()
    for name in ("a", "b", "c"):
        space.add(Entity(name))
    matrix = space.awareness_matrix()
    assert len(matrix) == 6  # 3 * 2 ordered pairs


@given(st.floats(0, 100), st.floats(0, 100))
def test_awareness_never_exceeds_full_weight(x, y):
    space = SharedSpace()
    a = space.add(Entity("a", 0, 0, aura=200, focus=50, nimbus=50))
    b = space.add(Entity("b", x, y, aura=200, focus=50, nimbus=50))
    weight = space.awareness_weight(a, b)
    assert 0.0 <= weight <= 1.0
