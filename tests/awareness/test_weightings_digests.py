"""Tests for awareness weightings and Portholes-style digests."""

import pytest

from repro.awareness import (
    AwarenessBus,
    AwarenessEvent,
    AwarenessModel,
    DigestService,
    Entity,
    SharedSpace,
)
from repro.errors import ReproError
from repro.sim import Environment


def make_event(actor, at, artefact="doc"):
    return AwarenessEvent(actor, artefact, "edit", at)


def test_model_validation():
    with pytest.raises(ReproError):
        AwarenessModel(half_life=0)


def test_temporal_weight_halves_at_half_life():
    model = AwarenessModel(half_life=10.0)
    event = make_event("alice", at=0.0)
    assert model.temporal_weight(event, now=0.0) == 1.0
    assert abs(model.temporal_weight(event, now=10.0) - 0.5) < 1e-12
    assert abs(model.temporal_weight(event, now=20.0) - 0.25) < 1e-12


def test_impact_zero_for_own_events():
    model = AwarenessModel()
    event = make_event("alice", at=0.0)
    assert model.impact("alice", event, now=0.0) == 0.0
    assert model.impact("bob", event, now=0.0) > 0.0


def test_spatial_weight_defaults_to_one_without_space():
    model = AwarenessModel()
    event = make_event("alice", at=0.0)
    assert model.spatial_weight("bob", event) == 1.0


def test_spatial_weight_uses_shared_space():
    space = SharedSpace()
    space.add(Entity("alice", 0, 0, aura=100, focus=10, nimbus=10))
    space.add(Entity("bob", 2, 0, aura=100, focus=10, nimbus=10))
    space.add(Entity("carol", 90, 0, aura=5, focus=10, nimbus=10))
    model = AwarenessModel(space=space)
    event = make_event("alice", at=0.0)
    assert model.spatial_weight("bob", event) > 0
    assert model.spatial_weight("carol", event) == 0.0


def test_ranked_orders_by_impact():
    model = AwarenessModel(half_life=10.0)
    old = make_event("alice", at=0.0)
    recent = make_event("carol", at=50.0)
    model.record(old)
    model.record(recent)
    ranked = model.ranked("bob", now=50.0)
    assert [event.actor for _, event in ranked] == ["carol", "alice"]


def test_ranked_threshold_and_limit():
    model = AwarenessModel(half_life=1.0)
    model.record(make_event("alice", at=0.0))
    model.record(make_event("carol", at=100.0))
    ranked = model.ranked("bob", now=100.0, threshold=0.5)
    assert len(ranked) == 1
    model.record(make_event("dave", at=100.0))
    assert len(model.ranked("bob", now=100.0, limit=1)) == 1


def test_prune_discards_stale_events():
    model = AwarenessModel(half_life=1.0)
    model.record(make_event("alice", at=0.0))
    model.record(make_event("carol", at=99.0))
    removed = model.prune(now=100.0, minimum_weight=0.01)
    assert removed == 1
    assert model.event_count == 1


def test_digest_service_batches_events():
    env = Environment()
    bus = AwarenessBus(env)
    service = DigestService(env, bus, interval=10.0)
    digests = []
    service.subscribe("bob", digests.append)

    def activity(env):
        for i in range(5):
            yield env.timeout(1.0)
            bus.publish("alice", "doc", "edit")

    env.process(activity(env))
    env.run(until=10.5)
    assert len(digests) == 1
    assert digests[0].activity_count == 5
    assert digests[0].actors == ["alice"]
    assert digests[0].artefacts == ["doc"]


def test_digest_skips_empty_periods():
    env = Environment()
    bus = AwarenessBus(env)
    service = DigestService(env, bus, interval=5.0)
    digests = []
    service.subscribe("bob", digests.append)
    env.run(until=20.0)
    assert digests == []


def test_digest_excludes_own_actions():
    env = Environment()
    bus = AwarenessBus(env)
    service = DigestService(env, bus, interval=5.0)
    alice_digests = []
    bob_digests = []
    service.subscribe("alice", alice_digests.append)
    service.subscribe("bob", bob_digests.append)
    bus.publish("alice", "doc", "edit")
    env.run(until=6.0)
    assert alice_digests == []  # only her own activity this period
    assert len(bob_digests) == 1


def test_digest_interval_validation():
    env = Environment()
    bus = AwarenessBus(env)
    with pytest.raises(ReproError):
        DigestService(env, bus, interval=0)


def test_digest_unsubscribe():
    env = Environment()
    bus = AwarenessBus(env)
    service = DigestService(env, bus, interval=5.0)
    digests = []
    service.subscribe("bob", digests.append)
    service.unsubscribe("bob")
    bus.publish("alice", "doc", "edit")
    env.run(until=6.0)
    assert digests == []
