"""Tests for awareness events, the bus and workspace adaptation."""

import pytest

from repro.awareness import (
    ACTION_EDIT,
    AwarenessBus,
    WorkspaceAwareness,
    accept_all,
)
from repro.concurrency import SharedStore
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_publish_reaches_subscriber(env):
    bus = AwarenessBus(env)
    seen = []
    bus.subscribe("bob", seen.append)
    bus.publish("alice", "doc", ACTION_EDIT)
    assert len(seen) == 1
    assert seen[0].actor == "alice"
    assert seen[0].artefact == "doc"


def test_own_actions_filtered_by_default(env):
    bus = AwarenessBus(env)
    seen = []
    bus.subscribe("alice", seen.append)
    bus.publish("alice", "doc", ACTION_EDIT)
    assert seen == []


def test_accept_all_filter_includes_own(env):
    bus = AwarenessBus(env)
    seen = []
    bus.subscribe("alice", seen.append, event_filter=accept_all)
    bus.publish("alice", "doc", ACTION_EDIT)
    assert len(seen) == 1


def test_unsubscribe_stops_delivery(env):
    bus = AwarenessBus(env)
    seen = []
    bus.subscribe("bob", seen.append)
    bus.unsubscribe("bob")
    bus.publish("alice", "doc", ACTION_EDIT)
    assert seen == []


def test_latency_delays_delivery(env):
    bus = AwarenessBus(env, latency=0.5)
    seen = []
    bus.subscribe("bob", lambda event: seen.append(env.now))
    bus.publish("alice", "doc", ACTION_EDIT)
    assert seen == []  # not yet delivered
    env.run()
    assert seen == [0.5]


def test_negative_latency_rejected(env):
    with pytest.raises(ValueError):
        AwarenessBus(env, latency=-1)


def test_counters_and_log(env):
    bus = AwarenessBus(env)
    bus.subscribe("bob", lambda event: None)
    bus.subscribe("carol", lambda event: None)
    bus.publish("alice", "doc", ACTION_EDIT)
    assert bus.counters["published"] == 1
    assert bus.counters["delivered"] == 2
    assert len(bus.delivered_log) == 2


def test_event_ids_unique(env):
    bus = AwarenessBus(env)
    first = bus.publish("a", "x", "edit")
    second = bus.publish("a", "x", "edit")
    assert first.event_id != second.event_id


def test_workspace_awareness_publishes_writes(env):
    store = SharedStore()
    workspace = WorkspaceAwareness(env, store)
    seen = []
    workspace.watch("bob", seen.append)
    store.write("doc", "v1", writer="alice", at=env.now)
    assert len(seen) == 1
    assert seen[0].action == ACTION_EDIT
    assert seen[0].detail == {"version": 1}


def test_workspace_awareness_artefact_filter(env):
    store = SharedStore()
    workspace = WorkspaceAwareness(env, store)
    seen = []
    workspace.watch("bob", seen.append, artefact="doc-A")
    store.write("doc-A", "x", writer="alice")
    store.write("doc-B", "y", writer="alice")
    assert len(seen) == 1
    assert seen[0].artefact == "doc-A"


def test_workspace_awareness_notification_time(env):
    """F2's key metric: notification is continuous, not commit-time."""
    store = SharedStore()
    workspace = WorkspaceAwareness(env, store, latency=0.1)
    notified_at = []
    workspace.watch("bob", lambda event: notified_at.append(env.now))

    def writer(env):
        for i in range(3):
            yield env.timeout(1.0)
            store.write("doc", "v{}".format(i), writer="alice")

    env.process(writer(env))
    env.run()
    assert notified_at == [1.1, 2.1, 3.1]
