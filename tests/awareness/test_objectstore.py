"""Tests for the Mariani-style collaborative object store."""

import pytest

from repro.awareness import (
    CollaborativeObjectStore,
    Entity,
    SharedSpace,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_store(env, **kwargs):
    return CollaborativeObjectStore(env, half_life=60.0, **kwargs)


def test_write_and_read_through(env):
    cos = make_store(env)
    version = cos.write("alice", "design-doc", "v1")
    assert version == 1
    assert cos.read("bob", "design-doc") == "v1"


def test_browse_annotates_coworker_activity(env):
    cos = make_store(env)
    cos.write("alice", "design-doc", "v1")
    cos.write("carol", "budget", "numbers")
    activities = cos.browse("bob")
    by_key = {oa.key: oa for oa in activities}
    assert [actor for actor, _ in by_key["design-doc"].coworkers] == \
        ["alice"]
    assert [actor for actor, _ in by_key["budget"].coworkers] == \
        ["carol"]
    assert all(0 < weight <= 1
               for oa in activities for _, weight in oa.coworkers)


def test_browse_excludes_own_activity(env):
    cos = make_store(env)
    cos.write("bob", "notes", "mine")
    activities = cos.browse("bob")
    assert activities[0].coworkers == []
    assert activities[0].activity_weight == 0


def test_reads_are_visible_activity(env):
    cos = make_store(env)
    cos.write("alice", "doc", "v1")
    cos.read("carol", "doc")
    activities = cos.browse("bob")
    actors = [actor for actor, _ in activities[0].coworkers]
    assert set(actors) == {"alice", "carol"}


def test_activity_decays_over_time(env):
    cos = make_store(env)
    cos.write("alice", "doc", "v1")
    heat_now = cos.browse("bob")[0].activity_weight

    def wait(env):
        yield env.timeout(120.0)  # two half-lives

    proc = env.process(wait(env))
    env.run(proc)
    heat_later = cos.browse("bob")[0].activity_weight
    assert heat_later == pytest.approx(heat_now / 4, rel=0.01)


def test_browse_sorted_by_heat(env):
    cos = make_store(env)
    cos.write("alice", "hot", "x")
    cos.write("carol", "hot", "y")
    cos.write("dave", "cold", "z")
    activities = cos.browse("bob")
    assert activities[0].key == "hot"
    assert activities[0].activity_weight > activities[1].activity_weight


def test_hot_objects_limit(env):
    cos = make_store(env)
    for i in range(8):
        cos.write("alice", "obj-{}".format(i), i)
    hot = cos.hot_objects("bob", limit=3)
    assert len(hot) == 3
    assert all(oa.activity_weight > 0 for oa in hot)


def test_browse_specific_keys(env):
    cos = make_store(env)
    cos.write("alice", "a", 1)
    cos.write("alice", "b", 2)
    activities = cos.browse("bob", keys=["a", "ghost"])
    assert [oa.key for oa in activities] == ["a"]


def test_spatial_scoping(env):
    space = SharedSpace()
    space.add(Entity("bob", 0, 0, aura=100, focus=10, nimbus=10))
    space.add(Entity("near", 3, 0, aura=100, focus=10, nimbus=10))
    space.add(Entity("far", 90, 0, aura=5, focus=10, nimbus=10))
    cos = make_store(env, space=space)
    cos.write("near", "doc", "v1")
    cos.write("far", "doc", "v2")
    activities = cos.browse("bob")
    weights = dict(activities[0].coworkers)
    assert "near" in weights
    assert "far" not in weights  # outside bob's aura: weight 0
