"""Tests for heartbeat failure detection and group invocation."""

import pytest

from repro.errors import GroupError
from repro.groups import (
    GroupInvoker,
    HeartbeatMonitor,
    HeartbeatSender,
    QUORUM_ALL,
    QUORUM_ANY,
    QUORUM_MAJORITY,
)
from repro.net import Network, lan
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_net(env, hosts=4):
    topo = lan(env, hosts=hosts)
    return Network(env, topo)


def test_heartbeat_keeps_member_alive(env):
    net = make_net(env)
    monitor = HeartbeatMonitor(net.host("host0"), ["host1"],
                               suspect_after=2.0, check_interval=0.5)
    HeartbeatSender(net.host("host1"), "host0", interval=0.5)
    env.run(until=10.0)
    assert not monitor.is_suspected("host1")


def test_silent_member_suspected(env):
    net = make_net(env)
    suspects = []
    monitor = HeartbeatMonitor(net.host("host0"), ["host1"],
                               suspect_after=2.0, check_interval=0.5,
                               on_suspect=suspects.append)
    sender = HeartbeatSender(net.host("host1"), "host0", interval=0.5)

    def crash(env):
        yield env.timeout(3.0)
        sender.stop()

    env.process(crash(env))
    env.run(until=10.0)
    assert suspects == ["host1"]
    assert monitor.is_suspected("host1")


def test_reappearing_member_unsuspected(env):
    net = make_net(env)
    monitor = HeartbeatMonitor(net.host("host0"), ["host1"],
                               suspect_after=1.0, check_interval=0.25)
    # No sender at all initially: host1 will be suspected...
    env.run(until=2.0)
    assert monitor.is_suspected("host1")
    # ...then heartbeats resume.
    HeartbeatSender(net.host("host1"), "host0", interval=0.25)
    env.run(until=4.0)
    assert not monitor.is_suspected("host1")


def test_unwatch_clears_suspicion(env):
    net = make_net(env)
    monitor = HeartbeatMonitor(net.host("host0"), ["host1"],
                               suspect_after=1.0, check_interval=0.25)
    env.run(until=2.0)
    monitor.unwatch("host1")
    assert not monitor.is_suspected("host1")
    assert "host1" not in monitor.last_heard


def test_monitor_validation(env):
    net = make_net(env)
    with pytest.raises(GroupError):
        HeartbeatMonitor(net.host("host0"), [], suspect_after=0)
    with pytest.raises(GroupError):
        HeartbeatSender(net.host("host1"), "host0", interval=0)


def make_invoker(env, servers=3):
    net = make_net(env, hosts=servers + 1)
    invoker = GroupInvoker(net, "host0")
    members = []
    for i in range(1, servers + 1):
        name = "host{}".format(i)
        endpoint = invoker.serve(name)
        endpoint.register("start_camera",
                          lambda caller, args, n=name: (n, "started"))
        members.append(name)
    return invoker, members


def test_group_call_all_replies(env):
    invoker, members = make_invoker(env)

    def root(env):
        result = yield invoker.call(members, "start_camera",
                                    deadline=1.0)
        return result

    proc = env.process(root(env))
    env.run(proc)
    result = proc.value
    assert result.quorum_met
    assert result.replied == 3
    assert set(result.results) == set(members)
    assert result.worst_latency > 0


def test_group_call_any_quorum_returns_early(env):
    invoker, members = make_invoker(env)

    def root(env):
        result = yield invoker.call(members, "start_camera",
                                    deadline=1.0, quorum=QUORUM_ANY)
        return result

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value.quorum_met
    assert proc.value.replied >= 1


def test_group_call_majority_quorum(env):
    invoker, members = make_invoker(env, servers=5)

    def root(env):
        result = yield invoker.call(members, "start_camera",
                                    deadline=1.0, quorum=QUORUM_MAJORITY)
        return result

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value.quorum_met
    assert proc.value.replied >= 3


def test_group_call_deadline_miss(env):
    net = make_net(env, hosts=3)
    invoker = GroupInvoker(net, "host0")
    server = invoker.serve("host1")

    def slow(caller, args):
        yield env.timeout(5.0)
        return "late"

    server.register("slow_op", slow)

    def root(env):
        result = yield invoker.call(["host1"], "slow_op", deadline=0.5)
        return result

    proc = env.process(root(env))
    env.run(proc)
    result = proc.value
    assert not result.quorum_met
    assert result.errors == {"host1": "deadline"}


def test_group_call_member_error_collected(env):
    net = make_net(env, hosts=3)
    invoker = GroupInvoker(net, "host0")
    good = invoker.serve("host1")
    bad = invoker.serve("host2")
    good.register("op", lambda caller, args: "ok")

    def failing(caller, args):
        raise RuntimeError("camera jammed")

    bad.register("op", failing)

    def root(env):
        result = yield invoker.call(["host1", "host2"], "op",
                                    deadline=1.0)
        return result

    proc = env.process(root(env))
    env.run(proc)
    result = proc.value
    assert not result.quorum_met  # ALL quorum needs both
    assert result.results == {"host1": "ok"}
    assert "camera jammed" in result.errors["host2"]


def test_group_call_validation(env):
    invoker, members = make_invoker(env)
    with pytest.raises(GroupError):
        invoker.call(members, "x", quorum="plurality")
    with pytest.raises(GroupError):
        invoker.call([], "x")
