"""Tests for reliable group communication over lossy links."""

import pytest

from repro.groups import ProcessGroup
from repro.net import Network, Topology
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


def lossy_star(env, members, loss):
    streams = RandomStreams(7)
    topo = Topology(env)
    for i in range(members):
        topo.add_link("m{}".format(i), "hub", latency=0.002, loss=loss,
                      rng=streams.stream("link-{}".format(i)))
    return Network(env, topo)


def test_reliable_group_delivers_through_loss(env):
    net = lossy_star(env, members=3, loss=0.3)
    group = ProcessGroup(net, "g", ordering="fifo", reliable=True,
                         ack_timeout=0.05, max_retries=100)
    endpoints = [group.join("m{}".format(i)) for i in range(3)]
    for i in range(5):
        endpoints[0].broadcast("msg-{}".format(i), size=100)
    env.run(until=30.0)
    for endpoint in endpoints:
        assert [m.payload for m in endpoint.delivered_log] == \
            ["msg-{}".format(i) for i in range(5)]


def test_reliable_total_order_through_loss(env):
    net = lossy_star(env, members=4, loss=0.25)
    group = ProcessGroup(net, "g", ordering="total", reliable=True,
                         ack_timeout=0.05, max_retries=100)
    endpoints = [group.join("m{}".format(i)) for i in range(4)]
    for i, endpoint in enumerate(endpoints):
        endpoint.broadcast("from-{}".format(i), size=100)
    env.run(until=60.0)
    sequences = [[m.payload for m in e.delivered_log]
                 for e in endpoints]
    assert all(len(seq) == 4 for seq in sequences)
    assert all(seq == sequences[0] for seq in sequences)


def test_unreliable_group_loses_messages_on_lossy_links(env):
    """The contrast: raw datagram groups drop traffic under loss."""
    net = lossy_star(env, members=3, loss=0.4)
    group = ProcessGroup(net, "g", ordering="unordered")
    endpoints = [group.join("m{}".format(i)) for i in range(3)]
    for i in range(20):
        endpoints[0].broadcast("msg-{}".format(i), size=100)
    env.run(until=30.0)
    remote_deliveries = sum(len(e.delivered_log)
                            for e in endpoints[1:])
    assert remote_deliveries < 40  # 40 would be loss-free


def test_reliable_causal_ordering_through_loss(env):
    net = lossy_star(env, members=3, loss=0.2)
    group = ProcessGroup(net, "g", ordering="causal", reliable=True,
                         ack_timeout=0.05, max_retries=100)
    asker = group.join("m0")
    replier = group.join("m1")
    observer = group.join("m2")

    def conversation(env):
        asker.broadcast("question", size=50)
        message = yield replier.receive()
        assert message.payload == "question"
        replier.broadcast("answer", size=50)

    env.process(conversation(env))
    env.run(until=30.0)
    assert [m.payload for m in observer.delivered_log] == \
        ["question", "answer"]
