"""Tests for process groups over the simulated network."""

import pytest

from repro.errors import GroupError, MembershipError
from repro.groups import GroupView, ProcessGroup
from repro.net import Network, lan, wan
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_group(env, members=3, ordering="causal", hosts=None):
    topo = lan(env, hosts=max(members, hosts or members))
    net = Network(env, topo)
    group = ProcessGroup(net, "g", ordering=ordering)
    endpoints = [group.join("host{}".format(i)) for i in range(members)]
    return group, endpoints


def test_view_basics():
    view = GroupView(1, ("b", "a"))
    assert view.members == ("a", "b")
    assert view.coordinator == "a"
    assert "a" in view
    assert len(view) == 2


def test_empty_view_has_no_coordinator():
    view = GroupView(0, ())
    with pytest.raises(MembershipError):
        _ = view.coordinator


def test_unknown_ordering_rejected(env):
    topo = lan(env, hosts=2)
    net = Network(env, topo)
    with pytest.raises(GroupError):
        ProcessGroup(net, "g", ordering="alphabetical")


def test_join_installs_views(env):
    group, endpoints = make_group(env, members=3)
    assert group.view.view_id == 3  # one view per join
    for endpoint in endpoints:
        assert endpoint.view.view_id == 3
        assert len(endpoint.view) == 3
    assert group.coordinator == "host0"


def test_double_join_rejected(env):
    group, _ = make_group(env, members=2)
    with pytest.raises(MembershipError):
        group.join("host0")


def test_leave_updates_view(env):
    group, _ = make_group(env, members=3)
    group.leave("host1")
    assert len(group.view) == 2
    assert "host1" not in group.view


def test_leave_nonmember_rejected(env):
    group, _ = make_group(env, members=2)
    with pytest.raises(MembershipError):
        group.leave("host9")


def test_endpoint_lookup(env):
    group, endpoints = make_group(env, members=2)
    assert group.endpoint("host0") is endpoints[0]
    with pytest.raises(MembershipError):
        group.endpoint("ghost")


def test_broadcast_reaches_all_members(env):
    group, endpoints = make_group(env, members=3, ordering="fifo")
    endpoints[0].broadcast("hello", size=50)
    env.run()
    for endpoint in endpoints:
        assert [m.payload for m in endpoint.delivered_log] == ["hello"]


def test_broadcast_by_nonmember_rejected(env):
    group, _ = make_group(env, members=2, hosts=3)
    host = group.network.host("host2")
    from repro.groups.group import GroupEndpoint

    rogue = GroupEndpoint(group, host)  # attached but never joined
    with pytest.raises(MembershipError):
        rogue.broadcast("x")


def test_fifo_order_respected_per_sender(env):
    group, endpoints = make_group(env, members=3, ordering="fifo")
    for i in range(5):
        endpoints[0].broadcast(i)
    env.run()
    for endpoint in endpoints:
        assert [m.payload for m in endpoint.delivered_log] == list(range(5))


def test_total_order_identical_everywhere(env):
    group, endpoints = make_group(env, members=4, ordering="total")
    # Concurrent broadcasts from several members.
    for i, endpoint in enumerate(endpoints):
        endpoint.broadcast("m{}".format(i))
    env.run()
    sequences = [[m.payload for m in e.delivered_log] for e in endpoints]
    assert all(len(seq) == 4 for seq in sequences)
    assert all(seq == sequences[0] for seq in sequences)


def test_causal_order_replies_follow_originals(env):
    """A reply broadcast after seeing a message is never delivered first."""
    group, endpoints = make_group(env, members=3, ordering="causal")
    asker, replier, observer = endpoints

    def conversation(env):
        asker.broadcast("question")
        message = yield replier.receive()
        assert message.payload == "question"
        replier.broadcast("answer")

    env.process(conversation(env))
    env.run()
    observed = [m.payload for m in observer.delivered_log]
    assert observed == ["question", "answer"]


def test_delivery_callbacks(env):
    group, endpoints = make_group(env, members=2, ordering="fifo")
    seen = []
    endpoints[1].on_deliver(lambda message: seen.append(message.payload))
    endpoints[0].broadcast("ping")
    env.run()
    assert seen == ["ping"]


def test_loopback_delivery_to_sender(env):
    group, endpoints = make_group(env, members=2, ordering="fifo")
    endpoints[0].broadcast("note")
    env.run()
    assert [m.payload for m in endpoints[0].delivered_log] == ["note"]


def test_fail_member_removes_from_view(env):
    group, _ = make_group(env, members=3)
    group.fail_member("host2")
    assert "host2" not in group.view
    group.fail_member("host2")  # idempotent
    assert len(group.view) == 2


def test_group_over_wan_total_order(env):
    topo = wan(env, sites=3, hosts_per_site=1)
    net = Network(env, topo)
    group = ProcessGroup(net, "wide", ordering="total")
    members = ["site{}.host0".format(i) for i in range(3)]
    endpoints = [group.join(m) for m in members]
    for i, endpoint in enumerate(endpoints):
        endpoint.broadcast(i)
    env.run()
    sequences = [[m.payload for m in e.delivered_log] for e in endpoints]
    assert all(seq == sequences[0] and len(seq) == 3 for seq in sequences)
