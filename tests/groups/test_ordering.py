"""Tests for delivery-ordering buffers, including permutation properties."""

import pytest
from hypothesis import given, strategies as st

from repro.groups import (
    CausalDelivery,
    FifoDelivery,
    GroupMessage,
    TotalDelivery,
    UnorderedDelivery,
    make_ordering,
)


def msg(sender, seq=None, vector=None, global_seq=None, payload=None):
    return GroupMessage(sender, payload, seq=seq, vector=vector,
                        global_seq=global_seq)


def test_unordered_delivers_immediately():
    buffer = UnorderedDelivery()
    m = msg("a")
    assert buffer.on_receive(m) == [m]


def test_fifo_in_order_passthrough():
    buffer = FifoDelivery()
    m1, m2 = msg("a", seq=1), msg("a", seq=2)
    assert buffer.on_receive(m1) == [m1]
    assert buffer.on_receive(m2) == [m2]


def test_fifo_holds_out_of_order():
    buffer = FifoDelivery()
    m1, m2, m3 = msg("a", seq=1), msg("a", seq=2), msg("a", seq=3)
    assert buffer.on_receive(m3) == []
    assert buffer.on_receive(m1) == [m1]
    assert buffer.on_receive(m2) == [m2, m3]


def test_fifo_is_per_sender():
    buffer = FifoDelivery()
    a2 = msg("a", seq=2)
    b1 = msg("b", seq=1)
    assert buffer.on_receive(a2) == []
    assert buffer.on_receive(b1) == [b1]  # b unaffected by a's gap


def test_fifo_drops_duplicates():
    buffer = FifoDelivery()
    m1 = msg("a", seq=1)
    buffer.on_receive(m1)
    assert buffer.on_receive(msg("a", seq=1)) == []


def test_fifo_requires_seq():
    with pytest.raises(ValueError):
        FifoDelivery().on_receive(msg("a"))


def test_causal_direct_dependency_held():
    # b's message depends on having seen a's first message.
    buffer = CausalDelivery("c")
    from_a = msg("a", vector={"a": 1})
    from_b = msg("b", vector={"a": 1, "b": 1})
    assert buffer.on_receive(from_b) == []
    assert buffer.held_count == 1
    assert buffer.on_receive(from_a) == [from_a, from_b]
    assert buffer.held_count == 0


def test_causal_concurrent_messages_flow():
    buffer = CausalDelivery("c")
    from_a = msg("a", vector={"a": 1})
    from_b = msg("b", vector={"b": 1})
    assert buffer.on_receive(from_b) == [from_b]
    assert buffer.on_receive(from_a) == [from_a]


def test_causal_implies_sender_fifo():
    buffer = CausalDelivery("c")
    second = msg("a", vector={"a": 2})
    first = msg("a", vector={"a": 1})
    assert buffer.on_receive(second) == []
    assert buffer.on_receive(first) == [first, second]


def test_causal_requires_vector():
    with pytest.raises(ValueError):
        CausalDelivery("x").on_receive(msg("a"))


def test_total_delivers_by_global_seq():
    buffer = TotalDelivery()
    m1, m2, m3 = (msg("a", global_seq=1), msg("b", global_seq=2),
                  msg("a", global_seq=3))
    assert buffer.on_receive(m2) == []
    assert buffer.on_receive(m1) == [m1, m2]
    assert buffer.on_receive(m3) == [m3]


def test_total_drops_duplicates():
    buffer = TotalDelivery()
    buffer.on_receive(msg("a", global_seq=1))
    assert buffer.on_receive(msg("a", global_seq=1)) == []


def test_total_requires_global_seq():
    with pytest.raises(ValueError):
        TotalDelivery().on_receive(msg("a"))


def test_make_ordering_factory():
    assert isinstance(make_ordering("fifo", "x"), FifoDelivery)
    assert isinstance(make_ordering("causal", "x"), CausalDelivery)
    assert isinstance(make_ordering("total", "x"), TotalDelivery)
    assert isinstance(make_ordering("unordered", "x"), UnorderedDelivery)
    with pytest.raises(ValueError):
        make_ordering("bogus", "x")


# -- property-based: arbitrary arrival orders ------------------------------

@given(st.permutations(list(range(1, 8))))
def test_fifo_property_delivery_in_send_order(arrival):
    """However messages arrive, FIFO delivers 1..n in order, complete."""
    buffer = FifoDelivery()
    delivered = []
    for seq in arrival:
        delivered.extend(buffer.on_receive(msg("s", seq=seq)))
    assert [m.seq for m in delivered] == list(range(1, 8))


@given(st.permutations(list(range(1, 8))))
def test_total_property_delivery_by_global_seq(arrival):
    buffer = TotalDelivery()
    delivered = []
    for gseq in arrival:
        delivered.extend(buffer.on_receive(msg("s", global_seq=gseq)))
    assert [m.global_seq for m in delivered] == list(range(1, 8))


@st.composite
def causal_history(draw):
    """A random causal history of 3 senders, plus an arrival permutation."""
    senders = ["a", "b", "c"]
    vectors = {s: {} for s in senders}
    messages = []
    count = draw(st.integers(3, 10))
    for _ in range(count):
        sender = draw(st.sampled_from(senders))
        # Occasionally merge another sender's history (a causal read).
        if messages and draw(st.booleans()):
            other = draw(st.sampled_from(messages)).vector
            for process, time in other.items():
                if time > vectors[sender].get(process, 0):
                    vectors[sender][process] = time
        vectors[sender][sender] = vectors[sender].get(sender, 0) + 1
        messages.append(msg(sender, vector=dict(vectors[sender])))
    order = draw(st.permutations(messages))
    return messages, order


@given(causal_history())
def test_causal_property_all_delivered_respecting_causality(history):
    """Causal delivery is complete and never inverts happened-before."""
    from repro.groups import VectorClock

    messages, arrival = history
    buffer = CausalDelivery("observer")
    delivered = []
    for message in arrival:
        delivered.extend(buffer.on_receive(message))
    assert len(delivered) == len(messages)
    # No message is delivered before one it causally depends on.
    for i, later in enumerate(delivered):
        for earlier in delivered[i + 1:]:
            assert not VectorClock(earlier.vector).happened_before(
                VectorClock(later.vector)) or earlier is later
