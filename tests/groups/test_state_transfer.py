"""Tests for late-join state transfer in process groups."""

import pytest

from repro.groups import ProcessGroup
from repro.net import Network, lan
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_group(env, hosts=4):
    topo = lan(env, hosts=hosts)
    net = Network(env, topo)
    return ProcessGroup(net, "g", ordering="fifo")


def test_late_joiner_receives_state(env):
    group = make_group(env)
    state = {"document": "v1", "members_seen": 2}
    group.set_state_provider(lambda: (dict(state), 4096))
    group.join("host0")
    group.join("host1")
    state["document"] = "v2"
    late = group.join("host2")
    env.run()
    assert late.joined_state == {"document": "v2", "members_seen": 2}
    assert late.state_received_at is not None
    assert late.state_received_at > 0  # crossed the network


def test_first_member_gets_no_state(env):
    group = make_group(env)
    group.set_state_provider(lambda: ({"x": 1}, 100))
    first = group.join("host0")
    env.run()
    assert first.joined_state is None


def test_no_provider_no_state(env):
    group = make_group(env)
    group.join("host0")
    late = group.join("host1")
    env.run()
    assert late.joined_state is None


def test_state_transfer_then_messages_flow(env):
    group = make_group(env)
    group.set_state_provider(lambda: ("snapshot", 1000))
    group.join("host0")
    late = group.join("host1")
    group.endpoint("host0").broadcast("post-join")
    env.run()
    assert late.joined_state == "snapshot"
    assert [m.payload for m in late.delivered_log] == ["post-join"]


def test_larger_state_takes_longer(env):
    received = {}
    for size, tag in ((1000, "small"), (10_000_000, "large")):
        env_local = Environment()
        topo = lan(env_local, hosts=2, bandwidth=1e8)
        net = Network(env_local, topo)
        group = ProcessGroup(net, "g-" + tag, ordering="fifo")
        group.set_state_provider(lambda size=size: ("s", size))
        group.join("host0")
        late = group.join("host1")
        env_local.run()
        received[tag] = late.state_received_at
    assert received["large"] > received["small"] * 10
