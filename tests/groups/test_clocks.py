"""Tests for Lamport and vector clocks, including hypothesis properties."""

from hypothesis import given, strategies as st

from repro.groups import LamportClock, VectorClock


def test_lamport_tick():
    clock = LamportClock()
    assert clock.tick() == 1
    assert clock.tick() == 2


def test_lamport_update_takes_max():
    clock = LamportClock()
    clock.tick()
    assert clock.update(10) == 11
    assert clock.update(3) == 12


def test_vector_clock_starts_empty():
    clock = VectorClock()
    assert clock.get("a") == 0
    assert clock.as_dict() == {}


def test_vector_increment_is_functional():
    base = VectorClock()
    bumped = base.increment("a")
    assert base.get("a") == 0
    assert bumped.get("a") == 1


def test_vector_merge():
    left = VectorClock({"a": 3, "b": 1})
    right = VectorClock({"a": 1, "c": 2})
    merged = left.merge(right)
    assert merged.as_dict() == {"a": 3, "b": 1, "c": 2}


def test_dominates_and_happened_before():
    early = VectorClock({"a": 1})
    late = VectorClock({"a": 2, "b": 1})
    assert late.dominates(early)
    assert early.happened_before(late)
    assert not late.happened_before(early)


def test_equal_clocks_not_happened_before():
    one = VectorClock({"a": 1})
    two = VectorClock({"a": 1})
    assert one == two
    assert not one.happened_before(two)


def test_concurrent_clocks():
    left = VectorClock({"a": 1})
    right = VectorClock({"b": 1})
    assert left.concurrent_with(right)
    assert right.concurrent_with(left)
    assert not left.happened_before(right)


def test_zero_components_equal_missing():
    assert VectorClock({"a": 0}) == VectorClock()
    assert hash(VectorClock({"a": 0})) == hash(VectorClock())


def test_eq_other_type():
    assert VectorClock() != 42


vc_dicts = st.dictionaries(
    st.sampled_from(["a", "b", "c"]), st.integers(0, 5), max_size=3)


@given(vc_dicts, vc_dicts)
def test_merge_dominates_both(d1, d2):
    left, right = VectorClock(d1), VectorClock(d2)
    merged = left.merge(right)
    assert merged.dominates(left)
    assert merged.dominates(right)


@given(vc_dicts, vc_dicts)
def test_merge_commutes(d1, d2):
    assert VectorClock(d1).merge(VectorClock(d2)) == \
        VectorClock(d2).merge(VectorClock(d1))


@given(vc_dicts)
def test_increment_strictly_after(d):
    base = VectorClock(d)
    assert base.happened_before(base.increment("a"))


@given(vc_dicts, vc_dicts)
def test_exactly_one_relation(d1, d2):
    """Any two clocks are <, >, ==, or concurrent — exactly one."""
    left, right = VectorClock(d1), VectorClock(d2)
    relations = [left.happened_before(right),
                 right.happened_before(left),
                 left == right,
                 left.concurrent_with(right)]
    assert sum(relations) == 1
