"""Edge cases in heartbeat failure detection and membership."""

import pytest

from repro.groups import MonitoredMembership, ProcessGroup
from repro.groups.failure import HeartbeatMonitor
from repro.net import Network, lan
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_group(env, members=4):
    topo = lan(env, hosts=members)
    net = Network(env, topo)
    group = ProcessGroup(net, "g", ordering="fifo")
    for i in range(members):
        group.join("host{}".format(i))
    return group


def test_member_restart_after_suspicion_rejoins(env):
    group = make_group(env)
    membership = MonitoredMembership(group, interval=0.5,
                                     suspect_after=2.0)

    def crash_then_restart(env):
        yield env.timeout(3.0)
        membership.crash("host2")
        yield env.timeout(5.0)
        # Suspicion has removed host2 by now; the restart rejoins it.
        assert "host2" not in group.view
        removed_view = group.view.view_id
        membership.restart("host2")
        assert "host2" in group.view
        assert group.view.view_id > removed_view

    proc = env.process(crash_then_restart(env))
    env.run(until=20.0)
    assert proc.value is None  # ran to completion
    # The rejoined member stays: its heartbeats resumed.
    assert "host2" in group.view
    assert len(group.view) == 4
    assert not membership.monitor.is_suspected("host2")


def test_restart_before_suspicion_is_benign(env):
    group = make_group(env)
    membership = MonitoredMembership(group, interval=0.5,
                                     suspect_after=5.0)

    def bounce(env):
        yield env.timeout(2.0)
        membership.crash("host1")
        yield env.timeout(1.0)  # shorter than suspect_after
        membership.restart("host1")

    env.process(bounce(env))
    env.run(until=15.0)
    assert len(group.view) == 4
    assert membership.monitor.suspected == []


def test_monitor_crash_stops_suspecting(env):
    group = make_group(env)
    membership = MonitoredMembership(group, interval=0.5,
                                     suspect_after=2.0)

    def crash_both(env):
        yield env.timeout(3.0)
        membership.crash("host2")
        # The monitor itself dies before the suspicion timeout runs out.
        yield env.timeout(1.0)
        membership.monitor.stop()

    env.process(crash_both(env))
    env.run(until=20.0)
    # Nobody was suspected: a dead monitor must not mutate the view.
    assert len(group.view) == 4
    assert membership.monitor.suspected == []


def test_zero_heartbeat_cold_start_suspected(env):
    # A member that is watched but never sends a single heartbeat must
    # still be suspected (last_heard falls back to the watch time).
    topo = lan(env, hosts=3)
    net = Network(env, topo)
    suspected = []
    monitor = HeartbeatMonitor(net.host("host0"), ["host1", "host2"],
                               suspect_after=2.0, check_interval=0.5,
                               on_suspect=suspected.append)
    env.run(until=10.0)
    assert sorted(suspected) == ["host1", "host2"]
    assert monitor.is_suspected("host1")


def test_reappearing_member_clears_suspicion(env):
    group = make_group(env, members=3)
    membership = MonitoredMembership(group, interval=0.5,
                                     suspect_after=2.0)
    monitor = membership.monitor
    # Suppress the view-changing reaction: we only exercise the
    # monitor's own bookkeeping here.
    monitor.on_suspect = None

    def bounce(env):
        yield env.timeout(2.0)
        sender = membership.senders["host1"]
        sender.stop()
        yield env.timeout(4.0)
        assert monitor.is_suspected("host1")
        sender.restart()

    env.process(bounce(env))
    env.run(until=15.0)
    assert not monitor.is_suspected("host1")
