"""Tests for failure-detection-driven membership."""

import pytest

from repro.errors import GroupError
from repro.groups import MonitoredMembership, ProcessGroup
from repro.net import Network, lan
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_group(env, members=4):
    topo = lan(env, hosts=members)
    net = Network(env, topo)
    group = ProcessGroup(net, "g", ordering="fifo")
    for i in range(members):
        group.join("host{}".format(i))
    return group


def test_monitoring_empty_group_rejected(env):
    topo = lan(env, hosts=1)
    net = Network(env, topo)
    group = ProcessGroup(net, "empty")
    with pytest.raises(GroupError):
        MonitoredMembership(group)


def test_healthy_members_stay_in_view(env):
    group = make_group(env)
    MonitoredMembership(group, interval=0.5, suspect_after=2.0)
    env.run(until=10.0)
    assert len(group.view) == 4


def test_crashed_member_removed_from_view(env):
    group = make_group(env)
    membership = MonitoredMembership(group, interval=0.5,
                                     suspect_after=2.0)
    view_before = group.view.view_id

    def crash_later(env):
        yield env.timeout(3.0)
        membership.crash("host2")

    env.process(crash_later(env))
    env.run(until=12.0)
    assert "host2" not in group.view
    assert len(group.view) == 3
    assert group.view.view_id > view_before
    # Survivors still communicate.
    group.endpoint("host0").broadcast("still-here")
    env.run(until=13.0)
    assert [m.payload for m in
            group.endpoint("host1").delivered_log] == ["still-here"]


def test_crash_unmonitored_member_rejected(env):
    group = make_group(env)
    membership = MonitoredMembership(group)
    with pytest.raises(GroupError):
        membership.crash("ghost")
    # The coordinator has no sender either (it hosts the monitor).
    with pytest.raises(GroupError):
        membership.crash("host0")


def test_watch_new_member(env):
    group = make_group(env, members=3)
    # Attach a 4th host to the network first.
    group.network.host("host3") if "host3" in \
        group.network.topology._adjacency else None
    membership = MonitoredMembership(group, interval=0.5,
                                     suspect_after=2.0)
    env.run(until=1.0)
    # host3 isn't in the LAN built with 3 hosts; rebuild scenario:
    assert len(group.view) == 3
    membership.watch_new_member("host1")  # idempotent for existing
    env.run(until=3.0)
    assert len(group.view) == 3


def test_late_joiner_monitored(env):
    topo = lan(env, hosts=5)
    net = Network(env, topo)
    group = ProcessGroup(net, "g", ordering="fifo")
    for i in range(4):
        group.join("host{}".format(i))
    membership = MonitoredMembership(group, interval=0.5,
                                     suspect_after=2.0)
    group.join("host4")
    membership.watch_new_member("host4")
    env.run(until=5.0)
    assert "host4" in group.view

    membership.crash("host4")
    env.run(until=12.0)
    assert "host4" not in group.view
