"""Tests for media sources/sinks, bindings and synchronisation."""

import pytest

from repro.errors import StreamError
from repro.net import MulticastService, Network, Topology, lan, star
from repro.qos import QoSBroker, QoSMonitor, QoSParameters
from repro.sim import Environment
from repro.streams import (
    ARRIVAL,
    ContinuousSynchroniser,
    EventSynchroniser,
    Frame,
    GroupStreamBinding,
    MediaSink,
    MediaSource,
    StreamBinding,
    measure_drift,
)


@pytest.fixture
def env():
    return Environment()


# -- source / sink -------------------------------------------------------------

def test_source_validation(env):
    with pytest.raises(StreamError):
        MediaSource(env, "s", lambda f: None, rate=0)
    with pytest.raises(StreamError):
        MediaSource(env, "s", lambda f: None, frame_size=0)
    with pytest.raises(StreamError):
        MediaSource(env, "s", lambda f: None, clock_skew=0)


def test_source_generates_at_rate(env):
    frames = []
    source = MediaSource(env, "video", frames.append, rate=10.0,
                         frame_size=1000)
    source.start(duration=1.0)
    env.run(until=2.0)
    assert len(frames) == 10
    assert frames[0].media_time == 0.0
    assert frames[5].media_time == pytest.approx(0.5)
    assert source.frames_sent == 10


def test_source_double_start_rejected(env):
    source = MediaSource(env, "v", lambda f: None)
    source.start(duration=0.1)
    with pytest.raises(StreamError):
        source.start()


def test_source_stop(env):
    frames = []
    source = MediaSource(env, "v", frames.append, rate=10.0)
    source.start()

    def stopper(env):
        yield env.timeout(0.45)
        source.stop()

    env.process(stopper(env))
    env.run(until=2.0)
    assert len(frames) == 5


def test_sink_validation(env):
    with pytest.raises(StreamError):
        MediaSink(env, "s", mode="psychic")
    with pytest.raises(StreamError):
        MediaSink(env, "s", target_delay=-1)


def test_sink_deadline_mode_plays_on_schedule(env):
    sink = MediaSink(env, "monitor", target_delay=0.1)

    def feeder(env):
        for seq in range(3):
            frame = Frame("v", seq, seq / 10.0, 1000, env.now)
            yield env.timeout(0.01)  # small network delay
            sink.receive(frame)
            yield env.timeout(0.09)

    env.process(feeder(env))
    env.run()
    assert len(sink.played) == 3
    assert sink.deadline_misses == 0
    # First frame: arrived at 0.01, played at epoch = 0.01 + 0.1.
    assert sink.played[0].played_at == pytest.approx(0.11)


def test_sink_deadline_mode_counts_late_frames(env):
    sink = MediaSink(env, "monitor", target_delay=0.05)

    def feeder(env):
        sink.receive(Frame("v", 0, 0.0, 1000, env.now))
        # Frame 1 should play at epoch+0.1; it arrives far too late.
        yield env.timeout(0.5)
        sink.receive(Frame("v", 1, 0.1, 1000, 0.1))

    env.process(feeder(env))
    env.run()
    assert sink.deadline_misses == 1
    assert sink.miss_rate == pytest.approx(0.5)


def test_sink_arrival_mode_plays_immediately(env):
    sink = MediaSink(env, "s", mode=ARRIVAL)
    sink.receive(Frame("v", 0, 0.0, 100, 0.0))
    sink.receive(Frame("v", 1, 0.04, 100, 0.0))
    assert len(sink.played) == 2
    assert sink.position == pytest.approx(0.04)


def test_sink_miss_rate_empty(env):
    assert MediaSink(env, "s").miss_rate == 0.0


# -- bindings -----------------------------------------------------------------

def make_net(env):
    topo = lan(env, hosts=3)
    return Network(env, topo)


def test_binding_validation(env):
    net = make_net(env)
    with pytest.raises(StreamError):
        StreamBinding(net, "host0", "host0")


def test_binding_carries_frames(env):
    net = make_net(env)
    binding = StreamBinding(net, "host0", "host1")
    sink = MediaSink(env, "sink", target_delay=0.1)
    binding.attach_sink(sink)
    source = MediaSource(env, "video", binding.send_frame, rate=10.0,
                         frame_size=1000)
    source.start(duration=0.5)
    env.run(until=2.0)
    assert binding.counters["frames_sent"] == 5
    assert binding.counters["frames_received"] == 5
    assert len(sink.played) == 5
    assert sink.deadline_misses == 0


def test_binding_feeds_qos_monitor(env):
    net = make_net(env)
    level = QoSParameters(throughput=1e4, latency=0.1, jitter=0.1,
                          loss=0.5)
    broker = QoSBroker(net)
    contract = broker.negotiate("host0", "host1", level)
    monitor = QoSMonitor(env, contract, window=0.5,
                         expected_frames_per_window=5)
    binding = StreamBinding(net, "host0", "host1", contract=contract,
                            monitor=monitor)
    binding.attach_sink(MediaSink(env, "s", target_delay=0.1))
    source = MediaSource(env, "v", binding.send_frame, rate=10.0,
                         frame_size=1000)
    source.start(duration=1.0)
    env.run(until=1.6)
    assert monitor.counters["windows_ok"] >= 1


def test_reserved_binding_uses_priority(env):
    net = make_net(env)
    level = QoSParameters(throughput=1e4, latency=0.5)
    broker = QoSBroker(net)
    contract = broker.negotiate("host0", "host1", level)
    binding = StreamBinding(net, "host0", "host1", contract=contract)
    assert binding.priority == 0
    contract.close()
    assert binding.priority == 10


def test_group_binding_reaches_all_members(env):
    topo = star(env, leaves=4)
    net = Network(env, topo)
    multicast = MulticastService(net)
    group = multicast.create_group("conf")
    members = ["leaf1", "leaf2", "leaf3"]
    for member in members + ["leaf0"]:
        net.host(member)
        group.join(member)
    binding = GroupStreamBinding(net, multicast, "conf", "leaf0")
    sinks = {}
    for member in members:
        sinks[member] = MediaSink(env, member, target_delay=0.1)
        binding.attach_sink(member, sinks[member])
    source = MediaSource(env, "cam", binding.send_frame, rate=10.0,
                         frame_size=2000)
    source.start(duration=0.5)
    env.run(until=2.0)
    for member in members:
        assert len(sinks[member].played) == 5


def test_group_binding_requires_membership(env):
    topo = star(env, leaves=2)
    net = Network(env, topo)
    multicast = MulticastService(net)
    multicast.create_group("conf")
    binding = GroupStreamBinding(net, multicast, "conf", "leaf0")
    with pytest.raises(StreamError):
        binding.attach_sink("leaf1", MediaSink(env, "s"))


# -- synchronisation -----------------------------------------------------------

def test_event_synchroniser_fires_at_media_time(env):
    sink = MediaSink(env, "s", mode=ARRIVAL)
    cues = EventSynchroniser(sink)
    fired = []
    cues.at(0.2, lambda: fired.append(env.now))
    with pytest.raises(StreamError):
        cues.at(-1, lambda: None)

    def feeder(env):
        for seq in range(6):
            yield env.timeout(0.1)
            sink.receive(Frame("v", seq, seq * 0.1, 100, env.now))

    env.process(feeder(env))
    env.run()
    assert len(fired) == 1
    assert fired[0] == pytest.approx(0.3)  # frame with media_time 0.2
    assert cues.pending == 0


def test_event_synchroniser_fires_once(env):
    sink = MediaSink(env, "s", mode=ARRIVAL)
    cues = EventSynchroniser(sink)
    fired = []
    cues.at(0.0, lambda: fired.append(True))
    sink.receive(Frame("v", 0, 0.0, 100, 0.0))
    sink.receive(Frame("v", 1, 0.1, 100, 0.0))
    assert fired == [True]


def drifting_pair(env, skew):
    """An audio/video pair whose clocks drift apart at rate ``skew``."""
    audio_sink = MediaSink(env, "audio", mode=ARRIVAL)
    video_sink = MediaSink(env, "video", mode=ARRIVAL)
    audio = MediaSource(env, "audio", audio_sink.receive, rate=50.0)
    video = MediaSource(env, "video", video_sink.receive, rate=25.0,
                        clock_skew=skew)
    audio.start()
    video.start()
    return audio_sink, video_sink


def test_uncorrected_streams_drift(env):
    audio_sink, video_sink = drifting_pair(env, skew=1.05)
    drift = measure_drift(env, audio_sink, video_sink, duration=20.0)
    env.run(until=21.0)
    # 5% skew over 20s ≈ 1s of accumulated skew: integrity destroyed.
    assert drift.values[-1] > 0.5


def test_continuous_sync_bounds_skew(env):
    audio_sink, video_sink = drifting_pair(env, skew=1.05)
    sync = ContinuousSynchroniser(env, audio_sink, video_sink,
                                  bound=0.08, check_interval=0.2)
    env.run(until=20.0)
    assert sync.counters["corrections"] > 0
    # Skew stayed within bound plus one check interval of drift —
    # versus >0.5s accumulated without correction.
    assert sync.max_abs_skew < 0.25


def test_sync_validation(env):
    a = MediaSink(env, "a", mode=ARRIVAL)
    b = MediaSink(env, "b", mode=ARRIVAL)
    with pytest.raises(StreamError):
        ContinuousSynchroniser(env, a, b, bound=0)
    with pytest.raises(StreamError):
        ContinuousSynchroniser(env, a, b, check_interval=0)


def test_sync_stop(env):
    a = MediaSink(env, "a", mode=ARRIVAL)
    b = MediaSink(env, "b", mode=ARRIVAL)
    sync = ContinuousSynchroniser(env, a, b)
    sync.stop()
    env.run(until=1.0)
    assert sync.counters["checks"] <= 1
