"""Tests for QoS-annotated stream interfaces and compatibility checks."""

import pytest

from repro.errors import BindingError, QoSNegotiationFailed
from repro.net import Network, lan
from repro.qos import QoSBroker, QoSParameters
from repro.sim import Environment
from repro.streams import (
    AUDIO,
    CONSUMER,
    MediaSink,
    MediaSource,
    PRODUCER,
    StreamInterface,
    VIDEO,
    bind_interfaces,
    check_compatibility,
)


def offered(throughput=1e6, latency=0.05, jitter=0.02, loss=0.01):
    return QoSParameters(throughput=throughput, latency=latency,
                         jitter=jitter, loss=loss)


def required(throughput=8e5, latency=0.1, jitter=0.05, loss=0.05):
    return QoSParameters(throughput=throughput, latency=latency,
                         jitter=jitter, loss=loss)


def make_pair(producer_qos=None, consumer_qos=None, media=VIDEO):
    producer = StreamInterface("cam-out", "host0", PRODUCER, media,
                               producer_qos or offered())
    consumer = StreamInterface("window-in", "host1", CONSUMER, media,
                               consumer_qos or required())
    return producer, consumer


def test_interface_validation():
    with pytest.raises(BindingError):
        StreamInterface("x", "n", "bidirectional", VIDEO, offered())
    with pytest.raises(BindingError):
        StreamInterface("x", "n", PRODUCER, "smell-o-vision", offered())


def test_compatible_pair_passes():
    producer, consumer = make_pair()
    assert check_compatibility(producer, consumer) == []


def test_direction_mismatch_detected():
    producer, consumer = make_pair()
    problems = check_compatibility(consumer, producer)
    assert len(problems) == 2
    assert any("not a producer" in p for p in problems)


def test_media_type_mismatch_detected():
    producer = StreamInterface("mic", "host0", PRODUCER, AUDIO,
                               offered())
    _, consumer = make_pair()
    problems = check_compatibility(producer, consumer)
    assert any("media types differ" in p for p in problems)


def test_each_qos_axis_checked():
    cases = [
        (offered(throughput=5e5), "throughput"),
        (offered(latency=0.5), "latency"),
        (offered(jitter=0.2), "jitter"),
        (offered(loss=0.2), "loss"),
    ]
    for weak_offer, axis in cases:
        producer, consumer = make_pair(producer_qos=weak_offer)
        problems = check_compatibility(producer, consumer)
        assert any(axis in p for p in problems), axis


def test_bind_incompatible_raises():
    env = Environment()
    net = Network(env, lan(env, hosts=2))
    producer, consumer = make_pair(producer_qos=offered(loss=0.9))
    with pytest.raises(BindingError, match="loss"):
        bind_interfaces(net, producer, consumer)


def test_bind_without_broker_carries_frames():
    env = Environment()
    net = Network(env, lan(env, hosts=2))
    producer, consumer = make_pair()
    binding = bind_interfaces(net, producer, consumer)
    sink = MediaSink(env, "window", target_delay=0.1)
    binding.attach_sink(sink)
    source = MediaSource(env, "cam", binding.send_frame, rate=10.0,
                         frame_size=1000)
    source.start(duration=1.0)
    env.run(until=2.0)
    assert sink.counters["played"] == 10


def test_bind_with_broker_reserves():
    env = Environment()
    net = Network(env, lan(env, hosts=2))
    broker = QoSBroker(net)
    producer, consumer = make_pair()
    binding = bind_interfaces(net, producer, consumer, broker=broker)
    assert binding.contract is not None
    assert binding.contract.agreed.throughput >= 8e5
    assert binding.priority == 0  # reserved


def test_bind_with_broker_refuses_beyond_capacity():
    env = Environment()
    net = Network(env, lan(env, hosts=2, bandwidth=1e6))
    broker = QoSBroker(net)
    producer, consumer = make_pair(
        consumer_qos=required(throughput=9e5))
    with pytest.raises(QoSNegotiationFailed):
        bind_interfaces(net, producer, consumer, broker=broker)
