"""Cross-cutting property tests: serialisability, OT protocol fuzzing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.concurrency import (
    Insert,
    Delete,
    OTClientCore,
    OTServerCore,
    SharedStore,
    TransactionManager,
)
from repro.errors import TransactionAborted
from repro.sim import Environment, RandomStreams


# -- serialisability of the transaction baseline -------------------------------

@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 4), st.integers(2, 4))
def test_no_lost_updates_under_random_contention(seed, users, keys):
    """Every committed increment survives: the defining 2PL guarantee.

    Random users run read-modify-write transactions over random keys
    with retries on deadlock; at the end, each counter equals the number
    of successful increments applied to it.
    """
    env = Environment()
    tm = TransactionManager(env, SharedStore())
    key_names = ["k{}".format(i) for i in range(keys)]
    for key in key_names:
        tm.store.write(key, 0)
    committed = {key: 0 for key in key_names}
    rng = RandomStreams(seed).stream("txns")

    def user(env, name):
        for _ in range(6):
            yield env.timeout(rng.random() * 0.1)
            targets = sorted(rng.sample(key_names,
                                        rng.randint(1, len(key_names))))
            while True:
                txn = tm.begin(name)
                try:
                    values = {}
                    for key in targets:
                        values[key] = yield from tm.read(txn, key)
                        yield env.timeout(rng.random() * 0.05)
                    for key in targets:
                        yield from tm.write(txn, key, values[key] + 1)
                    yield from tm.commit(txn)
                    for key in targets:
                        committed[key] += 1
                    break
                except TransactionAborted:
                    yield env.timeout(rng.random() * 0.02)

    for i in range(users):
        env.process(user(env, "user-{}".format(i)))
    env.run()
    for key in key_names:
        assert tm.store.read(key) == committed[key]


# -- OT protocol fuzzing over the pure cores -------------------------------------

def valid_op(rng, length):
    if length == 0 or rng.random() < 0.6:
        return Insert(rng.randrange(length + 1),
                      "abcdefgh"[rng.randrange(8)])
    return Delete(rng.randrange(length))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000), st.integers(2, 4), st.integers(1, 8))
def test_ot_protocol_converges_under_random_schedules(seed, sites,
                                                      edits_per_site):
    """Drive the full client/server OT protocol with a random message
    scheduler: all replicas converge to the server text, always."""
    rng = RandomStreams(seed).stream("fuzz")
    server = OTServerCore("seed-text")
    clients = {"site{}".format(i): OTClientCore("site{}".format(i),
                                                "seed-text")
               for i in range(sites)}
    #: In-flight messages: (kind, destination, payload) — FIFO per lane
    #: but lanes are drained in random order (models network timing).
    lanes = {name: [] for name in clients}     # server -> client
    to_server = []                             # client -> server
    pending_edits = {name: edits_per_site for name in clients}

    def dispatch_send(name, send):
        if send is not None:
            to_server.append((name, send))

    progress = True
    while progress:
        progress = False
        choices = []
        if to_server:
            choices.append("server")
        for name, lane in lanes.items():
            if lane:
                choices.append(name)
        editors = [name for name, left in pending_edits.items()
                   if left > 0]
        choices.extend("edit:" + name for name in editors)
        if not choices:
            break
        choice = choices[rng.randrange(len(choices))]
        progress = True
        if choice == "server":
            name, (base_rev, ops) = to_server.pop(0)
            rev, transformed = server.receive(name, base_rev, ops)
            lanes[name].append(("ack", rev, None, None))
            for other in clients:
                if other != name:
                    lanes[other].append(("remote", rev, name,
                                         transformed))
        elif choice.startswith("edit:"):
            name = choice.split(":", 1)[1]
            client = clients[name]
            pending_edits[name] -= 1
            op = valid_op(rng, len(client.text))
            dispatch_send(name, client.local_edit([op]))
        else:
            kind, rev, origin, ops = lanes[choice].pop(0)
            client = clients[choice]
            if kind == "ack":
                dispatch_send(choice, client.server_ack(rev))
            else:
                client.server_remote(rev, origin, ops)

    for name, client in clients.items():
        assert not client.has_unacked
        assert client.text == server.text, name


# -- reliable channel exactly-once under heavy loss --------------------------------

@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.0, 0.5))
def test_reliable_channel_exactly_once(seed, loss):
    from repro.net import Network, ReliableChannel, Topology

    env = Environment()
    topo = Topology(env)
    topo.add_link("a", "b", latency=0.002, loss=loss,
                  rng=RandomStreams(seed).stream("loss"))
    net = Network(env, topo)
    sender = ReliableChannel(net.host("a"), ack_timeout=0.02,
                             max_retries=200)
    receiver = ReliableChannel(net.host("b"), ack_timeout=0.02,
                               max_retries=200)
    got = []

    def consumer(env):
        for _ in range(8):
            packet = yield receiver.receive()
            got.append(packet.payload)

    def producer(env):
        for i in range(8):
            yield sender.send("b", payload=i, size=20)

    consume = env.process(consumer(env))
    env.process(producer(env))
    env.run(consume)
    assert got == list(range(8))
