"""The platform described through its own five ODP viewpoints.

A dogfooding test: build an :class:`ODPSpecification` of a deployment of
this library and verify it passes the cross-viewpoint conformance checks
— with the §4.1 sociality content (working division of labour,
ethnographic observations) present in the enterprise model.
"""

from repro import CooperativePlatform
from repro.core import ComputationalModel, ODPSpecification


def describe_deployment(platform: CooperativePlatform
                        ) -> ODPSpecification:
    spec = ODPSpecification("cooperative-authoring-service")

    # Enterprise: the community and both formal and observed flows.
    enterprise = spec.enterprise
    enterprise.add_community("authoring-team",
                             ["author", "co-author", "reviewer"])
    enterprise.add_formal_flow("co-author", "author")
    enterprise.add_formal_flow("reviewer", "author")
    enterprise.add_working_flow("co-author", "reviewer")
    enterprise.observe(
        "reviewer",
        "reviewers monitor co-authors' sections peripherally and raise "
        "issues informally before formal review")

    # Information: the shared schemas and their invariants.
    spec.information.add_schema(
        "document", {"text": "str", "version": "int"})
    spec.information.add_schema(
        "awareness-event", {"actor": "str", "artefact": "str",
                            "action": "str", "at": "float"})
    spec.information.add_invariant(
        "replica-convergence",
        "all OT replicas converge to the sequencer's text")

    # Computational: the objects and interfaces of the deployment.
    computational = spec.computational
    computational.add_object("ot-sequencer")
    computational.add_interface("ot-sequencer", "ot-ops")
    computational.add_object("awareness-bus")
    computational.add_interface("awareness-bus", "events")
    computational.add_object("video-source")
    computational.add_interface("video-source", "video-out",
                                kind=ComputationalModel.STREAM)
    computational.bind("ot-ops", "events")

    # Engineering: placement on the simulated deployment's nodes.
    engineering = spec.engineering
    for host in platform.host_names():
        engineering.add_node(host)
    hosts = platform.host_names()
    engineering.place("ot-sequencer", hosts[0])
    engineering.place("awareness-bus", hosts[0])
    engineering.place("video-source", hosts[1])
    engineering.support_stream("video-out", "priority-unicast")

    # Technology: what the engineering is realised with here.
    spec.technology.choose("transport", "simulated packet network")
    spec.technology.choose("ordering", "sequencer-based total order")
    spec.technology.choose("qos-enforcement", "priority link queues")
    return spec


def test_platform_specification_is_consistent():
    platform = CooperativePlatform(sites=2, hosts_per_site=1)
    spec = describe_deployment(platform)
    assert spec.check_consistency() == []
    assert spec.is_consistent()


def test_sociality_content_is_first_class():
    platform = CooperativePlatform(sites=2, hosts_per_site=1)
    spec = describe_deployment(platform)
    assert spec.enterprise.informality_ratio() > 0
    assert spec.enterprise.observations["reviewer"]


def test_missing_engineering_support_detected():
    platform = CooperativePlatform(sites=2, hosts_per_site=1)
    spec = describe_deployment(platform)
    spec.computational.add_object("audio-source")
    spec.computational.add_interface("audio-source", "audio-out",
                                     kind=ComputationalModel.STREAM)
    spec.engineering.place("audio-source", platform.host_names()[1])
    problems = spec.check_consistency()
    assert any("audio-out" in p for p in problems)
