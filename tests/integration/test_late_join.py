"""Tests for OT late join: a snapshot-initialised replica converges."""

import pytest

from repro import CooperativePlatform
from repro.errors import SessionError


def make_platform():
    return CooperativePlatform(sites=4, hosts_per_site=1, seed=201)


def test_late_joiner_starts_from_snapshot():
    platform = make_platform()
    members = platform.host_names()[:2]
    session = platform.create_session("s", members)
    doc = session.shared_document("doc", initial="base")
    doc.client(members[0]).insert(4, " text")
    platform.run()
    late = platform.host_names()[2]
    replica = doc.add_member(platform, late)
    assert replica.text == "base text"
    assert replica.core.revision == doc.server.core.revision


def test_late_joiner_participates_and_converges():
    platform = make_platform()
    members = platform.host_names()[:2]
    session = platform.create_session("s", members)
    doc = session.shared_document("doc", initial="0123")
    doc.client(members[0]).insert(0, "A")
    platform.run()
    late = platform.host_names()[2]
    replica = doc.add_member(platform, late)
    # Everyone keeps editing, including the newcomer.
    replica.insert(0, "Z")
    doc.client(members[1]).insert(len(doc.client(members[1]).text), "!")
    platform.run()
    assert doc.converged
    texts = set(doc.texts().values())
    assert len(texts) == 1
    final = texts.pop()
    assert "Z" in final and "A" in final and "!" in final


def test_late_joiner_receives_edits_concurrent_with_join():
    platform = make_platform()
    members = platform.host_names()[:2]
    session = platform.create_session("s", members)
    doc = session.shared_document("doc", initial="")
    env = platform.env

    def early_editor(env):
        doc.client(members[0]).insert(0, "a")
        yield env.timeout(0.001)
        doc.client(members[0]).insert(1, "b")

    def joiner(env):
        # Join while editor traffic is still in flight.
        yield env.timeout(0.0005)
        replica = doc.add_member(platform, platform.host_names()[2])
        yield env.timeout(0.5)
        return replica

    env.process(early_editor(env))
    join_proc = env.process(joiner(env))
    platform.run()
    replica = join_proc.value
    assert doc.converged
    assert replica.text == doc.server.core.text == "ab"


def test_duplicate_late_join_rejected():
    platform = make_platform()
    members = platform.host_names()[:2]
    session = platform.create_session("s", members)
    doc = session.shared_document("doc")
    with pytest.raises(SessionError):
        doc.add_member(platform, members[0])
