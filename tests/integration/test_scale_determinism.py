"""Scale sanity and the determinism guarantee.

The repository's headline engineering claim: everything runs on a seeded
discrete-event simulation, so identical configurations produce identical
results — byte for byte — and moderately large deployments stay fast.
"""

import time

from repro import CooperativePlatform
from repro.sim import RandomStreams


def run_collaboration(seed):
    """A non-trivial seeded scenario; returns a full observable trace."""
    platform = CooperativePlatform(sites=4, hosts_per_site=1, seed=seed)
    members = platform.host_names()
    session = platform.create_session("trace", members,
                                      ordering="total")
    doc = session.shared_document("doc", initial="0123456789")
    rng = RandomStreams(seed).stream("edits")
    awareness_trace = []
    session.workspace.watch(
        members[1], lambda event: awareness_trace.append(
            (round(platform.env.now, 9), event.actor, event.artefact)))

    def editor(env, member):
        client = doc.client(member)
        for i in range(15):
            yield env.timeout(rng.uniform(0.001, 0.05))
            if len(client.text) > 2 and rng.random() < 0.3:
                client.delete(rng.randrange(len(client.text)))
            else:
                client.insert(rng.randrange(len(client.text) + 1),
                              "abcdef"[i % 6])
        session.session.store.write("done/" + member, True,
                                    writer=member, at=env.now)

    for member in members:
        platform.env.process(editor(platform.env, member))
    for i, member in enumerate(members):
        session.broadcast(member, "hello-{}".format(i))
    platform.run()
    group_logs = tuple(
        tuple(m.payload for m in
              session.group.endpoint(member).delivered_log)
        for member in members)
    return {
        "text": doc.server.core.text,
        "converged": doc.converged,
        "group_logs": group_logs,
        "awareness": tuple(awareness_trace),
        "history": tuple(session.session.store.history()),
        "final_time": platform.env.now,
    }


def test_identical_seeds_identical_traces():
    first = run_collaboration(seed=77)
    second = run_collaboration(seed=77)
    assert first == second
    assert first["converged"]


def test_different_seeds_different_traces():
    a = run_collaboration(seed=77)
    b = run_collaboration(seed=78)
    assert a["text"] != b["text"] or a["awareness"] != b["awareness"]


def test_moderate_scale_stays_fast():
    """8 sites, 8 concurrent OT editors, total-order chat, media flow —
    completes in seconds of wall-clock."""
    started = time.time()
    platform = CooperativePlatform(sites=8, hosts_per_site=1, seed=5)
    members = platform.host_names()
    session = platform.create_session("big", members, ordering="total")
    doc = session.shared_document("doc", initial="x" * 20)
    rng = RandomStreams(5).stream("big")

    def editor(env, member):
        client = doc.client(member)
        for _ in range(40):
            yield env.timeout(rng.uniform(0.001, 0.05))
            if len(client.text) > 2 and rng.random() < 0.4:
                client.delete(rng.randrange(len(client.text)))
            else:
                client.insert(rng.randrange(len(client.text) + 1), "y")

    for member in members:
        platform.env.process(editor(platform.env, member))
    flow = platform.open_media_flow(members[0], members[-1], rate=25.0)
    flow.start(duration=2.0)
    platform.run(until=30.0)
    platform.run()
    assert doc.converged
    assert flow.sink.counters["played"] == 50
    elapsed = time.time() - started
    assert elapsed < 30.0, "scale scenario too slow: {:.1f}s".format(
        elapsed)
