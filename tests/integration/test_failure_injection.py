"""Failure injection across the stack: crashes, partitions, rollbacks."""

import pytest

from repro.errors import PlacementError, TransportError
from repro.groups import MonitoredMembership, ProcessGroup
from repro.net import Network, ReliableChannel, Topology, lan
from repro.node import ODPRuntime
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


def test_partition_removes_member_then_rejoin(env):
    """A partitioned member is suspected, removed, and can rejoin."""
    topo = lan(env, hosts=4)
    net = Network(env, topo)
    group = ProcessGroup(net, "g", ordering="fifo")
    for i in range(4):
        group.join("host{}".format(i))
    MonitoredMembership(group, interval=0.5, suspect_after=2.0)

    def partition(env):
        yield env.timeout(3.0)
        link = topo.link_between("host3", "switch")
        link.set_up(False)
        topo.invalidate_routes()

    env.process(partition(env))
    env.run(until=10.0)
    assert "host3" not in group.view
    assert len(group.view) == 3

    # The partition heals; the member rejoins as a fresh endpoint.
    topo.link_between("host3", "switch").set_up(True)
    topo.invalidate_routes()
    group.join("host3")
    assert "host3" in group.view
    group.endpoint("host0").broadcast("welcome-back")
    env.run(until=12.0)
    assert [m.payload for m in
            group.endpoint("host3").delivered_log] == ["welcome-back"]


def test_migration_to_unreachable_node_rolls_back(env):
    """A failed migration leaves the object installed and usable."""
    topo = Topology(env)
    topo.add_link("a", "b", latency=0.001)
    link_c = topo.add_link("a", "c", latency=0.001)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="a")
    for node in ("a", "b", "c"):
        runtime.nucleus(node)
    nucleus = runtime.nuclei["a"]
    capsule = nucleus.create_capsule()
    obj = nucleus.create_object(capsule, "doc", state={"n": 1})
    obj.operation("read", lambda caller, state, args: state["n"])
    link_c.set_up(False)
    topo.invalidate_routes()
    outcome = {}

    def root(env):
        try:
            yield nucleus.migrate_cluster(obj.cluster, "c", timeout=1.0)
            outcome["migrated"] = True
        except PlacementError:
            outcome["migrated"] = False
        # The object must still answer locally after the rollback.
        value = yield runtime.nuclei["b"].invoke(obj.oid, "read")
        outcome["value"] = value

    proc = env.process(root(env))
    env.run(proc)
    assert outcome == {"migrated": False, "value": 1}
    assert runtime.locate(obj.oid) == "a"
    assert nucleus.find_object(obj.oid) is not None


def test_reliable_channel_through_flapping_link(env):
    """Messages survive a link that goes down and comes back."""
    topo = Topology(env)
    link = topo.add_link("a", "b", latency=0.005)
    net = Network(env, topo)
    sender = ReliableChannel(net.host("a"), ack_timeout=0.1,
                             max_retries=60)
    receiver = ReliableChannel(net.host("b"), ack_timeout=0.1,
                               max_retries=60)
    got = []

    def consumer(env):
        for _ in range(5):
            packet = yield receiver.receive()
            got.append(packet.payload)

    def producer(env):
        for i in range(5):
            yield sender.send("b", payload=i, size=50)
            yield env.timeout(0.3)  # the link flaps between sends

    def flapper(env):
        yield env.timeout(0.05)
        for _ in range(3):
            link.set_up(False)
            yield env.timeout(0.4)
            link.set_up(True)
            yield env.timeout(0.25)

    consume = env.process(consumer(env))
    env.process(producer(env))
    env.process(flapper(env))
    env.run(consume)
    assert got == [0, 1, 2, 3, 4]
    assert sender.retransmissions > 0


def test_reliable_channel_gives_up_on_dead_host(env):
    topo = Topology(env)
    link = topo.add_link("a", "b", latency=0.005)
    net = Network(env, topo)
    sender = ReliableChannel(net.host("a"), ack_timeout=0.05,
                             max_retries=3)
    # b never attaches a channel: data arrives nowhere, acks never come.
    link.set_up(False)
    failed = []

    def root(env):
        try:
            yield sender.send("b", payload="lost")
        except TransportError:
            failed.append(True)

    proc = env.process(root(env))
    env.run(proc)
    assert failed == [True]


def test_qos_capacity_recovered_after_violated_contract(env):
    """A violated, released contract frees its reservation."""
    from repro.net import dumbbell
    from repro.qos import QoSBroker, QoSParameters

    topo = dumbbell(env, left=2, right=2, bottleneck_bandwidth=1e6)
    net = Network(env, topo)
    broker = QoSBroker(net)
    first = broker.negotiate("left0", "right0",
                             QoSParameters(throughput=7e5, latency=0.1))
    first.mark_violated()
    broker.release(first)
    # Full capacity is back for the next applicant.
    second = broker.negotiate("left1", "right1",
                              QoSParameters(throughput=7e5, latency=0.1))
    assert second.agreed.throughput == 7e5


def test_heartbeats_false_suspicion_recovers(env):
    """Transient silence (a slow link) must not permanently evict."""
    from repro.groups import HeartbeatMonitor, HeartbeatSender

    topo = lan(env, hosts=2)
    net = Network(env, topo)
    monitor = HeartbeatMonitor(net.host("host0"), ["host1"],
                               suspect_after=1.0, check_interval=0.2)
    link = topo.link_between("host1", "switch")

    def slow_patch(env):
        yield env.timeout(1.0)
        link.set_up(False)   # heartbeats silently dropped
        topo.invalidate_routes()
        yield env.timeout(2.0)
        link.set_up(True)
        topo.invalidate_routes()

    HeartbeatSender(net.host("host1"), "host0", interval=0.2)
    env.process(slow_patch(env))
    env.run(until=2.5)
    assert monitor.is_suspected("host1")
    env.run(until=6.0)
    assert not monitor.is_suspected("host1")


def test_ot_document_with_competing_bursts_converges(env):
    """Stress: heavy concurrent editing from every site converges."""
    from repro import CooperativePlatform

    platform = CooperativePlatform(sites=4, hosts_per_site=1, seed=99)
    members = platform.host_names()
    session = platform.create_session("stress", members)
    doc = session.shared_document("doc", initial="0123456789")
    rng = RandomStreams(100).stream("stress")

    def burst(env, member):
        client = doc.client(member)
        for _ in range(30):
            yield env.timeout(rng.uniform(0.0005, 0.02))
            if len(client.text) > 2 and rng.random() < 0.4:
                client.delete(rng.randrange(len(client.text)))
            else:
                client.insert(rng.randrange(len(client.text) + 1), "x")

    for member in members:
        platform.env.process(burst(platform.env, member))
    platform.run()
    assert doc.converged
    texts = set(doc.texts().values())
    assert len(texts) == 1
