"""End-to-end scenarios across the whole middleware stack."""

import pytest

from repro import CooperativePlatform
from repro.core.matrix import classify
from repro.qos import QoSParameters
from repro.sessions import ASYNCHRONOUS, SYNCHRONOUS


def test_design_review_lifecycle():
    """A full meeting: join, edit, transition to async, late work."""
    platform = CooperativePlatform(sites=3, hosts_per_site=2, seed=101)
    members = platform.host_names()[:3]
    session = platform.create_session("review", members,
                                      floor="round-robin",
                                      time_mode=SYNCHRONOUS)

    # Synchronous phase: everyone edits the shared minutes.
    doc = session.shared_document("minutes", initial="")
    doc.client(members[0]).insert(0, "AGENDA|")
    doc.client(members[1]).insert(0, "(v2)")
    platform.run()
    assert doc.converged
    synchronous_text = doc.server.core.text
    assert "AGENDA" in synchronous_text

    # Transition to asynchronous work — state survives.
    session.session.switch_mode(time_mode=ASYNCHRONOUS)
    assert classify(session.session) == \
        "asynchronous distributed interaction"
    doc.client(members[2]).insert(len(doc.client(members[2]).text),
                                  "|ACTIONS")
    platform.run()
    assert doc.converged
    assert "ACTIONS" in doc.server.core.text
    assert synchronous_text.replace("|ACTIONS", "") in \
        doc.server.core.text


def test_awareness_spans_concurrency_mechanisms():
    """Store writes via any mechanism surface on the awareness bus."""
    platform = CooperativePlatform(sites=2, hosts_per_site=1, seed=102)
    members = platform.host_names()
    session = platform.create_session("aware", members)
    observed = []
    session.workspace.watch(members[1],
                            lambda event: observed.append(
                                (event.actor, event.artefact)))
    store = session.session.store
    store.write("strip/BA100", {"level": 340}, writer=members[0],
                at=platform.env.now)
    store.write("strip/BA101", {"level": 320}, writer=members[0],
                at=platform.env.now)
    platform.run()
    assert len(observed) == 2
    assert all(actor == members[0] for actor, _ in observed)


def test_conference_with_reserved_and_besteffort_flows():
    """Two flows compete; the reserved one keeps its deadlines."""
    platform = CooperativePlatform(sites=2, hosts_per_site=2,
                                   site_latency=0.01, seed=103)
    hosts = platform.host_names()
    reserved = platform.open_media_flow(
        hosts[0], hosts[2], rate=25.0, frame_size=4000,
        desired=QoSParameters(throughput=8e5, latency=0.2, jitter=0.15,
                              loss=0.05))
    besteffort = platform.open_media_flow(
        hosts[1], hosts[3], rate=25.0, frame_size=4000, reserve=False)
    # Background flooders saturate the shared WAN link.
    flooder = platform.network.host(hosts[1])

    def flood(env):
        while env.now < 4.0:
            flooder.send(hosts[3], size=9000)
            yield env.timeout(0.004)  # ~18 Mb/s offered on a 10 Mb/s link

    platform.env.process(flood(platform.env))
    reserved.start(duration=4.0)
    besteffort.start(duration=4.0)
    platform.run(until=4.5)
    assert reserved.sink.miss_rate < 0.05
    assert besteffort.sink.miss_rate > reserved.sink.miss_rate


def test_session_church_with_document_convergence():
    """Members come and go; the document still converges."""
    platform = CooperativePlatform(sites=3, hosts_per_site=1, seed=104)
    members = platform.host_names()
    session = platform.create_session("churny", members)
    doc = session.shared_document("doc", initial="")

    def churner(env):
        doc.client(members[0]).insert(0, "a")
        yield env.timeout(0.5)
        session.session.leave(members[2])
        doc.client(members[1]).insert(0, "b")
        yield env.timeout(0.5)
        session.session.join(members[2])
        doc.client(members[2]).insert(0, "c")

    platform.env.process(churner(platform.env))
    platform.run()
    assert doc.converged
    assert sorted(doc.server.core.text) == ["a", "b", "c"]


def test_atc_board_with_role_based_access():
    """The §2.3 flight-strip board guarded by dynamic roles."""
    from repro.access import READ, Role, RoleBasedPolicy, WRITE
    from repro.errors import AccessDenied

    platform = CooperativePlatform(sites=1, hosts_per_site=3,
                                   topology="lan", seed=105)
    north, south, trainee = platform.host_names()
    session = platform.create_session("sector", [north, south, trainee])
    policy = RoleBasedPolicy()
    policy.define(Role("controller").allow("board/*", WRITE))
    policy.define(Role("observer").allow("board/*", READ))
    policy.assign(north, "controller")
    policy.assign(trainee, "observer")

    def place_strip(who, callsign):
        policy.require(who, "board/" + callsign, WRITE)
        session.session.store.write("board/" + callsign, "FL340",
                                    writer=who, at=platform.env.now)

    place_strip(north, "BA100")
    with pytest.raises(AccessDenied):
        place_strip(trainee, "BA101")
    # Mid-shift the trainee qualifies: the role change is immediate.
    policy.assign(trainee, "controller", at=platform.env.now)
    place_strip(trainee, "BA101")
    platform.run()
    assert "board/BA101" in session.session.store


def test_mobile_member_rejoins_and_syncs():
    """A disconnected colleague reintegrates field edits."""
    from repro.concurrency import SharedStore
    from repro.mobility import MobileCache, MobileHost
    from repro.net import ConnectivityLevel

    platform = CooperativePlatform(sites=2, hosts_per_site=1, seed=106)
    env = platform.env
    store = SharedStore("workspace")
    store.write("notes", "office v1", writer="office")
    mobile = MobileHost(platform.network, "fieldpad", "site1.router",
                        level=ConnectivityLevel.FULL)
    cache = MobileCache(env, mobile, store)

    def trip(env):
        yield from cache.hoard(["notes"])
        mobile.set_level(ConnectivityLevel.DISCONNECTED)
        yield from cache.write("notes", "field v2")
        yield env.timeout(100.0)
        mobile.set_level(ConnectivityLevel.PARTIAL)
        applied, conflicted = yield from cache.reintegrate()
        return (applied, conflicted)

    proc = env.process(trip(env))
    env.run(proc)
    assert proc.value == (1, 0)
    assert store.read("notes") == "field v2"
