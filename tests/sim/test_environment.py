"""Tests for the simulation environment and run loop."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, drive


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_run_until_time_advances_clock():
    env = Environment()
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_time_raises():
    env = Environment(initial_time=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_timeout_fires_at_expected_time():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(2.5)
        fired.append(env.now)

    env.process(proc(env))
    env.run()
    assert fired == [2.5]


def test_timeout_value_delivered():
    env = Environment()

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        return value

    p = env.process(proc(env))
    env.run(p)
    assert p.value == "hello"


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(env, 3.0, "c"))
    env.process(proc(env, 1.0, "a"))
    env.process(proc(env, 2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 99

    p = env.process(proc(env))
    assert env.run(p) == 99


def test_process_chaining():
    env = Environment()

    def inner(env):
        yield env.timeout(2.0)
        return "inner-done"

    def outer(env):
        result = yield env.process(inner(env))
        return result + "!"

    p = env.process(outer(env))
    env.run(p)
    assert p.value == "inner-done!"
    assert env.now == 2.0


def test_run_without_until_drains_queue():
    env = Environment()

    def proc(env):
        yield env.timeout(7.0)

    env.process(proc(env))
    env.run()
    assert env.now == 7.0


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(5.0)
    assert env.peek() == 5.0


def test_peek_empty_is_infinite():
    env = Environment()
    assert env.peek() == float("inf")


def test_process_exception_propagates_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(proc(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_yield_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 42

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()


def test_drive_returns_root_process_value():
    def root(env):
        yield env.timeout(4.0)
        return "done"

    assert drive(root) == "done"


def test_drive_with_until_returns_none_when_cut_short():
    def root(env):
        yield env.timeout(100.0)
        return "never"

    assert drive(root, until=1.0) is None


def test_run_until_already_processed_event():
    env = Environment()

    def root(env):
        yield env.timeout(1.0)
        return "v"

    proc = env.process(root(env))
    env.run()
    # Running again "until" the already-finished process returns its value.
    assert env.run(proc) == "v"
