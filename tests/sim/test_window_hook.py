"""The environment's window-boundary hook (timeline substrate)."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sim.events import NORMAL, URGENT


def ticker(env, period, count, log=None):
    for _ in range(count):
        yield env.timeout(period)
        if log is not None:
            log.append(env.now)


def test_hook_fires_at_each_boundary():
    env = Environment()
    boundaries = []
    env.set_window_hook(1.0, boundaries.append)
    env.process(ticker(env, 0.3, 12))
    env.run()
    assert boundaries == [1.0, 2.0, 3.0]


def test_hook_catches_up_over_quiet_gaps():
    """One event far in the future fires every boundary it crossed."""
    env = Environment()
    boundaries = []
    env.set_window_hook(1.0, boundaries.append)

    def proc(env):
        yield env.timeout(4.5)

    env.process(proc(env))
    env.run()
    assert boundaries == [1.0, 2.0, 3.0, 4.0]


def test_hook_sees_only_events_strictly_before_boundary():
    """The cut at boundary B observes effects of events with t < B."""
    env = Environment()
    seen = []
    log = []
    env.set_window_hook(1.0, lambda b: seen.append((b, list(log))))
    # Events at exactly t=1.0 must NOT be visible to the 1.0 flush.
    env.process(ticker(env, 0.5, 3, log))
    env.run()
    assert seen[0] == (1.0, [0.5])


def test_hook_schedules_no_events():
    """Replay-digest neutrality: hook runs leave the event count alone."""
    def drive(with_hook):
        env = Environment()
        if with_hook:
            env.set_window_hook(0.25, lambda b: None)
        env.process(ticker(env, 0.4, 10))
        env.run()
        return env.stats()

    assert drive(with_hook=True) == drive(with_hook=False)


def test_boundaries_do_not_drift():
    """Multiplicative boundaries: no accumulating float error."""
    env = Environment()
    boundaries = []
    env.set_window_hook(0.1, boundaries.append)
    env.process(ticker(env, 0.07, 100))
    env.run()
    # Exactly anchor + i*interval — never an accumulated sum.
    assert boundaries == [0.1 * (i + 1) for i in range(len(boundaries))]
    assert len(boundaries) >= 69  # ~7.0s of activity at 0.1s windows


def test_hook_works_with_step():
    env = Environment()
    boundaries = []
    env.set_window_hook(1.0, boundaries.append)
    env.process(ticker(env, 0.6, 4))
    while env.peek() != float("inf"):
        env.step()
    assert boundaries == [1.0, 2.0]


def test_custom_start_anchor():
    env = Environment()
    boundaries = []
    env.set_window_hook(1.0, boundaries.append, start=0.5)
    env.process(ticker(env, 0.5, 6))
    env.run()
    assert boundaries == [1.5, 2.5]


def test_second_hook_rejected_until_cleared():
    env = Environment()
    env.set_window_hook(1.0, lambda b: None)
    with pytest.raises(SimulationError):
        env.set_window_hook(2.0, lambda b: None)
    env.clear_window_hook()
    env.set_window_hook(2.0, lambda b: None)


def test_nonpositive_interval_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.set_window_hook(0.0, lambda b: None)
    with pytest.raises(SimulationError):
        env.set_window_hook(-1.0, lambda b: None)


# -- exactly-once under the calendar queue (PR 10) ------------------------
#
# The calendar run loop fires the hook from two inlined drain variants
# and after bucket promotes; each boundary must still fire exactly once,
# in order, on both schedulers, whatever the schedule's shape.

def _boundaries(scheduler, build, interval=1.0, until=None):
    env = Environment(scheduler=scheduler)
    fired = []
    env.set_window_hook(interval, fired.append)
    build(env)
    env.run(until=until)
    return fired


def _assert_exactly_once(fired):
    assert fired == sorted(fired)
    assert len(fired) == len(set(fired)), "a boundary fired twice"


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_exactly_once_over_quiet_gaps(scheduler):
    """Sparse schedules with long quiet gaps: every crossed boundary
    fires once when the clock jumps, none are skipped or repeated."""
    def build(env):
        def proc(env):
            yield env.timeout(0.3)
            yield env.timeout(4.0)   # crosses 1.0 .. 4.0
            yield env.timeout(0.1)
            yield env.timeout(10.0)  # crosses 5.0 .. 14.0
        env.process(proc(env))

    fired = _boundaries(scheduler, build)
    _assert_exactly_once(fired)
    assert fired == [float(k) for k in range(1, 15)]


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_exactly_once_through_dense_same_time_bursts(scheduler):
    """Thousands of events at the boundary instant: the hook fires once
    before the first of them, never between or after."""
    env = Environment(scheduler=scheduler)
    fired = []
    order = []
    env.set_window_hook(1.0, lambda b: (fired.append(b),
                                        order.append(("hook", b))))

    def burst(env):
        yield env.timeout(1.0)
        order.append(("event", env.now))

    for _ in range(3000):
        env.process(burst(env))
    env.run()
    _assert_exactly_once(fired)
    assert fired == [1.0]
    # The single firing precedes every same-instant event callback.
    assert order[0] == ("hook", 1.0)
    assert all(kind == "event" for kind, _ in order[1:])


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_exactly_once_in_until_terminated_runs(scheduler):
    """run(until=...) must not fire boundaries beyond the cut, and a
    resumed run picks up with no boundary lost or repeated."""
    env = Environment(scheduler=scheduler)
    fired = []
    env.set_window_hook(1.0, fired.append)
    env.process(ticker(env, 0.3, 30))
    env.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]
    env.run(until=7.5)
    _assert_exactly_once(fired)
    assert fired == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]


@pytest.mark.parametrize("seed", [0, 5, 23])
def test_exactly_once_on_random_schedules_matches_heap(seed):
    """Property: for arbitrary priority/delay mixes the boundary log is
    identical between schedulers, sorted, and duplicate-free."""
    rng = random.Random(seed)
    plan = [(rng.choice([0.0, rng.random(), rng.random() * 20.0]),
             rng.choice([URGENT, NORMAL]))
            for _ in range(400)]

    logs = {}
    for scheduler in ("calendar", "heap"):
        env = Environment(scheduler=scheduler)
        fired = []
        env.set_window_hook(0.5, fired.append)
        for delay, priority in plan:
            event = env.event()
            event._ok = True
            env.schedule(event, priority=priority, delay=delay)
        env.run_all(limit=float("inf"))
        logs[scheduler] = fired
    _assert_exactly_once(logs["calendar"])
    assert logs["calendar"] == logs["heap"]
