"""The environment's window-boundary hook (timeline substrate)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment


def ticker(env, period, count, log=None):
    for _ in range(count):
        yield env.timeout(period)
        if log is not None:
            log.append(env.now)


def test_hook_fires_at_each_boundary():
    env = Environment()
    boundaries = []
    env.set_window_hook(1.0, boundaries.append)
    env.process(ticker(env, 0.3, 12))
    env.run()
    assert boundaries == [1.0, 2.0, 3.0]


def test_hook_catches_up_over_quiet_gaps():
    """One event far in the future fires every boundary it crossed."""
    env = Environment()
    boundaries = []
    env.set_window_hook(1.0, boundaries.append)

    def proc(env):
        yield env.timeout(4.5)

    env.process(proc(env))
    env.run()
    assert boundaries == [1.0, 2.0, 3.0, 4.0]


def test_hook_sees_only_events_strictly_before_boundary():
    """The cut at boundary B observes effects of events with t < B."""
    env = Environment()
    seen = []
    log = []
    env.set_window_hook(1.0, lambda b: seen.append((b, list(log))))
    # Events at exactly t=1.0 must NOT be visible to the 1.0 flush.
    env.process(ticker(env, 0.5, 3, log))
    env.run()
    assert seen[0] == (1.0, [0.5])


def test_hook_schedules_no_events():
    """Replay-digest neutrality: hook runs leave the event count alone."""
    def drive(with_hook):
        env = Environment()
        if with_hook:
            env.set_window_hook(0.25, lambda b: None)
        env.process(ticker(env, 0.4, 10))
        env.run()
        return env.stats()

    assert drive(with_hook=True) == drive(with_hook=False)


def test_boundaries_do_not_drift():
    """Multiplicative boundaries: no accumulating float error."""
    env = Environment()
    boundaries = []
    env.set_window_hook(0.1, boundaries.append)
    env.process(ticker(env, 0.07, 100))
    env.run()
    # Exactly anchor + i*interval — never an accumulated sum.
    assert boundaries == [0.1 * (i + 1) for i in range(len(boundaries))]
    assert len(boundaries) >= 69  # ~7.0s of activity at 0.1s windows


def test_hook_works_with_step():
    env = Environment()
    boundaries = []
    env.set_window_hook(1.0, boundaries.append)
    env.process(ticker(env, 0.6, 4))
    while env.peek() != float("inf"):
        env.step()
    assert boundaries == [1.0, 2.0]


def test_custom_start_anchor():
    env = Environment()
    boundaries = []
    env.set_window_hook(1.0, boundaries.append, start=0.5)
    env.process(ticker(env, 0.5, 6))
    env.run()
    assert boundaries == [1.5, 2.5]


def test_second_hook_rejected_until_cleared():
    env = Environment()
    env.set_window_hook(1.0, lambda b: None)
    with pytest.raises(SimulationError):
        env.set_window_hook(2.0, lambda b: None)
    env.clear_window_hook()
    env.set_window_hook(2.0, lambda b: None)


def test_nonpositive_interval_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.set_window_hook(0.0, lambda b: None)
    with pytest.raises(SimulationError):
        env.set_window_hook(-1.0, lambda b: None)
