"""The kernel fast paths must behave exactly like the generic paths."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Event, PriorityResource, Resource, Timeout
from repro.sim.events import NORMAL, URGENT
from repro.sim.resources import PriorityRequest


@pytest.fixture
def env():
    return Environment()


def test_timeout_fast_path_matches_generic_event(env):
    event = env.timeout(1.5, value="v")
    assert isinstance(event, Timeout)
    assert event.delay == 1.5
    assert event.triggered and event.ok
    assert event.value == "v"
    assert env.events_scheduled == 1


def test_timeout_rejects_negative_delay(env):
    with pytest.raises(SimulationError):
        env.timeout(-0.1)
    # The failed call must not have queued anything.
    assert env.events_scheduled == 0
    assert env.peek() == float("inf")


def test_events_scheduled_counts_every_queued_event(env):
    env.timeout(0.1)
    env.schedule(Event(env))
    assert env.events_scheduled == 2
    env.run(until=1.0)
    # run(until=...) queues the until-event itself.
    assert env.events_scheduled == 3
    assert env.events_processed == 3


def test_urgent_still_beats_normal_at_same_instant(env):
    order = []
    normal = env.timeout(0.0)
    normal.callbacks.append(lambda _e: order.append("normal"))
    urgent = Event(env)
    urgent._ok = True
    urgent.callbacks.append(lambda _e: order.append("urgent"))
    env.schedule(urgent, priority=URGENT)
    env.run()
    assert order == ["urgent", "normal"]
    assert URGENT < NORMAL


def test_events_are_slotted(env):
    with pytest.raises(AttributeError):
        env.timeout(0.1).arbitrary = 1
    with pytest.raises(AttributeError):
        Event(env).arbitrary = 1


def test_events_processed_is_exact_after_failed_run(env):
    def boom(env):
        yield env.timeout(0.1)
        raise RuntimeError("bang")

    env.timeout(0.05)
    env.process(boom(env))
    with pytest.raises(RuntimeError):
        env.run()
    # Initialize + plain timeout + process timeout + process-failure
    # event all drained before the error escalated.
    assert env.events_processed == 4


def test_priority_request_grant_fast_path_matches_queued_path(env):
    channel = PriorityResource(env, capacity=1)
    first = channel.request(priority=1)
    second = channel.request(priority=0)
    # First claim granted immediately (fast path); second queued.
    assert first.triggered
    assert not second.triggered
    env.run()
    assert first.usage_since == 0.0
    channel.release(first)
    env.run()
    assert second.triggered


def test_named_resource_wait_histogram_covers_fast_path(env):
    from repro.obs.metrics import MetricsRegistry, use_metrics
    with use_metrics(MetricsRegistry()) as metrics:
        resource = Resource(env, capacity=1, name="disk")
        resource.request()
        channel = PriorityResource(env, capacity=1, name="lane")
        channel.request(priority=0)
        env.run()
        # Both grant paths (generic and inlined) record a zero wait.
        assert metrics.histogram("resource.wait", resource="disk").count == 1
        assert metrics.histogram("resource.wait", resource="lane").count == 1


def test_release_of_queued_request_still_withdraws(env):
    resource = Resource(env, capacity=1)
    holder = resource.request()
    queued = resource.request()
    env.run()
    resource.release(queued)  # withdraw from the wait queue
    resource.release(holder)
    env.run()
    assert not queued.triggered
    assert resource.users == []


# -- PR 10: fused grants, elided puts, scheduler edge cases ---------------

@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_equal_priority_claims_stay_fifo(scheduler):
    """Tie-break order is creation order, on either queue."""
    env = Environment(scheduler=scheduler)
    channel = PriorityResource(env, capacity=1)
    order = []

    def claimant(env, tag):
        claim = channel.request(priority=5)
        yield claim
        order.append(tag)
        yield env.timeout(0.01)
        channel.release(claim)

    for tag in range(8):
        env.process(claimant(env, tag))
    env.run()
    assert order == list(range(8))


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
def test_cancellation_interleaved_with_timeouts(scheduler):
    """Interrupting a process waiting on a Timeout mid-queue must not
    disturb the dispatch order of the surviving events."""
    env = Environment(scheduler=scheduler)
    log = []

    def sleeper(env):
        try:
            yield env.timeout(2.0)
            log.append("slept")
        except Exception as error:
            log.append("interrupted:{}".format(error.cause))

    def ticker(env):
        for i in range(4):
            yield env.timeout(0.5)
            log.append("tick{}".format(i))

    victim = env.process(sleeper(env))
    env.process(ticker(env))

    def assassin(env):
        yield env.timeout(1.0)
        victim.interrupt("late")

    env.process(assassin(env))
    env.run()
    assert log == ["tick0", "interrupted:late", "tick1", "tick2", "tick3"]


def test_grant_delay_fusion_keeps_counters_exact(env):
    """A fused claim (grant_delay) virtually accounts the elided grant:
    counters equal the two-event claim-then-timeout formulation."""
    def fused(env, channel):
        claim = PriorityRequest(channel, 0, grant_delay=0.25)
        yield claim
        channel.release(claim)

    def split(env, channel):
        claim = channel.request(priority=0)
        yield claim
        yield env.timeout(0.25)
        channel.release(claim)

    def drive(worker):
        env = Environment()
        channel = PriorityResource(env, capacity=1)
        env.process(worker(env, channel))
        env.run()
        return env.now, env.events_scheduled, env.events_processed

    assert drive(fused) == drive(split)


def test_fused_claim_contended_path_still_honours_delay(env):
    """Queued fused claims must fire at grant_time + grant_delay."""
    channel = PriorityResource(env, capacity=1)
    granted = []

    def holder(env):
        claim = channel.request(priority=0)
        yield claim
        yield env.timeout(1.0)
        channel.release(claim)

    def waiter(env):
        claim = PriorityRequest(channel, 0, grant_delay=0.5)
        yield claim
        granted.append(env.now)
        channel.release(claim)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert granted == [1.5]


def test_store_put_fast_matches_generic_put(env):
    from repro.sim import Store
    fast_env = Environment()
    slow_env = Environment()

    def consumer(env, store, seen):
        for _ in range(3):
            item = yield store.get()
            seen.append((env.now, item))

    def producer(env, store, fast):
        for i in range(3):
            yield env.timeout(0.1)
            if fast:
                store.put_fast(i)
            else:
                store.put(i)

    logs = {}
    for env_, fast in ((fast_env, True), (slow_env, False)):
        store = Store(env_)
        seen = []
        env_.process(consumer(env_, store, seen))
        env_.process(producer(env_, store, fast))
        env_.run()
        logs[fast] = (seen, env_.stats())
    assert logs[True] == logs[False]


def test_store_put_fast_falls_back_when_bounded_or_named(env):
    from repro.sim import Store
    bounded = Store(env, capacity=1)
    bounded.put(0)
    assert bounded.put_fast(1) is not None  # full: generic put event
    named = Store(env, name="inbox")
    assert named.put_fast("x") is not None  # named: metrics need events

