"""The kernel fast paths must behave exactly like the generic paths."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Event, PriorityResource, Resource, Timeout
from repro.sim.events import NORMAL, URGENT


@pytest.fixture
def env():
    return Environment()


def test_timeout_fast_path_matches_generic_event(env):
    event = env.timeout(1.5, value="v")
    assert isinstance(event, Timeout)
    assert event.delay == 1.5
    assert event.triggered and event.ok
    assert event.value == "v"
    assert env.events_scheduled == 1


def test_timeout_rejects_negative_delay(env):
    with pytest.raises(SimulationError):
        env.timeout(-0.1)
    # The failed call must not have queued anything.
    assert env.events_scheduled == 0
    assert env.peek() == float("inf")


def test_events_scheduled_counts_every_queued_event(env):
    env.timeout(0.1)
    env.schedule(Event(env))
    assert env.events_scheduled == 2
    env.run(until=1.0)
    # run(until=...) queues the until-event itself.
    assert env.events_scheduled == 3
    assert env.events_processed == 3


def test_urgent_still_beats_normal_at_same_instant(env):
    order = []
    normal = env.timeout(0.0)
    normal.callbacks.append(lambda _e: order.append("normal"))
    urgent = Event(env)
    urgent._ok = True
    urgent.callbacks.append(lambda _e: order.append("urgent"))
    env.schedule(urgent, priority=URGENT)
    env.run()
    assert order == ["urgent", "normal"]
    assert URGENT < NORMAL


def test_events_are_slotted(env):
    with pytest.raises(AttributeError):
        env.timeout(0.1).arbitrary = 1
    with pytest.raises(AttributeError):
        Event(env).arbitrary = 1


def test_events_processed_is_exact_after_failed_run(env):
    def boom(env):
        yield env.timeout(0.1)
        raise RuntimeError("bang")

    env.timeout(0.05)
    env.process(boom(env))
    with pytest.raises(RuntimeError):
        env.run()
    # Initialize + plain timeout + process timeout + process-failure
    # event all drained before the error escalated.
    assert env.events_processed == 4


def test_priority_request_grant_fast_path_matches_queued_path(env):
    channel = PriorityResource(env, capacity=1)
    first = channel.request(priority=1)
    second = channel.request(priority=0)
    # First claim granted immediately (fast path); second queued.
    assert first.triggered
    assert not second.triggered
    env.run()
    assert first.usage_since == 0.0
    channel.release(first)
    env.run()
    assert second.triggered


def test_named_resource_wait_histogram_covers_fast_path(env):
    from repro.obs.metrics import MetricsRegistry, use_metrics
    with use_metrics(MetricsRegistry()) as metrics:
        resource = Resource(env, capacity=1, name="disk")
        resource.request()
        channel = PriorityResource(env, capacity=1, name="lane")
        channel.request(priority=0)
        env.run()
        # Both grant paths (generic and inlined) record a zero wait.
        assert metrics.histogram("resource.wait", resource="disk").count == 1
        assert metrics.histogram("resource.wait", resource="lane").count == 1


def test_release_of_queued_request_still_withdraws(env):
    resource = Resource(env, capacity=1)
    holder = resource.request()
    queued = resource.request()
    env.run()
    resource.release(queued)  # withdraw from the wait queue
    resource.release(holder)
    env.run()
    assert not queued.triggered
    assert resource.users == []
