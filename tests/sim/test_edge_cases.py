"""Edge cases in the simulation kernel found worth pinning down."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    AllOf,
    AnyOf,
    Container,
    Environment,
    Interrupt,
    PriorityResource,
    Resource,
    Store,
)


@pytest.fixture
def env():
    return Environment()


def test_condition_with_failed_child_fails(env):
    bad = env.event()
    good = env.timeout(1.0)
    caught = []

    def waiter(env):
        try:
            yield env.all_of([good, bad])
        except RuntimeError as error:
            caught.append(str(error))

    env.process(waiter(env))

    def failer(env):
        yield env.timeout(0.5)
        bad.fail(RuntimeError("child died"))

    env.process(failer(env))
    env.run()
    assert caught == ["child died"]


def test_condition_mixed_environments_rejected(env):
    other = Environment()
    with pytest.raises(SimulationError):
        env.all_of([env.timeout(1), other.timeout(1)])


def test_anyof_with_already_processed_child(env):
    t = env.timeout(0.5, value="early")

    def root(env):
        yield env.timeout(1.0)  # t fires and is processed meanwhile
        result = yield env.any_of([t, env.timeout(5.0)])
        return list(result.values())

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == ["early"]


def test_interrupt_process_waiting_on_resource(env):
    resource = Resource(env, capacity=1)
    outcomes = []

    def holder(env):
        req = resource.request()
        yield req
        yield env.timeout(10.0)
        resource.release(req)

    def impatient(env):
        request = resource.request()
        try:
            yield request
            outcomes.append("granted")
        except Interrupt:
            outcomes.append("interrupted")
            resource.release(request)  # withdraw from the queue

    env.process(holder(env))
    waiting = env.process(impatient(env))

    def poker(env):
        yield env.timeout(1.0)
        waiting.interrupt()

    env.process(poker(env))
    env.run()
    assert outcomes == ["interrupted"]
    assert resource.queue == []


def test_interrupted_waiter_does_not_receive_grant_later(env):
    resource = Resource(env, capacity=1)
    grants = []

    def holder(env):
        req = resource.request()
        yield req
        yield env.timeout(2.0)
        resource.release(req)

    def first_waiter(env):
        request = resource.request()
        try:
            yield request
            grants.append("first")
        except Interrupt:
            resource.release(request)

    def second_waiter(env):
        yield env.timeout(0.5)
        yield resource.request()
        grants.append("second")

    env.process(holder(env))
    w1 = env.process(first_waiter(env))
    env.process(second_waiter(env))

    def poker(env):
        yield env.timeout(1.0)
        w1.interrupt()

    env.process(poker(env))
    env.run()
    assert grants == ["second"]


def test_priority_resource_release_from_queue(env):
    resource = PriorityResource(env, capacity=1)
    holder = resource.request(priority=0)
    queued = resource.request(priority=5)
    assert not queued.triggered
    resource.release(queued)       # withdraw while queued
    resource.release(holder.value)
    assert resource.count == 0


def test_store_competing_filter_getters(env):
    store = Store(env)
    results = {}

    def taker(env, name, want):
        item = yield store.get(filter=lambda x: x == want)
        results[name] = item

    env.process(taker(env, "a", "apple"))
    env.process(taker(env, "b", "banana"))

    def producer(env):
        yield store.put("banana")
        yield env.timeout(0.1)
        yield store.put("apple")

    env.process(producer(env))
    env.run()
    assert results == {"a": "apple", "b": "banana"}


def test_store_put_wakes_blocked_getter_in_fifo(env):
    store = Store(env)
    order = []

    def taker(env, name):
        yield store.get()
        order.append(name)

    for name in ("x", "y", "z"):
        env.process(taker(env, name))

    def producer(env):
        for _ in range(3):
            yield env.timeout(0.1)
            yield store.put("item")

    env.process(producer(env))
    env.run()
    assert order == ["x", "y", "z"]


def test_container_interleaved_puts_and_gets(env):
    container = Container(env, capacity=5, init=0)
    log = []

    def producer(env):
        for i in range(4):
            yield container.put(2)
            log.append(("put", env.now, container.level))
            yield env.timeout(0.1)

    def consumer(env):
        for i in range(4):
            yield container.get(2)
            log.append(("get", env.now, container.level))
            yield env.timeout(0.15)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert container.level == 0
    assert len(log) == 8
    assert all(0 <= level <= 5 for _, _, level in log)


def test_event_defuse_prevents_crash(env):
    event = env.event()
    event.fail(RuntimeError("nobody listening"))
    event.defuse()
    env.run()  # must not raise


def test_process_value_is_return(env):
    def worker(env):
        yield env.timeout(1.0)
        return {"answer": 42}

    proc = env.process(worker(env))
    env.run()
    assert proc.value == {"answer": 42}
    assert proc.ok


def test_nested_process_failure_propagates(env):
    def inner(env):
        yield env.timeout(0.5)
        raise ValueError("inner broke")

    def outer(env):
        try:
            yield env.process(inner(env))
        except ValueError as error:
            return "caught: {}".format(error)

    proc = env.process(outer(env))
    env.run(proc)
    assert proc.value == "caught: inner broke"
