"""Tests for resources, stores and containers."""

import pytest

from repro.errors import SimulationError
from repro.sim import Container, Environment, PriorityResource, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    grants = []

    def user(env, tag, hold):
        request = resource.request()
        yield request
        grants.append((tag, env.now))
        yield env.timeout(hold)
        resource.release(request)

    env.process(user(env, "a", 5.0))
    env.process(user(env, "b", 5.0))
    env.process(user(env, "c", 1.0))
    env.run()
    assert grants == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_fifo_queue():
    env = Environment()
    resource = Resource(env, capacity=1)
    order = []

    def user(env, tag):
        with resource.request() as request:
            yield request
            order.append(tag)
            yield env.timeout(1.0)

    for tag in ("first", "second", "third"):
        env.process(user(env, tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_context_manager_releases():
    env = Environment()
    resource = Resource(env, capacity=1)

    def user(env):
        with resource.request() as request:
            yield request
            yield env.timeout(1.0)

    env.process(user(env))
    env.run()
    assert resource.count == 0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_withdraw_queued_request():
    env = Environment()
    resource = Resource(env, capacity=1)
    holder = resource.request()
    queued = resource.request()
    assert queued in resource.queue
    resource.release(queued)
    assert queued not in resource.queue
    assert resource.count == 1


def test_priority_resource_orders_queue():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with resource.request(priority=0) as request:
            yield request
            yield env.timeout(10.0)

    def contender(env, tag, priority, delay):
        yield env.timeout(delay)
        with resource.request(priority=priority) as request:
            yield request
            order.append(tag)
            yield env.timeout(1.0)

    env.process(holder(env))
    env.process(contender(env, "low", 5, 1.0))
    env.process(contender(env, "high", 1, 2.0))
    env.run()
    assert order == ["high", "low"]


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in ("x", "y", "z"):
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append((env.now, item))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [item for _, item in received] == ["x", "y", "z"]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    times = []

    def consumer(env):
        item = yield store.get()
        times.append((env.now, item))

    def producer(env):
        yield env.timeout(4.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert times == [(4.0, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    progress = []

    def producer(env):
        yield store.put("a")
        progress.append(("a", env.now))
        yield store.put("b")
        progress.append(("b", env.now))

    def consumer(env):
        yield env.timeout(3.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert progress == [("a", 0.0), ("b", 3.0)]


def test_store_filter_get():
    env = Environment()
    store = Store(env)

    def root(env):
        yield store.put({"kind": "video", "n": 1})
        yield store.put({"kind": "audio", "n": 2})
        item = yield store.get(filter=lambda m: m["kind"] == "audio")
        return item["n"]

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == 2


def test_store_get_cancel():
    env = Environment()
    store = Store(env)
    getter = store.get()
    getter.cancel()
    store.put("item")
    env.run()
    assert store.items == ["item"]


def test_container_levels():
    env = Environment()
    container = Container(env, capacity=10, init=5)
    assert container.level == 5

    def root(env):
        yield container.get(3)
        assert container.level == 2
        yield container.put(8)
        assert container.level == 10

    proc = env.process(root(env))
    env.run(proc)


def test_container_get_blocks_until_available():
    env = Environment()
    container = Container(env, capacity=10, init=0)
    times = []

    def taker(env):
        yield container.get(4)
        times.append(env.now)

    def giver(env):
        yield env.timeout(2.0)
        yield container.put(4)

    env.process(taker(env))
    env.process(giver(env))
    env.run()
    assert times == [2.0]


def test_container_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Container(env, capacity=0)
    with pytest.raises(SimulationError):
        Container(env, capacity=5, init=9)
    container = Container(env, capacity=5)
    with pytest.raises(SimulationError):
        container.put(0)
    with pytest.raises(SimulationError):
        container.get(-1)
