"""Tests for random streams and measurement monitors."""

import pytest

from repro.sim import (
    Counter,
    RandomStreams,
    Tally,
    TimeSeries,
    bounded_normal,
    exponential,
    histogram,
    weighted_choice,
    zipf_index,
)


def test_streams_are_deterministic():
    a = RandomStreams(seed=7).stream("net")
    b = RandomStreams(seed=7).stream("net")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_differ_by_name():
    streams = RandomStreams(seed=7)
    assert streams.stream("net").random() != streams.stream("users").random()


def test_streams_differ_by_seed():
    a = RandomStreams(seed=1).stream("net").random()
    b = RandomStreams(seed=2).stream("net").random()
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(seed=3)
    assert streams.stream("x") is streams.stream("x")


def test_fork_derives_independent_factory():
    parent = RandomStreams(seed=5)
    child1 = parent.fork("siteA")
    child2 = parent.fork("siteB")
    assert child1.seed != child2.seed
    assert parent.fork("siteA").seed == child1.seed


def test_exponential_mean_roughly_correct():
    rng = RandomStreams(seed=11).stream("exp")
    draws = [exponential(rng, 2.0) for _ in range(20000)]
    mean = sum(draws) / len(draws)
    assert 1.9 < mean < 2.1


def test_exponential_non_positive_mean():
    rng = RandomStreams(seed=1).stream("e")
    assert exponential(rng, 0) == 0.0
    assert exponential(rng, -5) == 0.0


def test_bounded_normal_respects_bounds():
    rng = RandomStreams(seed=13).stream("bn")
    draws = [bounded_normal(rng, 0.0, 10.0, low=-1.0, high=1.0)
             for _ in range(1000)]
    assert all(-1.0 <= d <= 1.0 for d in draws)


def test_zipf_concentrates_on_low_indices():
    rng = RandomStreams(seed=17).stream("z")
    draws = [zipf_index(rng, 100, skew=1.5) for _ in range(5000)]
    head = sum(1 for d in draws if d < 10)
    assert head > len(draws) * 0.5


def test_zipf_uniform_when_skew_zero():
    rng = RandomStreams(seed=19).stream("z0")
    draws = [zipf_index(rng, 10, skew=0) for _ in range(5000)]
    head = sum(1 for d in draws if d < 5)
    assert 0.4 < head / len(draws) < 0.6


def test_zipf_invalid_n():
    rng = RandomStreams(seed=1).stream("z")
    with pytest.raises(ValueError):
        zipf_index(rng, 0)


def test_weighted_choice_prefers_heavy_items():
    rng = RandomStreams(seed=23).stream("w")
    draws = [weighted_choice(rng, ["a", "b"], [9.0, 1.0])
             for _ in range(2000)]
    assert draws.count("a") > 1500


def test_weighted_choice_validation():
    rng = RandomStreams(seed=1).stream("w")
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        weighted_choice(rng, [], [])
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a"], [0.0])


def test_tally_statistics():
    tally = Tally("latency")
    for value in (1.0, 2.0, 3.0, 4.0):
        tally.record(value)
    assert tally.count == 4
    assert tally.mean == 2.5
    assert tally.minimum == 1.0
    assert tally.maximum == 4.0
    assert tally.median == 2.5
    assert tally.total == 10.0


def test_tally_empty_is_safe():
    tally = Tally()
    assert tally.mean == 0.0
    assert tally.stddev == 0.0
    assert tally.percentile(95) == 0.0


def test_tally_percentile_interpolates():
    tally = Tally()
    for value in range(1, 101):
        tally.record(float(value))
    assert abs(tally.percentile(50) - 50.5) < 1e-9
    assert tally.percentile(0) == 1.0
    assert tally.percentile(100) == 100.0


def test_tally_percentile_validation():
    tally = Tally()
    tally.record(1.0)
    with pytest.raises(ValueError):
        tally.percentile(150)


def test_tally_summary_keys():
    tally = Tally()
    tally.record(5.0)
    summary = tally.summary()
    assert set(summary) == {"count", "mean", "min", "max", "median",
                            "p95", "stddev"}


def test_counter_increments():
    counter = Counter()
    counter.incr("messages")
    counter.incr("messages", by=4)
    assert counter["messages"] == 5
    assert counter["unknown"] == 0
    assert counter.as_dict() == {"messages": 5}


def test_timeseries_time_weighted_mean():
    series = TimeSeries("queue")
    series.record(0.0, 0.0)
    series.record(5.0, 10.0)
    series.record(10.0, 0.0)
    # value 0 for 5s then 10 for 5s => mean 5 over [0, 10]
    assert series.time_weighted_mean() == 5.0


def test_timeseries_extends_to_until():
    series = TimeSeries()
    series.record(0.0, 2.0)
    assert series.time_weighted_mean(until=10.0) == 2.0


def test_timeseries_rejects_backwards_time():
    series = TimeSeries()
    series.record(5.0, 1.0)
    with pytest.raises(ValueError):
        series.record(4.0, 1.0)


def test_timeseries_max_and_values():
    series = TimeSeries()
    series.record(0.0, 1.0)
    series.record(1.0, 9.0)
    assert series.max() == 9.0
    assert series.values() == [1.0, 9.0]


def test_histogram_bins_values():
    bins = histogram([0.0, 1.0, 2.0, 3.0, 4.0], bins=5)
    assert len(bins) == 5
    assert sum(count for _, _, count in bins) == 5


def test_histogram_empty():
    assert histogram([], bins=4) == []


def test_histogram_degenerate_range():
    bins = histogram([2.0, 2.0], bins=4)
    assert bins == [(2.0, 2.0, 2)]


def test_histogram_invalid_bins():
    with pytest.raises(ValueError):
        histogram([1.0], bins=0)


def test_histogram_reports_underflow_and_overflow():
    # low/high narrower than the data: out-of-range values must not be
    # silently clamped into the edge bins.
    bins = histogram([-5.0, 0.5, 1.5, 3.0, 9.0, 12.0], bins=2,
                     low=0.0, high=2.0)
    assert bins[0] == (float("-inf"), 0.0, 1)
    assert bins[-1] == (2.0, float("inf"), 3)
    regular = bins[1:-1]
    assert [count for _, _, count in regular] == [1, 1]
    assert sum(count for _, _, count in bins) == 6


def test_histogram_no_overflow_bins_when_range_covers_data():
    bins = histogram([0.0, 1.0, 2.0], bins=2, low=0.0, high=2.0)
    assert len(bins) == 2
    # A value equal to ``high`` still lands in the last regular bin.
    assert bins[-1][2] == 2


def test_histogram_degenerate_range_with_out_of_range_values():
    bins = histogram([1.0, 2.0, 2.0, 3.0], bins=4, low=2.0, high=2.0)
    assert bins == [(float("-inf"), 2.0, 1), (2.0, 2.0, 2),
                    (2.0, float("inf"), 1)]
