"""Tests for resource/store observability hooks and per-instance tickets."""

from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim import Environment, PriorityResource, Resource, Store


def drive(env, steps):
    env.run()
    return steps


def test_named_resource_records_queue_depth_and_wait():
    env = Environment()
    registry = MetricsRegistry()
    resource = Resource(env, capacity=1, name="cpu")

    def worker(env):
        with resource.request() as claim:
            yield claim
            yield env.timeout(2.0)

    with use_metrics(registry):
        env.process(worker(env))
        env.process(worker(env))
        env.run()

    snapshot = registry.snapshot()
    wait = snapshot["histograms"]["resource.wait{resource=cpu}"]
    assert wait["count"] == 2
    # First grant is immediate, the second waits the full hold.
    assert wait["max"] == 2.0
    gauge = registry.gauge("resource.queue_depth", resource="cpu")
    assert gauge.series.samples  # sampled on enqueue and dequeue
    assert gauge.last == 0


def test_unnamed_resource_records_nothing():
    env = Environment()
    registry = MetricsRegistry()
    resource = Resource(env, capacity=1)

    def worker(env):
        with resource.request() as claim:
            yield claim
            yield env.timeout(1.0)

    with use_metrics(registry):
        env.process(worker(env))
        env.process(worker(env))
        env.run()

    snapshot = registry.snapshot()
    assert snapshot["histograms"] == {}
    assert snapshot["gauges"] == {}


def test_named_store_records_depth_and_get_wait():
    env = Environment()
    registry = MetricsRegistry()
    store = Store(env, name="inbox")

    def consumer(env):
        yield store.get()

    def producer(env):
        yield env.timeout(3.0)
        yield store.put("message")

    with use_metrics(registry):
        env.process(consumer(env))
        env.process(producer(env))
        env.run()

    snapshot = registry.snapshot()
    wait = snapshot["histograms"]["store.wait{store=inbox}"]
    assert wait["count"] == 1
    assert wait["max"] == 3.0
    assert snapshot["gauges"]["store.depth{store=inbox}"] == 0


def test_priority_tickets_are_per_instance():
    env = Environment()
    first = PriorityResource(env, capacity=1)
    second = PriorityResource(env, capacity=1)
    # Exhausting tickets on one resource must not advance the other's
    # sequence: the tie-break counter is instance state, not module
    # state, so experiments sharing a process stay independent.
    for _ in range(5):
        next(first._ticket)
    assert next(second._ticket) == 1


def test_priority_order_still_respected_with_metrics():
    env = Environment()
    registry = MetricsRegistry()
    resource = PriorityResource(env, capacity=1, name="link")
    order = []

    def worker(env, label, priority):
        claim = resource.request(priority=priority)
        yield claim
        order.append(label)
        yield env.timeout(1.0)
        resource.release(claim)

    with use_metrics(registry):
        env.process(worker(env, "first", 5))

        def late(env):
            yield env.timeout(0.1)
            env.process(worker(env, "urgent", 0))
            env.process(worker(env, "relaxed", 9))

        env.process(late(env))
        env.run()

    assert order == ["first", "urgent", "relaxed"]
    wait = registry.snapshot()["histograms"]["resource.wait{resource=link}"]
    assert wait["count"] == 3
