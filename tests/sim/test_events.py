"""Tests for event primitives: triggering, conditions, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


def test_event_lifecycle():
    env = Environment()
    event = env.event()
    assert not event.triggered
    assert not event.processed
    event.succeed("v")
    assert event.triggered
    env.run()
    assert event.processed
    assert event.ok
    assert event.value == "v"


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_fail_requires_exception_instance():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        event.fail("not an exception")


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    event = env.event()
    caught = []

    def waiter(env):
        try:
            yield event
        except RuntimeError as error:
            caught.append(str(error))

    env.process(waiter(env))

    def failer(env):
        yield env.timeout(1.0)
        event.fail(RuntimeError("bad"))

    env.process(failer(env))
    env.run()
    assert caught == ["bad"]


def test_unhandled_failed_event_escalates():
    env = Environment()
    event = env.event()
    event.fail(RuntimeError("unseen"))
    with pytest.raises(RuntimeError, match="unseen"):
        env.run()


def test_all_of_waits_for_every_event():
    env = Environment()

    def root(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == (3.0, ["a", "b"])


def test_any_of_fires_on_first_event():
    env = Environment()

    def root(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == (1.0, ["fast"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def root(env):
        yield env.all_of([])
        return env.now

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == 0.0


def test_interrupt_wakes_waiting_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    sleeping = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(2.0)
        sleeping.interrupt(cause="wake-up")

    env.process(interrupter(env))
    env.run()
    assert log == [(2.0, "wake-up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()
    errors = []

    def selfish(env):
        try:
            env.active_process.interrupt()
        except SimulationError:
            errors.append(True)
        yield env.timeout(0)

    env.process(selfish(env))
    env.run()
    assert errors == [True]


def test_process_is_alive_and_name():
    env = Environment()

    def named_proc(env):
        yield env.timeout(1.0)

    proc = env.process(named_proc(env))
    assert proc.is_alive
    assert proc.name == "named_proc"
    env.run()
    assert not proc.is_alive


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(42)


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def resilient(env):
        try:
            yield env.timeout(50.0)
        except Interrupt:
            trace.append("interrupted at {}".format(env.now))
        yield env.timeout(1.0)
        trace.append("resumed until {}".format(env.now))

    proc = env.process(resilient(env))

    def poker(env):
        yield env.timeout(3.0)
        proc.interrupt()

    env.process(poker(env))
    env.run()
    assert trace == ["interrupted at 3.0", "resumed until 4.0"]


def test_yield_already_processed_event_continues_immediately():
    env = Environment()

    def root(env):
        t = env.timeout(1.0, value="x")
        yield env.timeout(5.0)  # t fires and is processed meanwhile
        value = yield t
        return (env.now, value)

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == (5.0, "x")
