"""The calendar queue must be indistinguishable from the binary heap.

The ladder/calendar queue (PR 10) replaces the packed heap behind the
same :class:`Environment` API.  These tests pin the contract down:
identical ``(time, priority, eid)`` dispatch order on adversarial
schedules, identical counters, and correct re-anchoring under skewed
delay distributions — with the heap kept alive as the reference.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Event
from repro.sim.environment import (
    dispatch_parts,
    set_default_scheduler,
    use_scheduler,
)
from repro.sim.events import NORMAL, URGENT


def _drain_order(env):
    """Drain ``env`` one step at a time, logging (now, value) pairs."""
    order = []
    while env.peek() != float("inf"):
        env.step()
        order.append(env.now)
    return order


def _schedule_tagged(env, entries):
    """Queue one valued event per (delay, priority, tag) entry."""
    fired = []
    for delay, priority, tag in entries:
        event = Event(env)
        event._ok = True
        event.callbacks.append(
            lambda _e, tag=tag: fired.append((env.now, tag)))
        env.schedule(event, priority=priority, delay=delay)
    return fired


@pytest.mark.parametrize("seed", [0, 7, 31])
def test_dispatch_order_matches_heap_on_random_schedules(seed):
    rng = random.Random(seed)
    entries = []
    for tag in range(500):
        delay = rng.choice([0.0, rng.random() * 1e-4,
                            rng.random(), rng.random() * 100.0])
        priority = rng.choice([URGENT, NORMAL, NORMAL, NORMAL])
        entries.append((delay, priority, tag))

    logs = {}
    for scheduler in ("heap", "calendar"):
        env = Environment(scheduler=scheduler)
        fired = _schedule_tagged(env, entries)
        env.run_all()
        logs[scheduler] = fired
        assert env.events_processed == len(entries)
    assert logs["calendar"] == logs["heap"]


def test_same_instant_fifo_with_urgent_first():
    """At one instant: URGENT beats NORMAL, then strict schedule order."""
    env = Environment()
    fired = _schedule_tagged(
        env, [(0.5, NORMAL, "n0"), (0.5, URGENT, "u0"),
              (0.5, NORMAL, "n1"), (0.5, URGENT, "u1"),
              (0.5, NORMAL, "n2")])
    env.run_all()
    assert [tag for _, tag in fired] == ["u0", "u1", "n0", "n1", "n2"]


@pytest.mark.parametrize("seed", [1, 13])
def test_zipf_skewed_delays_reanchor_correctly(seed):
    """Heavy-tailed delays force re-anchors; order must survive them."""
    rng = random.Random(seed)
    entries = []
    for tag in range(2000):
        # Zipf-ish: most events near now, a long tail far out.
        delay = 0.001 / (1.0 - rng.random()) ** 1.5
        entries.append((min(delay, 1e6), NORMAL, tag))

    logs = {}
    for scheduler in ("heap", "calendar"):
        env = Environment(scheduler=scheduler)
        fired = _schedule_tagged(env, entries)
        env.run_all(limit=float("inf"))
        logs[scheduler] = fired
    assert logs["calendar"] == logs["heap"]


def test_dense_same_time_burst_is_served_in_order():
    """A zero-span epoch (every event at one instant) cannot be split
    by any bucket width — it must degrade to one sorted run."""
    env = Environment()
    fired = _schedule_tagged(
        env, [(1.0, NORMAL, tag) for tag in range(5000)])
    env.run()
    with pytest.raises(Exception):
        env.step()  # queue is dry
    assert [tag for _, tag in fired] == list(range(5000))


def test_interleaved_push_during_drain_lands_in_run():
    """Callbacks that schedule into the current run's window must have
    their events served this pass, in order, not postponed."""
    env = Environment()
    seen = []

    def chain(env, depth):
        seen.append(env.now)
        if depth:
            yield env.timeout(0.0001)
            yield from chain(env, depth - 1)

    env.process(chain(env, 50))
    env.run()
    assert len(seen) == 51
    assert seen == sorted(seen)


def test_peek_step_run_all_agree_with_heap():
    entries = [(d, NORMAL, i)
               for i, d in enumerate([3.0, 1.0, 2.0, 1.0, 0.0])]
    times = {}
    for scheduler in ("heap", "calendar"):
        env = Environment(scheduler=scheduler)
        _schedule_tagged(env, entries)
        peeked = []
        while env.peek() != float("inf"):
            peeked.append(env.peek())
            env.step()
        times[scheduler] = peeked
    assert times["calendar"] == times["heap"] == [0.0, 1.0, 1.0, 2.0, 3.0]


def test_bootstrap_and_drained_queue_reset():
    """A fresh environment (and a fully drained one) must route pushes
    through the unanchored bootstrap without stale windows."""
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(5.0)
    env.run_all()
    assert env.now == 5.0
    # Drained: the next push must not index a stale bucket window.
    env.timeout(0.5)
    env.run_all()
    assert env.now == 5.5
    assert env.stats()["queue_depth"] == 0


def test_queue_depth_counts_run_buckets_and_overflow():
    env = Environment()
    for delay in (0.1, 1.0, 10.0, 1000.0):
        env.timeout(delay)
    assert env.stats()["queue_depth"] == 4
    env.step()
    assert env.stats()["queue_depth"] == 3


def test_dispatch_parts_roundtrip():
    from repro.sim.environment import _PRIORITY_SHIFT
    assert dispatch_parts((URGENT << _PRIORITY_SHIFT) | 7) == (URGENT, 7)
    assert dispatch_parts((NORMAL << _PRIORITY_SHIFT) | 42) == (NORMAL, 42)


def test_scheduler_selection_and_default():
    assert Environment().scheduler == "calendar"
    assert Environment(scheduler="heap").scheduler == "heap"
    with use_scheduler("heap"):
        assert Environment().scheduler == "heap"
    assert Environment().scheduler == "calendar"
    with pytest.raises(SimulationError):
        Environment(scheduler="splay")
    with pytest.raises(SimulationError):
        set_default_scheduler("splay")


def test_counters_identical_across_schedulers():
    def drive(scheduler):
        with use_scheduler(scheduler):
            env = Environment()

            def worker(env):
                for _ in range(20):
                    yield env.timeout(0.01)

            for _ in range(5):
                env.process(worker(env))
            env.run(until=0.15)
            return env.stats()

    assert drive("calendar") == drive("heap")


def test_far_future_and_huge_times_do_not_break_order():
    """Times near the float ceiling park in the overflow and still
    drain in order (the index arithmetic must not overflow)."""
    env = Environment()
    fired = _schedule_tagged(
        env, [(1e300, NORMAL, "far"), (1.0, NORMAL, "near"),
              (1e305, NORMAL, "farther")])
    env.run_all(limit=float("inf"))
    assert [tag for _, tag in fired] == ["near", "far", "farther"]
