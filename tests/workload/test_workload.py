"""Tests for the synthetic workload generators."""

import pytest

from repro.concurrency import StructuredDocument
from repro.errors import ReproError
from repro.workload import (
    EditingWorkload,
    SessionChurn,
    conflict_rate,
)


def test_workload_validation():
    with pytest.raises(ReproError):
        EditingWorkload([])
    with pytest.raises(ReproError):
        EditingWorkload(["a"], think_mean=0)
    with pytest.raises(ReproError):
        EditingWorkload(["a"], duration=0)


def test_workload_deterministic_for_seed():
    users = ["alice", "bob"]
    first = EditingWorkload(users, seed=42).generate()
    second = EditingWorkload(users, seed=42).generate()
    assert [(e.user, e.at, e.position, e.span) for e in first] == \
        [(e.user, e.at, e.position, e.span) for e in second]


def test_workload_changes_with_seed():
    users = ["alice", "bob"]
    a = EditingWorkload(users, seed=1).generate()
    b = EditingWorkload(users, seed=2).generate()
    assert [(e.at, e.position) for e in a] != \
        [(e.at, e.position) for e in b]


def test_workload_events_time_ordered_and_bounded():
    workload = EditingWorkload(["a", "b", "c"], duration=100.0, seed=3)
    events = workload.generate()
    assert events
    times = [event.at for event in events]
    assert times == sorted(times)
    assert all(0 <= event.at < 100.0 for event in events)
    doc = workload.document
    assert all(0 <= event.position
               and event.position + event.span <= doc.total_words
               for event in events)


def test_workload_event_word_range():
    from repro.workload import EditEvent

    event = EditEvent("a", 1.0, 10, 3, 2.0)
    assert list(event.word_range()) == [10, 11, 12]


def test_hotspot_skew_raises_conflicts():
    doc = StructuredDocument()
    users = ["a", "b", "c", "d"]
    uniform = EditingWorkload(users, document=doc, hotspot_skew=0.0,
                              duration=200.0, seed=5).generate()
    skewed = EditingWorkload(users, document=doc, hotspot_skew=2.0,
                             duration=200.0, seed=5).generate()
    uniform_rate = conflict_rate(uniform, doc, "paragraph")
    skewed_rate = conflict_rate(skewed, doc, "paragraph")
    assert skewed_rate > uniform_rate


def test_conflict_rate_granularity_monotone():
    doc = StructuredDocument()
    events = EditingWorkload(["a", "b", "c"], document=doc,
                             hotspot_skew=1.0, duration=200.0,
                             seed=7).generate()
    coarse = conflict_rate(events, doc, "section")
    fine = conflict_rate(events, doc, "word")
    assert coarse >= fine


def test_conflict_rate_empty():
    assert conflict_rate([], StructuredDocument(), "word") == 0.0


def test_churn_validation():
    with pytest.raises(ReproError):
        SessionChurn([])
    with pytest.raises(ReproError):
        SessionChurn(["a"], mean_present=0)


def test_churn_alternates_join_leave():
    churn = SessionChurn(["alice"], duration=500.0, seed=1)
    events = [e for e in churn.generate() if e.user == "alice"]
    kinds = [event.kind for event in events]
    assert kinds[0] == "join"
    assert all(a != b for a, b in zip(kinds, kinds[1:]))


def test_churn_deterministic():
    a = SessionChurn(["x", "y"], seed=9).generate()
    b = SessionChurn(["x", "y"], seed=9).generate()
    assert [(e.at, e.user, e.kind) for e in a] == \
        [(e.at, e.user, e.kind) for e in b]


def test_churn_presence_at():
    churn = SessionChurn(["alice", "bob"], duration=100.0, seed=2)
    present = churn.presence_at(0.5)
    assert set(present) <= {"alice", "bob"}
    # Everyone joins at t=0, so just after that all are present.
    assert churn.presence_at(0.0001) == ["alice", "bob"]
