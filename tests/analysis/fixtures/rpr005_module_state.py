"""RPR005 fixture: module-level mutable state."""

import itertools

_ids = itertools.count(1)  # expect: RPR005
cache = {}  # expect: RPR005
pending = []  # expect: RPR005
registry = dict()  # expect: RPR005

LEVELS = {"low": 0, "high": 1}  # negative: UPPER_CASE constant

_quiet_ids = itertools.count(1)  # repro: allow-RPR005  # suppressed: RPR005


def uses():
    local_cache = {}  # negative: function-local state is fine
    return local_cache, next(_ids), cache, pending, registry, _quiet_ids
