"""RPR006 fixture: float equality on simulated time."""


def fire_exact(env, deadline):
    return env.now == deadline  # expect: RPR006


def fire_changed(env, deadline):
    return env.now != deadline  # expect: RPR006


def fire_bound(env, deadline):
    return env.now >= deadline  # negative: bound comparison is safe


def quantised(env, step):
    return env.now == step  # repro: allow-RPR006  # suppressed: RPR006
