"""Taint fixtures: nondeterminism laundered through helper returns.

The per-line linter sees ``time.time()`` only where it textually sits;
the taint pass must follow the value through helper returns and report
the *call site* in the consuming function, with the source->sink chain.
Kept in a subdirectory so the per-file lint fixture tests (which assert
RPR0xx markers exactly) never load it.  Never import this module.
"""

import random
import time


def _now():
    return time.time()  # the RPR101 source (lint flags RPR001 here)


def _stamp():
    return _now()  # middle helper: tainted but not reported


def _jitter():
    return random.random() * 2  # the RPR102 source


def _members_list(members):
    return list(set(members))  # the RPR103 source


def record(log):
    log.append(_stamp())  # expect: RPR101
    log.append(_jitter())  # expect: RPR102
    return log


def fanout(members):
    for member in _members_list(members):  # expect: RPR103
        print(member)


def fire_and_forget():
    _stamp()  # negative: result discarded, nothing laundered
    return None


def _sanctioned(members):
    return list(set(members))  # repro: allow-RPR003 (waived source)


def tolerated(members):
    return len(_sanctioned(members))  # negative: waived at the source


def silenced(log):
    log.append(_stamp())  # repro: allow-RPR101  # suppressed: RPR101
    return log
