"""Protocol fixtures: generator actors breaking the kernel contract.

Each positive line is marked ``# expect: CODE``; unmarked lines are
negatives the checker must stay silent on.  Never import this module.
"""


def impatient(env):
    env.timeout(5)  # expect: RPR201
    yield env.timeout(1)


def stuck(env):
    yield env.timeout(1)
    yield  # expect: RPR202


def chatty(env):
    yield env.timeout(1)
    yield 42  # expect: RPR202


def double(env, event):
    yield env.timeout(1)
    event.succeed(1)
    event.succeed(2)  # expect: RPR203


def branchy(env, event):
    yield env.timeout(1)
    if env.now > 5.0:
        event.fail(ValueError("late"))
    event.succeed(3)  # expect: RPR203


def loop_double(env, event):
    for _ in range(3):
        yield env.timeout(1)
        event.succeed(True)  # expect: RPR203


def reentrant(env):
    yield env.timeout(1)
    env.run()  # expect: RPR204


def early_exit(env, event):
    yield env.timeout(1)
    if env.now > 5.0:
        event.fail(ValueError("late"))  # negative: path returns
        return
    event.succeed(3)  # negative: fail path already exited


def fresh_each_round(env, factory):
    for _ in range(3):
        done = factory()  # negative: fresh event per iteration
        yield env.timeout(1)
        done.succeed(True)


def make_generator(env):
    if env is None:
        return iter(())
    return _make(env)
    yield  # negative: the return-then-yield generator idiom


def _make(env):
    yield env.timeout(1)


def plain_iterator(items):
    for item in items:
        yield item  # negative: not an actor (no env reference)


def tolerated(env):
    yield env.timeout(1)
    yield  # repro: allow-RPR202  # suppressed: RPR202


# repro: fast-path — per-packet hot loop, no context-manager claims.
def hot_claim(table, packet):
    with table.request(packet.src):  # expect: RPR204
        return packet


def cool_claim(table, packet):
    with table.request(packet.src):  # negative: not marked fast-path
        return packet


# repro: fast-path — generator actors get both walks: the claim check
# AND the actor re-entrancy check.
def hot_carrier(env, channel):
    with channel.acquire():  # expect: RPR204
        yield env.timeout(1)
    env.run()  # expect: RPR204


# repro: fast-path — explicit claim/release is the sanctioned shape
# (what network._carry does); the checker must stay silent on it.
def hot_explicit(env, channel):
    claim = channel.request(0)
    yield claim
    channel.release(claim)


# repro: fast-path
def hot_tolerated(table, packet):
    with table.request(packet.src):  # repro: allow-RPR204  # suppressed: RPR204
        return packet


# repro: fast-path — non-claim context managers (locks are claims;
# spans are not) never trip the fast-path rule.
def hot_span(tracer, packet):
    with tracer.span("hop"):
        return packet
