"""RPR004 fixture: id()-based ordering, comparison or hashing."""


def order(objects):
    return sorted(objects, key=id)  # expect: RPR004


def order_in_place(objects):
    objects.sort(key=lambda o: (id(o), 0))  # expect: RPR004


def bucket(obj):
    return hash(id(obj))  # expect: RPR004


def same(a, b):
    return id(a) == id(b)  # expect: RPR004


def stable(objects):
    return sorted(objects, key=lambda o: o.name)  # negative: stable key


def tolerated(a, b):
    return id(a) < id(b)  # repro: allow-RPR004  # suppressed: RPR004
