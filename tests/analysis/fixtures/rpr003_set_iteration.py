"""RPR003 fixture: iteration over an unordered set."""


def visit(members, extras):
    for member in {"ann", "bob"}:  # expect: RPR003
        print(member)
    names = [m for m in set(members)]  # expect: RPR003
    merged = list(set(members) | extras)  # expect: RPR003
    return names, merged


def ordered(members):
    for member in sorted(set(members)):  # negative: sorted first
        print(member)
    return [m for m in members]  # negative: a list, not a set


def tolerated():
    for member in {1, 2}:  # repro: allow-RPR003  # suppressed: RPR003
        print(member)
