"""RPR003 regression fixture: order-insensitive wrappers are exempt.

``sorted(...)`` (and min/max/sum/len/any/all/set/frozenset) impose or
ignore order, so set materialisation *inside their arguments* is not a
hash-order hazard.  These were historically reported; keep them silent.
"""


def collapsed(members, weights):
    ordered = sorted(list(set(members)))  # negative: sorted wrapper
    ranked = sorted([m for m in set(members)])  # negative: sorted wrapper
    table = sorted(dict(weights).items())  # negative: items, not a set
    first = min(list(set(members)))  # negative: min is order-insensitive
    count = len(list(set(members) | set(weights)))  # negative: len wrapper
    return ordered, ranked, table, first, count


def still_flagged(members):
    names = list(set(members))  # expect: RPR003
    pairs = list(enumerate(set(members)))  # expect: RPR003
    copies = [m for m in set(members)]  # expect: RPR003
    return names, pairs, copies


def tolerated(members):
    return list(set(members))  # repro: allow-RPR003  # suppressed: RPR003
