# Lint fixtures: each module exercises one rule with positive lines
# (marked "# expect: CODE"), negative lines (no marker) and suppressed
# lines (marked "# suppressed: CODE" next to a "# repro: allow-..."
# comment).  test_lint.py parses the markers and asserts the linter
# reports exactly the marked findings.  Never import these modules.
