"""RPR001 fixture: wall-clock reads in simulator code."""

import datetime
import time


def stamp():
    started = time.time()  # expect: RPR001
    time.sleep(0.1)  # expect: RPR001
    precise = time.perf_counter()  # expect: RPR001
    when = datetime.datetime.now()  # expect: RPR001
    day = datetime.date.today()  # expect: RPR001
    return started, precise, when, day


def simulated(env):
    return env.now  # negative: the simulation clock is the only clock


def formatted(when):
    return when.strftime("%H:%M")  # negative: formatting, not reading


def allowed():
    return time.monotonic()  # repro: allow-RPR001  # suppressed: RPR001
