"""Lock-order fixtures: ABBA cycle, RPC-while-holding, clean patterns.

The cycle finding anchors at the acquisition completing the first edge
of the cycle (alphabetically-first lock held).  Never import this.
"""


class Worker:
    def __init__(self, table, rpc):
        self.table = table
        self.rpc = rpc

    def forward(self):
        a = self.table.acquire("alpha", "w1")
        b = self.table.acquire("beta", "w1")  # expect: RPR301
        self.table.release(b)
        self.table.release(a)

    def backward(self):
        b = self.table.acquire("beta", "w2")
        a = self.table.acquire("alpha", "w2")
        self.table.release(a)
        self.table.release(b)

    def chatty(self):
        grant = self.table.acquire("gamma", "w3")
        self.rpc.invoke("peer", "op", {})  # expect: RPR302
        grant.release()

    def disciplined(self):
        a = self.table.acquire("alpha", "w4")
        self.table.release(a)
        b = self.table.acquire("beta", "w4")  # negative: not nested
        self.table.release(b)

    def consistent_pair(self):
        first = self.table.acquire("delta", "w5")
        second = self.table.acquire("epsilon", "w5")  # negative: one order
        self.table.release(second)
        self.table.release(first)

    def also_consistent(self):
        first = self.table.acquire("delta", "w6")
        second = self.table.acquire("epsilon", "w6")  # negative: same order
        self.table.release(second)
        self.table.release(first)

    def scoped(self):
        with self.table.acquire("zeta", "w7"):
            pass
        with self.table.acquire("eta", "w7"):  # negative: with released
            pass

    def polite(self):
        grant = self.table.acquire("theta", "w8")
        grant.release()
        self.rpc.invoke("peer", "op", {})  # negative: released first


class Nested:
    """Acquire-through-callee: the edge crosses a resolved call."""

    def __init__(self, table):
        self.table = table

    def outer(self):
        grant = self.table.acquire("iota", "n1")
        self._inner()  # expect: RPR301
        grant.release()

    def _inner(self):
        grant = self.table.acquire("kappa", "n1")
        grant.release()

    def reversed_pair(self):
        grant = self.table.acquire("kappa", "n2")
        inner = self.table.acquire("iota", "n2")
        inner.release()
        grant.release()
