"""RPR002 fixture: RNG constructed or used outside sim.rng."""

import random
from random import choice


def roll():
    return random.random()  # expect: RPR002


def fresh_rng():
    return random.Random(7)  # expect: RPR002


def pick(options):
    return choice(options)  # expect: RPR002


def blessed(streams):
    return streams.stream("jitter").random()  # negative: named stream


def fallback():
    return random.Random(0)  # repro: allow-RPR002  # suppressed: RPR002
