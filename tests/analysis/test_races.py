"""Tests for the races report: the paper's Figure 2 argument in numbers.

Hard and tickle locks order every access (their conflicts are resolved
by the lock manager, invisibly to the users); soft locks surface both
write-write and read-write conflicts to the social protocol;
notification locks exclude writers from writers but let readers overlap
them.
"""

import io
import json

from repro.analysis import races
from repro.analysis.hb import get_sanitizer
from repro.analysis.races import conflict_sweep, main, render
from repro.concurrency.locks import HARD, NOTIFICATION, SOFT, TICKLE


def test_sweep_matches_the_lock_style_semantics():
    results = conflict_sweep(seed=31)
    hard = results[HARD]["conflicts"]
    tickle = results[TICKLE]["conflicts"]
    soft = results[SOFT]["conflicts"]
    notification = results[NOTIFICATION]["conflicts"]

    # Hard/tickle locks leave nothing unordered.
    assert hard["total"] == 0
    assert tickle["total"] == 0
    # Soft (advisory) locking surfaces strictly more conflicts than
    # hard locking on the same seed — the ISSUE acceptance criterion.
    assert soft["total"] > hard["total"]
    assert soft["write-write"] > 0
    assert soft["read-write"] > 0
    # Notification locks exclude writers only: readers overlap writers.
    assert notification["write-write"] == 0
    assert notification["read-write"] > 0


def test_tickle_resolves_idlers_by_takeover():
    results = conflict_sweep(seed=31, styles=[TICKLE])
    counters = results[TICKLE]["lock_counters"]
    assert counters.get("takeovers", 0) > 0


def test_sweep_isolates_the_global_sanitizer():
    before = get_sanitizer()
    conflict_sweep(seed=31, styles=[HARD])
    assert get_sanitizer() is before


def test_sweep_attaches_sanitizer_summary():
    results = conflict_sweep(seed=31, styles=[SOFT])
    summary = results[SOFT]["summary"]
    assert summary["accesses"] == len(results[SOFT]["accesses"])
    assert summary["conflicts"] == results[SOFT]["conflicts"]


def test_render_tabulates_every_style():
    results = conflict_sweep(seed=31)
    out = io.StringIO()
    render(results, out=out)
    text = out.getvalue()
    for style in (HARD, TICKLE, SOFT, NOTIFICATION):
        assert style in text
    assert "unresolved" in text


def test_cli_exits_zero(capsys):
    assert main(["--styles", HARD, SOFT]) == 0
    out = capsys.readouterr().out
    assert HARD in out and SOFT in out


def test_cli_format_json_includes_gate_meta(capsys):
    assert main(["--styles", HARD, "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["_meta"]["ok"] is True
    assert document["_meta"]["hard_conflicts"] == 0
    assert HARD in document


def test_cli_json_alias_still_works(capsys):
    assert main(["--styles", HARD, "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert "_meta" in document


def test_cli_exits_nonzero_on_hard_conflicts(monkeypatch, capsys):
    leaky = {
        HARD: {"conflicts": {"write-write": 1, "read-write": 0,
                             "total": 1},
               "accesses": [None] * 4,
               "lock_counters": {},
               "wait": {"mean": 0.0}},
    }
    monkeypatch.setattr(races, "conflict_sweep",
                        lambda seed, styles: leaky)
    assert main(["--styles", HARD]) == 1
    assert "regression" in capsys.readouterr().out
    assert main(["--styles", HARD, "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["_meta"]["ok"] is False
