"""Tests for the sim-protocol checker (actor contract, RPR2xx)."""

import os
import re
import textwrap

from repro.analysis import protocol
from repro.analysis.ir import RepoIndex

HERE = os.path.dirname(__file__)
FIXTURE_DIR = os.path.join(HERE, "fixtures", "protocol")
FIXTURE = os.path.join(FIXTURE_DIR, "actor_violations.py")

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPR\d+)")
_SUPPRESSED_RE = re.compile(r"#\s*suppressed:\s*(RPR\d+)")


def _markers(path, regex):
    marked = set()
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            match = regex.search(line)
            if match:
                marked.add((lineno, match.group(1)))
    return marked


def _analyse(paths):
    index = RepoIndex.build(paths)
    return index, protocol.analyse(index)


def _filtered(index, findings):
    return [finding for finding in findings
            if not finding.suppressed_by(
                index.modules[finding.path].suppressions)]


def test_fixture_findings_match_markers():
    index, findings = _analyse([FIXTURE_DIR])
    kept = _filtered(index, findings)
    assert {(f.line, f.code) for f in kept} == _markers(FIXTURE,
                                                        _EXPECT_RE)


def test_suppression_comment_respected():
    index, findings = _analyse([FIXTURE_DIR])
    raw = {(f.line, f.code) for f in findings}
    expected = _markers(FIXTURE, _EXPECT_RE) \
        | _markers(FIXTURE, _SUPPRESSED_RE)
    assert raw == expected


def test_actor_detection():
    index, _ = _analyse([FIXTURE_DIR])
    by_name = {info.name: info
               for info in index.modules[FIXTURE].functions}
    assert protocol.is_actor(by_name["impatient"])
    assert not protocol.is_actor(by_name["plain_iterator"])
    assert by_name["hot_claim"].fast_path
    assert not by_name["cool_claim"].fast_path
    # PR 10 fixtures: fast-path generators are actors *and* fast-path,
    # so they get both RPR204 walks; the explicit claim/release shape
    # (the burst carry's idiom) stays clean.
    assert by_name["hot_carrier"].fast_path
    assert protocol.is_actor(by_name["hot_carrier"])
    assert by_name["hot_explicit"].fast_path
    assert by_name["hot_span"].fast_path


def test_self_env_attribute_counts_as_actor():
    index = RepoIndex()
    index.add_source(textwrap.dedent("""
        class Node:
            def run(self):
                self.env.timeout(3)
                yield self.env.timeout(1)
        """), "src/repro/selfenv.py")
    findings = protocol.analyse(index)
    assert [f.code for f in findings] == ["RPR201"]


def test_trigger_then_return_is_one_path():
    index = RepoIndex()
    index.add_source(textwrap.dedent("""
        def actor(env, done):
            while True:
                yield env.timeout(1)
                if env.now > 3:
                    done.succeed(1)
                    return
            done.fail(ValueError())
        """), "src/repro/paths.py")
    assert protocol.analyse(index) == []


def test_loop_reassignment_resets_the_trigger_count():
    index = RepoIndex()
    index.add_source(textwrap.dedent("""
        def actor(env, pending):
            for event in pending:
                yield env.timeout(1)
                event.succeed(True)
        """), "src/repro/loopfresh.py")
    assert protocol.analyse(index) == []


def test_findings_carry_function_qualnames():
    _, findings = _analyse([FIXTURE_DIR])
    assert all(finding.function for finding in findings)
