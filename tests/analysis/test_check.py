"""Tests for the unified analyzer CLI: passes, formats, baseline, gate."""

import json
import os
import textwrap

import pytest

from repro.analysis import baseline as baseline_mod
from repro.analysis.check import PASS_NAMES, main, rules_meta, run_passes
from repro.analysis.ir import RepoIndex

HERE = os.path.dirname(__file__)
REPO_SRC = os.path.normpath(
    os.path.join(HERE, os.pardir, os.pardir, "src", "repro"))

DIRTY = """
import time


def _stamp():
    return time.time()


def consumer(log, env):
    log.append(_stamp())
    env.timeout(3)
    yield env.timeout(1)


def grabby(table):
    a = table.acquire("one", "w")
    b = table.acquire("two", "w")
    table.release(b)
    table.release(a)


def grabbier(table):
    b = table.acquire("two", "w")
    a = table.acquire("one", "w")
    table.release(a)
    table.release(b)
"""


@pytest.fixture
def dirty_tree(tmp_path):
    pkg = tmp_path / "src"
    pkg.mkdir()
    (pkg / "dirty.py").write_text(textwrap.dedent(DIRTY),
                                  encoding="utf-8")
    return str(pkg)


def _codes(findings):
    return sorted({finding.code for finding in findings})


# -- run_passes -------------------------------------------------------------

def test_all_passes_fire_on_the_dirty_tree(dirty_tree):
    findings, timings, _ = run_passes([dirty_tree])
    codes = _codes(findings)
    assert "RPR001" in codes   # lint: the wall-clock read itself
    assert "RPR101" in codes   # taint: laundered through _stamp()
    assert "RPR201" in codes   # protocol: discarded timeout
    assert "RPR301" in codes   # lockorder: ABBA cycle
    for name in PASS_NAMES:
        assert name in timings
    assert "index" in timings and "callgraph" in timings


def test_pass_subset_runs_only_requested(dirty_tree):
    findings, timings, _ = run_passes([dirty_tree], ["protocol"])
    assert _codes(findings) == ["RPR201"]
    assert "lint" not in timings and "taint" not in timings


def test_unknown_pass_raises(dirty_tree):
    with pytest.raises(ValueError):
        run_passes([dirty_tree], ["spelling"])


def test_rules_meta_covers_every_emitted_code(dirty_tree):
    findings, _, _ = run_passes([dirty_tree])
    meta = rules_meta()
    assert {finding.code for finding in findings} <= set(meta)
    for code, (summary, hint, severity) in meta.items():
        assert summary and hint
        assert severity in ("error", "warning")


def test_shipped_tree_is_clean():
    findings, _, _ = run_passes([REPO_SRC])
    assert findings == []


# -- the CLI ----------------------------------------------------------------

def test_cli_exit_codes(dirty_tree, capsys):
    assert main([dirty_tree]) == 1
    assert "RPR101" in capsys.readouterr().out
    assert main([REPO_SRC]) == 0


def test_cli_unknown_pass_exits_2(dirty_tree, capsys):
    assert main([dirty_tree, "--passes", "nope"]) == 2
    assert "unknown pass" in capsys.readouterr().err


def test_cli_list_passes(capsys):
    assert main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    for name in PASS_NAMES:
        assert name in out
    assert "RPR301" in out


def test_cli_json_format(dirty_tree, capsys):
    assert main([dirty_tree, "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["baselined"] == 0
    codes = {entry["code"] for entry in document["findings"]}
    assert "RPR101" in codes
    chained = next(entry for entry in document["findings"]
                   if entry["code"] == "RPR101")
    assert chained["chain"][-1]["note"]
    assert set(document["timings"]) >= set(PASS_NAMES)


def test_cli_timings_flag(dirty_tree, capsys):
    main([dirty_tree, "--timings"])
    assert "pass timings:" in capsys.readouterr().out


# -- SARIF ------------------------------------------------------------------

def _assert_sarif_shape(document):
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    assert isinstance(document["runs"], list) and len(document["runs"]) == 1
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"]
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "error", "warning", "note")
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        assert result["level"] in ("error", "warning", "note")
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert "\\" not in location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        assert result["partialFingerprints"]["reproAnalysis/v1"]


def test_cli_sarif_output(dirty_tree, tmp_path, capsys):
    out = tmp_path / "analysis.sarif"
    assert main([dirty_tree, "--format", "sarif",
                 "--out", str(out)]) == 1
    document = json.loads(out.read_text(encoding="utf-8"))
    _assert_sarif_shape(document)
    run = document["runs"][0]
    assert run["results"], "dirty tree must produce results"
    taint_result = next(result for result in run["results"]
                        if result["ruleId"] == "RPR101")
    related = taint_result["relatedLocations"]
    assert related and related[-1]["message"]["text"]
    timings = run["invocations"][0]["properties"]["passTimingsSeconds"]
    assert set(timings) >= set(PASS_NAMES)


def test_sarif_empty_run_still_validates(tmp_path, capsys):
    out = tmp_path / "clean.sarif"
    assert main([REPO_SRC, "--format", "sarif", "--out", str(out)]) == 0
    document = json.loads(out.read_text(encoding="utf-8"))
    _assert_sarif_shape(document)
    assert document["runs"][0]["results"] == []


# -- baseline ---------------------------------------------------------------

def test_baseline_roundtrip(dirty_tree, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main([dirty_tree, "--write-baseline", str(baseline)]) == 0
    recorded = json.loads(baseline.read_text(encoding="utf-8"))
    assert recorded["schema"] == baseline_mod.BASELINE_SCHEMA
    assert recorded["findings"]
    # With the baseline active the same tree gates clean.
    assert main([dirty_tree, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_new_findings_break_through_the_baseline(dirty_tree, tmp_path,
                                                 capsys):
    baseline = tmp_path / "baseline.json"
    assert main([dirty_tree, "--write-baseline", str(baseline)]) == 0
    extra = os.path.join(dirty_tree, "fresh.py")
    with open(extra, "w", encoding="utf-8") as handle:
        handle.write("import time\n\n\ndef f():\n"
                     "    return time.time()\n")
    assert main([dirty_tree, "--baseline", str(baseline)]) == 1
    assert "fresh.py" in capsys.readouterr().out


def test_missing_baseline_is_silently_ignored(dirty_tree, tmp_path):
    missing = tmp_path / "nope.json"
    assert main([dirty_tree, "--baseline", str(missing)]) == 1


def test_fingerprints_are_line_drift_stable():
    index = RepoIndex()
    source = "import time\n\n\ndef f():\n    return time.time()\n"
    index.add_source(source, "src/repro/drifty.py")
    findings, _, index = run_passes([], index=index)
    prints = baseline_mod.fingerprints(
        findings, {path: module.source
                   for path, module in index.modules.items()})
    shifted = RepoIndex()
    shifted.add_source("# a new comment line\n" + source,
                       "src/repro/drifty.py")
    shifted_findings, _, shifted = run_passes([], index=shifted)
    shifted_prints = baseline_mod.fingerprints(
        shifted_findings, {path: module.source
                           for path, module in shifted.modules.items()})
    assert sorted(prints.values()) == sorted(shifted_prints.values())


# -- syntax errors ----------------------------------------------------------

def test_unparseable_file_reports_rpr000(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert main([str(tmp_path)]) == 1
    assert "RPR000" in capsys.readouterr().out
