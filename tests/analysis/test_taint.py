"""Tests for the interprocedural nondeterminism taint pass."""

import os
import re
import textwrap

from repro.analysis import taint
from repro.analysis.callgraph import CallGraph
from repro.analysis.ir import RepoIndex

HERE = os.path.dirname(__file__)
FIXTURE_DIR = os.path.join(HERE, "fixtures", "taint")
FIXTURE = os.path.join(FIXTURE_DIR, "laundered_sources.py")

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPR\d+)")
_SUPPRESSED_RE = re.compile(r"#\s*suppressed:\s*(RPR\d+)")


def _markers(path, regex):
    marked = set()
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            match = regex.search(line)
            if match:
                marked.add((lineno, match.group(1)))
    return marked


def _analyse(paths):
    index = RepoIndex.build(paths)
    findings = taint.analyse(index, CallGraph(index))
    return index, findings


def _suppressed_filtered(index, findings):
    return [finding for finding in findings
            if not finding.suppressed_by(
                index.modules[finding.path].suppressions)]


def test_fixture_findings_match_markers():
    index, findings = _analyse([FIXTURE_DIR])
    kept = _suppressed_filtered(index, findings)
    assert {(f.line, f.code) for f in kept} == _markers(FIXTURE,
                                                        _EXPECT_RE)


def test_suppression_comment_silences_the_sink():
    index, findings = _analyse([FIXTURE_DIR])
    raw = {(f.line, f.code) for f in findings}
    expected = _markers(FIXTURE, _EXPECT_RE) \
        | _markers(FIXTURE, _SUPPRESSED_RE)
    assert raw == expected


def test_chain_walks_back_to_the_source():
    index, findings = _analyse([FIXTURE_DIR])
    with open(FIXTURE, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    source_line = next(lineno for lineno, line in enumerate(lines, 1)
                       if line.strip().startswith("return time.time()"))
    clock = [f for f in findings if f.code == "RPR101"]
    assert clock, "no RPR101 finding"
    for finding in clock:
        assert finding.chain, "interprocedural finding carries no chain"
        assert len(finding.chain) >= 2
        assert finding.chain[-1]["line"] == source_line
        assert all({"path", "line", "note"} <= set(step)
                   for step in finding.chain)


def test_chain_renders_in_text_output():
    _, findings = _analyse([FIXTURE_DIR])
    finding = next(f for f in findings if f.code == "RPR101")
    rendered = finding.render()
    assert "\n    " in rendered  # chain steps are indented follow-ups
    assert "time" in rendered


def test_waived_source_does_not_taint():
    """A source line carrying its own allow comment taints nothing."""
    index = RepoIndex()
    index.add_source(textwrap.dedent("""
        def _sanctioned():
            import time
            return time.time()  # repro: allow-RPR001

        def consumer(log):
            log.append(_sanctioned())
        """), "src/repro/waived.py")
    findings = taint.analyse(index, CallGraph(index))
    assert findings == []


def test_rng_home_module_is_exempt():
    index = RepoIndex()
    index.add_source(textwrap.dedent("""
        import random

        def draw():
            return random.random()
        """), "src/repro/sim/rng.py")
    index.add_source(textwrap.dedent("""
        from repro.sim.rng import draw

        def consumer(log):
            log.append(draw())
        """), "src/repro/user.py")
    findings = taint.analyse(index, CallGraph(index))
    assert [f.code for f in findings] == []


def test_taint_propagates_through_two_hops():
    index = RepoIndex()
    index.add_source(textwrap.dedent("""
        import time

        def _raw():
            return time.time()

        def _middle():
            value = _raw()
            return value

        def _top():
            return _middle()

        def consumer(log):
            log.append(_top())
        """), "src/repro/hops.py")
    findings = taint.analyse(index, CallGraph(index))
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "RPR101"
    assert finding.function == "repro.hops.consumer"
    assert len(finding.chain) >= 3
