"""Tests for the happens-before conflict sanitizer."""

from repro.analysis.hb import (
    HB_HEADER,
    NOOP_SANITIZER,
    ConflictSanitizer,
    NoopSanitizer,
    READ_WRITE,
    WRITE_WRITE,
    disable_sanitizer,
    enable_sanitizer,
    extract_clock,
    get_sanitizer,
    inject_clock,
    use_sanitizer,
)


def test_concurrent_writes_conflict():
    sanitizer = ConflictSanitizer()
    sanitizer.on_write("doc/s", "ann", at=1.0)
    sanitizer.on_write("doc/s", "bob", at=2.0)
    counts = sanitizer.conflict_counts()
    assert counts[WRITE_WRITE] == 1
    assert counts["total"] == 1
    assert sanitizer.conflicts[0].actors == ["ann", "bob"]


def test_read_after_unordered_write_conflicts():
    sanitizer = ConflictSanitizer()
    sanitizer.on_write("doc/s", "ann", at=1.0)
    sanitizer.on_read("doc/s", "bob", at=2.0)
    assert sanitizer.conflict_counts()[READ_WRITE] == 1


def test_write_after_unordered_read_conflicts():
    sanitizer = ConflictSanitizer()
    sanitizer.on_write("doc/s", "ann", at=1.0)
    sanitizer.on_read("doc/s", "bob", at=2.0)
    sanitizer.on_write("doc/s", "carol", at=3.0)
    counts = sanitizer.conflict_counts()
    # carol vs ann (ww), bob vs ann (rw), carol vs bob (rw).
    assert counts[WRITE_WRITE] == 1
    assert counts[READ_WRITE] == 2


def test_same_actor_never_conflicts_with_itself():
    sanitizer = ConflictSanitizer()
    sanitizer.on_write("doc/s", "ann", at=1.0)
    sanitizer.on_write("doc/s", "ann", at=2.0)
    sanitizer.on_read("doc/s", "ann", at=3.0)
    assert sanitizer.conflict_counts()["total"] == 0


def test_lock_handoff_orders_critical_sections():
    sanitizer = ConflictSanitizer()
    sanitizer.acquire("lock:s", "ann")
    sanitizer.on_write("doc/s", "ann", at=1.0)
    sanitizer.release("lock:s", "ann")
    sanitizer.acquire("lock:s", "bob")
    sanitizer.on_write("doc/s", "bob", at=2.0)
    sanitizer.release("lock:s", "bob")
    assert sanitizer.conflict_counts()["total"] == 0


def test_access_outside_the_lock_still_conflicts():
    sanitizer = ConflictSanitizer()
    sanitizer.acquire("lock:s", "ann")
    sanitizer.on_write("doc/s", "ann", at=1.0)
    sanitizer.release("lock:s", "ann")
    # bob writes without ever taking the lock: nothing ordered him.
    sanitizer.on_write("doc/s", "bob", at=2.0)
    assert sanitizer.conflict_counts()[WRITE_WRITE] == 1


def test_message_delivery_orders_accesses():
    sanitizer = ConflictSanitizer()
    sanitizer.on_write("doc/s", "ann", at=1.0)
    snapshot = sanitizer.send("ann")
    sanitizer.receive("bob", snapshot)
    sanitizer.on_write("doc/s", "bob", at=2.0)
    assert sanitizer.conflict_counts()["total"] == 0


def test_clock_snapshot_is_json_safe():
    sanitizer = ConflictSanitizer()
    sanitizer.local("ann")
    snapshot = sanitizer.send("ann")
    assert isinstance(snapshot, dict)
    assert all(isinstance(v, int) for v in snapshot.values())


def test_summary_shape():
    sanitizer = ConflictSanitizer()
    sanitizer.on_write("doc/s", "ann", at=1.0)
    sanitizer.on_write("doc/s", "bob", at=2.0)
    summary = sanitizer.summary()
    assert summary["accesses"] == 2
    assert summary["actors"] == ["ann", "bob"]
    assert summary["conflicts_by_object"] == {"doc/s": 1}
    trace = sanitizer.trace()
    assert trace == [[1.0, "ann", "write", "doc/s"],
                     [2.0, "bob", "write", "doc/s"]]


# -- global accessor / header plumbing --------------------------------------

def test_default_is_noop():
    assert get_sanitizer() is NOOP_SANITIZER
    assert not get_sanitizer().enabled


def test_enable_disable_roundtrip():
    sanitizer = enable_sanitizer()
    try:
        assert get_sanitizer() is sanitizer
        assert sanitizer.enabled
    finally:
        disable_sanitizer()
    assert get_sanitizer() is NOOP_SANITIZER


def test_use_sanitizer_restores_previous():
    with use_sanitizer(ConflictSanitizer()) as sanitizer:
        assert get_sanitizer() is sanitizer
    assert get_sanitizer() is NOOP_SANITIZER


def test_inject_extract_roundtrip_orders_actors():
    with use_sanitizer(ConflictSanitizer()) as sanitizer:
        sanitizer.on_write("doc/s", "ann", at=1.0)
        headers = inject_clock({"type": "request"}, "ann")
        assert HB_HEADER in headers
        extract_clock(headers, "bob")
        sanitizer.on_write("doc/s", "bob", at=2.0)
        assert sanitizer.conflict_counts()["total"] == 0


def test_inject_is_identity_when_disabled():
    headers = {"type": "request"}
    assert inject_clock(headers, "ann") is headers
    assert HB_HEADER not in headers
    extract_clock({HB_HEADER: {"ann": 3}}, "bob")  # swallowed, no-op


def test_noop_records_nothing():
    noop = NoopSanitizer()
    noop.on_write("doc/s", "ann", at=1.0)
    noop.acquire("lock:s", "ann")
    noop.release("lock:s", "ann")
    noop.receive("bob", {"ann": 1})
    assert noop.accesses == []
    assert noop.trace() == []
    assert noop.conflict_counts()["total"] == 0
    assert noop.summary()["accesses"] == 0
