"""Tests for the shared AST index and the call graph built on it."""

import os
import textwrap

from repro.analysis.callgraph import CallGraph, call_name
from repro.analysis.ir import RepoIndex, module_name, own_body

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")


def _index(**sources):
    index = RepoIndex()
    for name, source in sorted(sources.items()):
        index.add_source(textwrap.dedent(source),
                         "src/" + name.replace(".", "/") + ".py")
    return index


# -- module / function indexing --------------------------------------------

def test_module_name_strips_src_anchor():
    assert module_name("src/repro/net/network.py") == "repro.net.network"
    assert module_name("src/repro/sim/__init__.py") == "repro.sim"


def test_functions_get_dotted_qualnames():
    index = _index(**{"repro.thing": """
        def top():
            pass

        class Box:
            def method(self):
                def nested():
                    pass
                return nested
        """})
    assert "repro.thing.top" in index.functions
    assert "repro.thing.Box.method" in index.functions
    assert "repro.thing.Box.method.nested" in index.functions
    method = index.functions["repro.thing.Box.method"]
    assert method.cls == "Box"
    assert index.functions["repro.thing.top"].cls is None


def test_generator_detection_ignores_nested_defs():
    index = _index(**{"repro.gen": """
        def outer():
            def inner():
                yield 1
            return inner

        def actor(env):
            yield env.timeout(1)
        """})
    assert not index.functions["repro.gen.outer"].is_generator
    assert index.functions["repro.gen.outer.inner"].is_generator
    assert index.functions["repro.gen.actor"].is_generator
    names = {info.qualname for info in index.generators()}
    assert names == {"repro.gen.outer.inner", "repro.gen.actor"}


def test_own_body_does_not_descend_into_nested_scopes():
    import ast
    tree = ast.parse("def f():\n    a = 1\n    def g():\n        b = 2\n")
    func = tree.body[0]
    names = {node.id for node in own_body(func)
             if isinstance(node, ast.Name)}
    assert "a" in names
    assert "b" not in names


def test_fast_path_marker_attaches_through_comment_block():
    index = _index(**{"repro.fast": """
        # repro: fast-path — hot loop, keep allocations out.
        # second comment line between marker and def.
        def hot():
            pass

        def cold():
            pass
        """})
    assert index.functions["repro.fast.hot"].fast_path
    assert not index.functions["repro.fast.cold"].fast_path


def test_syntax_error_module_is_kept_with_error():
    index = _index(**{"repro.broken": "def broken(:\n"})
    module = index.modules["src/repro/broken.py"]
    assert module.tree is None
    assert module.error is not None
    assert module.functions == []


def test_function_at_returns_innermost_span():
    index = _index(**{"repro.spans": """
        def outer():
            x = 1

            def inner():
                return 2
            return inner
        """})
    path = "src/repro/spans.py"
    assert index.function_at(path, 3).qualname == "repro.spans.outer"
    assert index.function_at(path, 6).qualname == "repro.spans.outer.inner"
    assert index.function_at(path, 1) is None


def test_import_table_tracks_aliases():
    index = _index(**{"repro.imports": """
        import json
        import os.path as osp
        from repro.sim.rng import Rng
        """})
    imports = index.modules["src/repro/imports.py"].imports
    assert imports["json"] == "json"
    assert imports["osp"] == "os.path"
    assert imports["Rng"] == "repro.sim.rng.Rng"


def test_build_walks_the_fixture_tree():
    index = RepoIndex.build([os.path.join(FIXTURES, "taint")])
    assert any(path.endswith("laundered_sources.py")
               for path in index.modules)


# -- call graph resolution --------------------------------------------------

def test_call_name_renders_dotted_chains():
    import ast
    call = ast.parse("self.table.acquire('k')").body[0].value
    assert call_name(call) == "self.table.acquire"
    computed = ast.parse("get_thing().run()").body[0].value
    assert call_name(computed) == ""


def test_bare_name_resolves_within_module():
    index = _index(**{"repro.mod": """
        def helper():
            return 1

        def caller():
            return helper()
        """})
    graph = CallGraph(index)
    callees = [info.qualname for info in graph.callees("repro.mod.caller")]
    assert callees == ["repro.mod.helper"]
    callers = [site.caller.qualname
               for site in graph.callers("repro.mod.helper")]
    assert callers == ["repro.mod.caller"]


def test_self_method_resolves_to_same_class():
    index = _index(**{"repro.cls": """
        class Widget:
            def _step(self):
                return 1

            def run(self):
                return self._step()

        class Other:
            def _step(self):
                return 2
        """})
    graph = CallGraph(index)
    callees = [info.qualname
               for info in graph.callees("repro.cls.Widget.run")]
    assert callees == ["repro.cls.Widget._step"]


def test_imported_function_resolves_across_modules():
    index = _index(**{
        "repro.util": """
            def shared():
                return 1
            """,
        "repro.user": """
            from repro.util import shared

            def caller():
                return shared()
            """,
    })
    graph = CallGraph(index)
    callees = [info.qualname
               for info in graph.callees("repro.user.caller")]
    assert callees == ["repro.util.shared"]


def test_ambiguous_names_stay_unresolved():
    index = _index(**{
        "repro.one": """
            def poll():
                return 1
            """,
        "repro.two": """
            def poll():
                return 2
            """,
        "repro.three": """
            def caller(thing):
                return thing.poll()
            """,
    })
    graph = CallGraph(index)
    assert graph.callees("repro.three.caller") == []
