"""Tests for the determinism lint: rules, suppression, CLI, repo-clean.

The fixture modules under ``fixtures/`` carry their own expectations:
every line that must be flagged ends with ``# expect: CODE`` and every
line whose finding must be silenced by a ``# repro: allow-...`` comment
ends with ``# suppressed: CODE``.  The tests parse those markers and
assert the linter reports exactly the marked findings — nothing more,
nothing less.
"""

import json
import os
import re

import pytest

from repro.analysis.lint import (
    RULES,
    lint_file,
    lint_paths,
    lint_source,
    main,
)

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")
REPO_SRC = os.path.normpath(
    os.path.join(HERE, os.pardir, os.pardir, "src", "repro"))

FIXTURE_FILES = sorted(
    name for name in os.listdir(FIXTURES)
    if name.endswith(".py") and name != "__init__.py")

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPR\d+(?:\s*,\s*RPR\d+)*)")
_SUPPRESSED_RE = re.compile(r"#\s*suppressed:\s*(RPR\d+(?:\s*,\s*RPR\d+)*)")


def _markers(path, regex):
    """(line, code) pairs for every marker comment matching ``regex``."""
    marked = set()
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            match = regex.search(line)
            if match:
                for code in match.group(1).split(","):
                    marked.add((lineno, code.strip()))
    return marked


# -- rule registry ----------------------------------------------------------

def test_rule_codes_are_unique_and_well_formed():
    codes = [lint_rule.code for lint_rule in RULES]
    assert len(codes) == len(set(codes))
    assert all(re.fullmatch(r"RPR\d{3}", code) for code in codes)
    assert {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
            "RPR006"} <= set(codes)


def test_every_rule_has_a_fix_hint():
    for lint_rule in RULES:
        assert lint_rule.hint, lint_rule.code
        assert lint_rule.summary, lint_rule.code


# -- fixtures: each rule fires exactly where marked ------------------------

@pytest.mark.parametrize("filename", FIXTURE_FILES)
def test_fixture_findings_match_markers(filename):
    path = os.path.join(FIXTURES, filename)
    expected = _markers(path, _EXPECT_RE)
    assert expected, "fixture {} marks no expectations".format(filename)
    found = {(f.line, f.code) for f in lint_file(path)}
    assert found == expected


@pytest.mark.parametrize("filename", FIXTURE_FILES)
def test_fixture_suppressions_respected_and_overridable(filename):
    path = os.path.join(FIXTURES, filename)
    expected = _markers(path, _EXPECT_RE)
    suppressed = _markers(path, _SUPPRESSED_RE)
    assert suppressed, "fixture {} marks no suppressions".format(filename)
    # Suppressed lines stay silent normally...
    found = {(f.line, f.code) for f in lint_file(path)}
    assert not (found & suppressed)
    # ...and reappear under --no-suppress semantics.
    unsuppressed = {(f.line, f.code)
                    for f in lint_file(path, respect_suppressions=False)}
    assert unsuppressed == expected | suppressed


def test_suppression_comment_covers_the_line_below():
    source = ("import itertools\n"
              "# repro: allow-RPR005 (fixture)\n"
              "_ids = itertools.count(1)\n")
    assert lint_source(source, "fixture.py") == []


def test_syntax_error_reports_rpr000():
    findings = lint_source("def broken(:\n", "broken.py")
    assert [f.code for f in findings] == ["RPR000"]


# -- the repo itself -------------------------------------------------------

def test_repo_source_is_lint_clean():
    findings = lint_paths([REPO_SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


# -- CLI -------------------------------------------------------------------

def test_cli_nonzero_with_codes_on_fixtures(capsys):
    assert main([FIXTURES]) == 1
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                 "RPR006"):
        assert code in out


def test_cli_zero_on_clean_tree(capsys):
    assert main([REPO_SRC]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_json_format(capsys):
    path = os.path.join(FIXTURES, "rpr005_module_state.py")
    assert main([path, "--format", "json"]) == 1
    findings = json.loads(capsys.readouterr().out)
    assert findings
    assert {"path", "line", "col", "code", "message",
            "hint"} <= set(findings[0])


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for lint_rule in RULES:
        assert lint_rule.code in out


# -- suppression spans: multi-line statements, decorated defs ---------------

def test_suppression_on_closing_line_of_multiline_statement():
    """The allow comment may sit lines below the flagged expression."""
    source = ("import time\n"
              "\n"
              "\n"
              "def f():\n"
              "    return time.time(\n"
              "        # a wrapped call spanning several lines\n"
              "    )  # repro: allow-RPR001\n")
    assert lint_source(source, "span.py") == []
    findings = lint_source(source, "span.py",
                           respect_suppressions=False)
    assert [(f.line, f.code) for f in findings] == [(5, "RPR001")]


def test_suppression_above_multiline_statement():
    source = ("import time\n"
              "\n"
              "\n"
              "def f():\n"
              "    # repro: allow-RPR001\n"
              "    return time.time(\n"
              "    )\n")
    assert lint_source(source, "span.py") == []


def test_suppression_does_not_leak_past_its_span():
    """The span comment stops at the statement (plus the legacy
    one-line carryover); later findings still report."""
    source = ("import time\n"
              "\n"
              "\n"
              "def f():\n"
              "    a = time.time(\n"
              "    )  # repro: allow-RPR001\n"
              "\n"
              "    b = time.time()\n"
              "    return a, b\n")
    findings = lint_source(source, "span.py")
    assert [(f.line, f.code) for f in findings] == [(8, "RPR001")]


def test_suppression_covers_decorated_def():
    """A def-anchored finding is silenced from above the decorators."""
    import ast

    from repro.analysis import lint as lint_mod

    @lint_mod.rule("RPR998", "every def (test-only rule)", "none")
    def _flag_defs(tree, path):
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                yield node, "a def"

    try:
        flagged = ("@staticmethod\n"
                   "def g():\n"
                   "    pass\n")
        findings = lint_source(flagged, "deco.py")
        assert [(f.line, f.code) for f in findings] == [(2, "RPR998")]
        silenced = ("# repro: allow-RPR998\n"
                    "@staticmethod\n"
                    "@classmethod\n"
                    "def g():\n"
                    "    pass\n")
        assert lint_source(silenced, "deco.py") == []
    finally:
        lint_mod.RULES[:] = [r for r in lint_mod.RULES
                             if r.code != "RPR998"]
    assert all(r.code != "RPR998" for r in lint_mod.RULES)
