"""Tests for the static lock-order deadlock detector (RPR3xx)."""

import os
import re
import textwrap

from repro.analysis import lockorder
from repro.analysis.callgraph import CallGraph
from repro.analysis.ir import RepoIndex

HERE = os.path.dirname(__file__)
FIXTURE_DIR = os.path.join(HERE, "fixtures", "lockorder")
FIXTURE = os.path.join(FIXTURE_DIR, "abba.py")

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPR\d+)")


def _markers(path, regex):
    marked = set()
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            match = regex.search(line)
            if match:
                marked.add((lineno, match.group(1)))
    return marked


def _analyse(paths):
    index = RepoIndex.build(paths)
    return index, lockorder.analyse(index, CallGraph(index))


def _analyse_source(source, path="src/repro/locky.py"):
    index = RepoIndex()
    index.add_source(textwrap.dedent(source), path)
    return lockorder.analyse(index, CallGraph(index))


def test_fixture_findings_match_markers():
    _, findings = _analyse([FIXTURE_DIR])
    assert {(f.line, f.code) for f in findings} == _markers(FIXTURE,
                                                            _EXPECT_RE)


def test_cycle_findings_carry_edge_witness_chains():
    _, findings = _analyse([FIXTURE_DIR])
    cycles = [f for f in findings if f.code == "RPR301"]
    assert cycles
    for finding in cycles:
        assert "lock-order cycle:" in finding.message
        assert finding.chain and len(finding.chain) >= 2
        assert all({"path", "line", "note"} <= set(step)
                   for step in finding.chain)


def test_rpc_while_holding_is_a_warning():
    _, findings = _analyse([FIXTURE_DIR])
    rpc = [f for f in findings if f.code == "RPR302"]
    assert len(rpc) == 1
    assert rpc[0].severity == "warning"
    assert "holding table[gamma]" in rpc[0].message


def test_same_lock_reacquire_reports_self_cycle():
    findings = _analyse_source("""
        def grabby(table):
            first = table.acquire("shared", "a")
            second = table.acquire("shared", "a")
            table.release(second)
            table.release(first)
        """)
    assert [f.code for f in findings] == ["RPR301"]
    assert "table[shared] -> table[shared]" in findings[0].message


def test_dynamic_key_self_edges_are_left_to_the_runtime():
    findings = _analyse_source("""
        def transfer(table, src, dst):
            a = table.acquire(src, "txn")
            b = table.acquire(dst, "txn")
            table.release(b)
            table.release(a)
        """)
    assert findings == []


def test_release_breaks_the_hold():
    findings = _analyse_source("""
        def sequential(table):
            a = table.acquire("one", "w")
            table.release(a)
            b = table.acquire("two", "w")
            table.release(b)

        def reversed_sequential(table):
            b = table.acquire("two", "w")
            table.release(b)
            a = table.acquire("one", "w")
            table.release(a)
        """)
    assert findings == []


def test_computed_receivers_are_skipped():
    findings = _analyse_source("""
        def tricky(key):
            grant = get_table().acquire(key)
            grant.release()
            other = get_table().acquire(key)
            other.release()
        """)
    assert findings == []
