"""Tests for the replay checker: determinism as a testable property."""

import json
import os

import pytest

from repro.analysis.hb import NOOP_SANITIZER, get_sanitizer
from repro.analysis.replay import (
    main,
    replay,
    run_isolated,
    trace_digest,
)
from repro.analysis.workloads import WORKLOADS, run_workload
from repro.obs.metrics import get_metrics


def test_replay_locks_hard_is_deterministic():
    first, second, ok = replay("locks-hard", seed=31)
    assert ok
    assert first == second


def test_replay_locks_soft_is_deterministic():
    # The style with the most sanitizer activity (every conflict is
    # recorded) must still digest identically.
    assert replay("locks-soft", seed=31)[2]


def test_different_seeds_give_different_digests():
    one = trace_digest(run_isolated("locks-soft", seed=31))
    other = trace_digest(run_isolated("locks-soft", seed=32))
    assert one != other


def test_trace_digest_is_canonical():
    assert trace_digest({"a": 1, "b": 2}) == trace_digest({"b": 2, "a": 1})
    assert trace_digest({"a": 1}) != trace_digest({"a": 2})


def test_run_isolated_restores_globals():
    metrics_before = get_metrics()
    run_isolated("locks-hard", seed=31)
    assert get_sanitizer() is NOOP_SANITIZER
    assert get_metrics() is metrics_before


def test_run_isolated_records_the_access_trace():
    result = run_isolated("locks-hard", seed=31)
    assert result["accesses"], "sanitizer saw no accesses"
    assert result["completed"] > 0
    assert result["workload"] == "locks-hard"


def test_workload_registry_covers_all_styles():
    assert {"locks-hard", "locks-tickle", "locks-soft",
            "locks-notification"} <= set(WORKLOADS)


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        run_workload("no-such-workload")


def test_cli_ok(capsys):
    assert main(["locks-hard"]) == 0
    assert "REPLAY OK" in capsys.readouterr().out


def test_cli_unknown_workload(capsys):
    assert main(["no-such-workload"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    assert "locks-soft" in capsys.readouterr().out


def test_every_registered_workload_is_digest_stable():
    # The hot-path optimisations (route caching, bound instruments, kernel
    # fast paths) must be invisible to replay: running any registered
    # workload twice with the same seed digests identically.
    for name in sorted(WORKLOADS):
        first = trace_digest(run_isolated(name, seed=31))
        second = trace_digest(run_isolated(name, seed=31))
        assert first == second, "workload {} is not replay-stable".format(
            name)


# -- PR 10: pinned digests across scheduler x carry quadrants -------------
#
# seed_digests.json holds the seed-31 digest of every workload, captured
# on the heap scheduler with the legacy carry *before* the calendar
# queue and burst-carry landed.  Any drift in any of the four
# (scheduler, burst) quadrants is a behaviour change, not a speedup.

_PINNED = os.path.join(os.path.dirname(__file__), "seed_digests.json")


def _pinned_digests():
    with open(_PINNED, encoding="utf-8") as handle:
        return json.load(handle)


def test_pinned_digest_file_covers_every_workload():
    assert set(_pinned_digests()) == set(WORKLOADS)


@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
@pytest.mark.parametrize("burst", [True, False])
def test_all_workloads_match_pinned_digests(scheduler, burst):
    from repro.net.network import use_burst_carry
    from repro.sim.environment import use_scheduler
    pinned = _pinned_digests()
    with use_scheduler(scheduler), use_burst_carry(burst):
        for name in sorted(WORKLOADS):
            digest = trace_digest(run_isolated(name, seed=31))
            assert digest == pinned[name], \
                "workload {} drifted under scheduler={} burst={}".format(
                    name, scheduler, burst)
