"""Tests for the ActionWorkflow four-phase loop with delegation."""

import pytest

from repro.errors import WorkflowError
from repro.workflow import (
    ACCEPTANCE,
    NEGOTIATION,
    PERFORMANCE,
    PREPARATION,
    WorkflowLoop,
)
from repro.workflow.action_workflow import CANCELLED, CLOSED


def make_loop():
    return WorkflowLoop("customer-corp", "consultancy",
                        "deliver the ODP middleware study")


def test_parties_must_differ():
    with pytest.raises(WorkflowError):
        WorkflowLoop("acme", "acme", "anything")


def test_happy_loop_traverses_four_phases():
    loop = make_loop()
    assert loop.phase == PREPARATION
    loop.request("final report by Q3")
    assert loop.phase == NEGOTIATION
    loop.agree("final report by Q4, interim in Q3")
    assert loop.phase == PERFORMANCE
    assert loop.conditions_of_satisfaction == \
        "final report by Q4, interim in Q3"
    loop.declare_complete()
    assert loop.phase == ACCEPTANCE
    loop.declare_satisfaction()
    assert loop.is_closed
    assert loop.history == [PREPARATION, NEGOTIATION, PERFORMANCE,
                            ACCEPTANCE, CLOSED]


def test_phase_discipline():
    loop = make_loop()
    with pytest.raises(WorkflowError):
        loop.agree()               # no request yet
    loop.request("x")
    with pytest.raises(WorkflowError):
        loop.declare_complete()    # not performing yet
    loop.agree()
    with pytest.raises(WorkflowError):
        loop.declare_satisfaction()  # nothing declared complete


def test_rejection_returns_to_performance():
    loop = make_loop()
    loop.request("x")
    loop.agree()
    loop.declare_complete()
    loop.reject()
    assert loop.phase == PERFORMANCE
    loop.declare_complete()
    loop.declare_satisfaction()
    assert loop.is_closed


def test_delegation_opens_sub_loop():
    loop = make_loop()
    loop.request("study")
    loop.agree()
    sub = loop.delegate("measurement-team", "run the benchmarks")
    # The performer of the parent is the customer of the sub-loop.
    assert sub.customer == "consultancy"
    assert sub.performer == "measurement-team"
    assert sub.parent is loop
    assert loop.depth() == 1


def test_delegation_requires_performance_phase():
    loop = make_loop()
    with pytest.raises(WorkflowError):
        loop.delegate("anyone", "anything")


def test_parent_cannot_complete_with_open_sub_loops():
    loop = make_loop()
    loop.request("study")
    loop.agree()
    sub = loop.delegate("team", "benchmarks")
    with pytest.raises(WorkflowError, match=sub.loop_id):
        loop.declare_complete()
    # Close the sub-loop; the parent may now complete.
    sub.request("tables by friday")
    sub.agree()
    sub.declare_complete()
    sub.declare_satisfaction()
    loop.declare_complete()
    loop.declare_satisfaction()
    assert loop.is_closed


def test_cancel_cascades_to_sub_loops():
    loop = make_loop()
    loop.request("study")
    loop.agree()
    sub = loop.delegate("team", "benchmarks")
    deeper = None
    sub.request("x")
    sub.agree()
    deeper = sub.delegate("junior", "plots")
    loop.cancel()
    assert loop.phase == CANCELLED
    assert sub.phase == CANCELLED
    assert deeper.phase == CANCELLED
    with pytest.raises(WorkflowError):
        loop.cancel()


def test_nested_depth():
    loop = make_loop()
    loop.request("x")
    loop.agree()
    sub = loop.delegate("a", "part 1")
    sub.request("y")
    sub.agree()
    sub.delegate("b", "part 1.1")
    assert loop.depth() == 2


def test_process_map_renders_tree():
    loop = make_loop()
    loop.request("study")
    loop.agree()
    sub = loop.delegate("team", "benchmarks")
    rendered = loop.process_map()
    lines = rendered.splitlines()
    assert len(lines) == 2
    assert "customer-corp -> consultancy" in lines[0]
    assert lines[1].startswith("  ")
    assert "consultancy -> team" in lines[1]
    assert "[performance]" in lines[0]
