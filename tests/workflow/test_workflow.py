"""Tests for speech acts, office procedures and informal routing."""

import pytest

from repro.errors import IllegalSpeechAct, WorkflowError
from repro.workflow import (
    COMPLETED,
    Conversation,
    FlexibleRouter,
    Procedure,
    ProcedureInstance,
    PROMISED,
    REQUESTED,
    STRICT,
    Step,
    TOLERANT,
    WorkObject,
    run_trace,
)


# -- speech acts ----------------------------------------------------------------

def test_conversation_requires_distinct_parties():
    with pytest.raises(WorkflowError):
        Conversation("alice", "alice")


def test_happy_path_conversation():
    conversation = Conversation("alice", "bob", about="write report")
    assert conversation.perform("alice", "request") == REQUESTED
    assert conversation.perform("bob", "promise") == PROMISED
    conversation.perform("bob", "report_completion")
    conversation.perform("alice", "declare_complete")
    assert conversation.state == COMPLETED
    assert conversation.is_final
    assert len(conversation.history) == 4


def test_decline_path():
    conversation = Conversation("alice", "bob")
    conversation.perform("alice", "request")
    conversation.perform("bob", "decline")
    assert conversation.is_final


def test_counter_offer_path():
    conversation = Conversation("alice", "bob")
    conversation.perform("alice", "request")
    conversation.perform("bob", "counter")
    conversation.perform("alice", "accept")
    assert conversation.state == PROMISED


def test_rework_loop():
    conversation = Conversation("alice", "bob")
    conversation.perform("alice", "request")
    conversation.perform("bob", "promise")
    conversation.perform("bob", "report_completion")
    conversation.perform("alice", "declare_incomplete")
    assert conversation.state == PROMISED  # back to work
    conversation.perform("bob", "report_completion")
    conversation.perform("alice", "declare_complete")
    assert conversation.state == COMPLETED


def test_illegal_act_rejected_with_legal_alternatives():
    conversation = Conversation("alice", "bob")
    conversation.perform("alice", "request")
    with pytest.raises(IllegalSpeechAct, match="promise"):
        conversation.perform("bob", "report_completion")


def test_non_party_rejected():
    conversation = Conversation("alice", "bob")
    with pytest.raises(WorkflowError):
        conversation.perform("carol", "request")


def test_legal_acts_listing():
    conversation = Conversation("alice", "bob")
    assert conversation.legal_acts("alice") == ["request"]
    assert conversation.legal_acts("bob") == []
    conversation.perform("alice", "request")
    assert conversation.legal_acts("bob") == ["counter", "decline",
                                              "promise"]


def test_customer_can_cancel_promised_work():
    conversation = Conversation("alice", "bob")
    conversation.perform("alice", "request")
    conversation.perform("bob", "promise")
    conversation.perform("alice", "cancel")
    assert conversation.is_final


def test_run_trace_counts_rejections():
    # A natural but non-canonical interaction: thanks, small talk...
    trace = [("alice", "request"),
             ("bob", "acknowledge"),        # not in the model
             ("bob", "promise"),
             ("alice", "thank"),            # not in the model
             ("bob", "report_completion"),
             ("alice", "declare_complete")]
    conversation, rejections = run_trace("alice", "bob", trace)
    assert conversation.state == COMPLETED
    assert rejections == 2


# -- procedures ---------------------------------------------------------------

def expense_procedure():
    return Procedure("expenses", [
        Step("submit", "employee", "file_claim"),
        Step("check", "supervisor", "approve"),
        Step("pay", "finance", "transfer"),
    ])


def test_procedure_validation():
    with pytest.raises(WorkflowError):
        Procedure("empty", [])
    with pytest.raises(WorkflowError):
        Procedure("dupe", [Step("a", "r", "x"), Step("a", "r", "y")])


def test_procedure_happy_path():
    case = expense_procedure().instantiate()
    assert case.current_step.name == "submit"
    case.perform("employee", "file_claim")
    case.perform("supervisor", "approve")
    case.perform("finance", "transfer")
    assert case.complete
    assert case.current_step is None
    assert case.exceptions == []


def test_strict_mode_rejects_wrong_role():
    case = expense_procedure().instantiate(mode=STRICT)
    case.perform("employee", "file_claim")
    with pytest.raises(WorkflowError, match="role"):
        # A colleague covers for the absent supervisor: real offices do
        # this (working division of labour); the strict model forbids it.
        case.perform("colleague", "approve")


def test_strict_mode_rejects_wrong_action():
    case = expense_procedure().instantiate(mode=STRICT)
    with pytest.raises(WorkflowError, match="action"):
        case.perform("employee", "resubmit_claim")


def test_tolerant_mode_logs_and_continues():
    case = expense_procedure().instantiate(mode=TOLERANT)
    case.perform("employee", "file_claim")
    case.perform("colleague", "approve")  # deviation, but work continues
    case.perform("finance", "transfer")
    assert case.complete
    assert len(case.exceptions) == 1
    assert case.exceptions[0][1] == "check"


def test_perform_after_completion_rejected():
    case = expense_procedure().instantiate(mode=TOLERANT)
    for role, action in [("employee", "file_claim"),
                         ("supervisor", "approve"),
                         ("finance", "transfer")]:
        case.perform(role, action)
    with pytest.raises(WorkflowError):
        case.perform("employee", "file_claim")


def test_unknown_mode_rejected():
    with pytest.raises(WorkflowError):
        expense_procedure().instantiate(mode="anarchic")


def test_run_trace_strict_vs_tolerant():
    deviating = [("employee", "file_claim"),
                 ("colleague", "approve"),
                 ("finance", "transfer")]
    strict_done, strict_errors = \
        expense_procedure().instantiate(STRICT).run_trace(deviating)
    tolerant_done, tolerant_errors = \
        expense_procedure().instantiate(TOLERANT).run_trace(deviating)
    assert not strict_done
    # The deviation bounces AND the case stalls, so the following
    # legitimate work bounces too — prescriptiveness compounds.
    assert strict_errors == 2
    assert tolerant_done
    assert tolerant_errors == 1     # logged, not blocking


# -- informal routing -------------------------------------------------------------

def test_router_accepts_anything():
    router = FlexibleRouter()
    obj = WorkObject("claim", {"amount": 40})
    router.submit(obj)
    router.perform("anyone", obj, "scribble")
    router.perform("anyone-else", obj, "stamp")
    assert router.actions_performed == 2
    assert obj.history == [("anyone", "scribble"),
                           ("anyone-else", "stamp")]


def test_rules_route_objects():
    router = FlexibleRouter()
    router.add_rule("big-claims",
                    lambda obj: "review" if obj.fields.get("amount", 0)
                    > 100 else None)
    small = WorkObject("claim", {"amount": 40})
    big = WorkObject("claim", {"amount": 400})
    router.submit(small)
    router.submit(big)
    assert small.folder == "inbox"
    assert big.folder == "review"


def test_field_update_retriggers_rules():
    router = FlexibleRouter()
    router.add_rule("done", lambda obj: "archive"
                    if obj.fields.get("state") == "closed" else None)
    obj = WorkObject("ticket")
    router.submit(obj)
    assert obj.folder == "inbox"
    router.perform("agent", obj, "close", state="closed")
    assert obj.folder == "archive"
    assert router.objects_in("inbox") == []
    assert router.objects_in("archive") == [obj]


def test_run_trace_never_rejects():
    router = FlexibleRouter()
    obj = WorkObject("claim")
    router.submit(obj)
    trace = [("alice", "request"), ("bob", "acknowledge"),
             ("bob", "promise"), ("alice", "thank"), ("bob", "done")]
    completed, rejections = router.run_trace(obj, trace)
    assert completed
    assert rejections == 0


def test_run_trace_incomplete_without_completion_action():
    router = FlexibleRouter()
    obj = WorkObject("claim")
    router.submit(obj)
    completed, rejections = router.run_trace(
        obj, [("alice", "ponder")])
    assert not completed
    assert rejections == 0
