"""Tests for the space-time matrix and ODP viewpoint models."""

import pytest

from repro.core import (
    EXAMPLE_APPLICATIONS,
    ODPSpecification,
    QUADRANTS,
    classify,
    quadrant_name,
    render_matrix,
    transition_path,
)
from repro.core.viewpoints import (
    ComputationalModel,
    EngineeringModel,
    EnterpriseModel,
)
from repro.errors import ReproError, ViewpointError
from repro.sessions import (
    ASYNCHRONOUS,
    CO_LOCATED,
    REMOTE,
    SYNCHRONOUS,
    Session,
)
from repro.sim import Environment


# -- matrix ---------------------------------------------------------------------

def test_quadrants_cover_figure_1():
    assert QUADRANTS[(SYNCHRONOUS, CO_LOCATED)] == \
        "face-to-face interaction"
    assert QUADRANTS[(ASYNCHRONOUS, REMOTE)] == \
        "asynchronous distributed interaction"
    assert len(QUADRANTS) == 4
    assert set(EXAMPLE_APPLICATIONS) == set(QUADRANTS)


def test_quadrant_name_validation():
    with pytest.raises(ReproError):
        quadrant_name("sometimes", "somewhere")


def test_classify_session():
    env = Environment()
    session = Session(env, "s", time_mode=SYNCHRONOUS, place_mode=REMOTE)
    assert classify(session) == "synchronous distributed interaction"


def test_render_matrix_contains_all_cells():
    text = render_matrix()
    for label in QUADRANTS.values():
        assert label in text
    assert "Same Time" in text
    assert "Different Places" in text


def test_transition_path_preserves_state():
    env = Environment()
    session = Session(env, "s", time_mode=SYNCHRONOUS, place_mode=REMOTE)
    session.join("alice")
    session.store.write("doc", "content", writer="alice")
    before, after = transition_path(session, ASYNCHRONOUS, REMOTE)
    assert before == "synchronous distributed interaction"
    assert after == "asynchronous distributed interaction"
    assert session.members == ["alice"]
    assert session.store.read("doc") == "content"


# -- viewpoints ----------------------------------------------------------------

def make_spec():
    spec = ODPSpecification("atc")
    spec.enterprise.add_community("sector-team",
                                  ["controller", "chief", "assistant"])
    spec.information.add_schema("flight-strip",
                                {"callsign": "str", "level": "int"})
    spec.computational.add_object("strip-board")
    spec.computational.add_interface("strip-board", "board-ops")
    spec.engineering.add_node("ops-room-server")
    spec.engineering.place("strip-board", "ops-room-server")
    spec.technology.choose("transport", "simulated-packet-network")
    return spec


def test_consistent_specification():
    spec = make_spec()
    assert spec.is_consistent()
    assert spec.check_consistency() == []


def test_unplaced_object_flagged():
    spec = make_spec()
    spec.computational.add_object("radar-feed")
    problems = spec.check_consistency()
    assert any("radar-feed" in problem for problem in problems)


def test_stream_interface_needs_transport():
    spec = make_spec()
    spec.computational.add_object("camera")
    spec.computational.add_interface(
        "camera", "video-out", kind=ComputationalModel.STREAM)
    spec.engineering.place("camera", "ops-room-server")
    problems = spec.check_consistency()
    assert any("video-out" in problem for problem in problems)
    spec.engineering.support_stream("video-out", "multicast")
    assert spec.is_consistent()


def test_flows_require_schema():
    spec = ODPSpecification("bare")
    spec.enterprise.add_community("team", ["a", "b"])
    spec.enterprise.add_formal_flow("a", "b")
    problems = spec.check_consistency()
    assert any("schema" in problem for problem in problems)


def test_enterprise_sociality():
    model = EnterpriseModel("office")
    model.add_community("clerks", ["clerk", "supervisor"])
    model.add_formal_flow("clerk", "supervisor")
    model.add_working_flow("clerk", "clerk")
    model.add_working_flow("supervisor", "clerk")
    model.observe("clerk", "peripheral monitoring of colleagues' desks")
    assert model.informality_ratio() == pytest.approx(2 / 3)
    assert model.observations["clerk"]


def test_enterprise_validation():
    model = EnterpriseModel("x")
    with pytest.raises(ViewpointError):
        model.add_community("empty", [])
    model.add_community("team", ["a"])
    with pytest.raises(ViewpointError):
        model.add_formal_flow("a", "ghost")
    with pytest.raises(ViewpointError):
        model.observe("ghost", "note")
    assert model.informality_ratio() == 0.0


def test_computational_validation():
    model = ComputationalModel()
    with pytest.raises(ViewpointError):
        model.add_interface("ghost", "iface")
    model.add_object("a")
    with pytest.raises(ViewpointError):
        model.add_interface("a", "iface", kind="telepathic")
    model.add_interface("a", "iface")
    with pytest.raises(ViewpointError):
        model.bind("iface", "missing")
    model.add_object("b")
    model.add_interface("b", "other")
    model.bind("iface", "other")
    assert model.bindings == [("iface", "other")]


def test_engineering_validation():
    model = EngineeringModel()
    with pytest.raises(ViewpointError):
        model.place("obj", "nowhere")


def test_information_validation():
    from repro.core.viewpoints import InformationModel

    model = InformationModel()
    with pytest.raises(ViewpointError):
        model.add_schema("empty", {})
    model.add_invariant("unique-callsigns",
                        "no two live strips share a callsign")
    assert "unique-callsigns" in model.invariants
