"""Integration tests for the CooperativePlatform facade."""

import pytest

from repro import CooperativePlatform
from repro.errors import ReproError, SessionError
from repro.qos import QoSParameters


@pytest.fixture
def platform():
    return CooperativePlatform(sites=3, hosts_per_site=2, seed=1)


def test_platform_host_names(platform):
    hosts = platform.host_names()
    assert len(hosts) == 6
    assert hosts[0] == "site0.host0"


def test_platform_lan_topology():
    platform = CooperativePlatform(sites=2, hosts_per_site=2,
                                   topology="lan")
    assert platform.host_names() == ["host0", "host1", "host2", "host3"]


def test_platform_unknown_topology():
    with pytest.raises(ReproError):
        CooperativePlatform(topology="torus")


def test_create_session_joins_members(platform):
    members = platform.host_names()[:3]
    session = platform.create_session("review", members)
    assert session.members == members
    assert len(session.group.view) == 3
    with pytest.raises(SessionError):
        platform.create_session("review", members)
    with pytest.raises(SessionError):
        platform.create_session("other", ["nowhere.host9"])


def test_floor_policy_selection(platform):
    members = platform.host_names()[:2]
    for i, policy in enumerate(["free", "fcfs", "round-robin",
                                "chaired", "negotiated"]):
        session = platform.create_session("s{}".format(i), members,
                                          floor=policy)
        assert session.session.floor is not None
    none_floor = platform.create_session("s-none", members, floor=None)
    assert none_floor.session.floor is None
    with pytest.raises(SessionError):
        platform.create_session("s-bad", members, floor="thunderdome")


def test_session_broadcast_is_ordered(platform):
    members = platform.host_names()[:3]
    session = platform.create_session("chat", members, ordering="total")
    for i, member in enumerate(members):
        session.broadcast(member, "msg-{}".format(i))
    platform.run()
    logs = [[m.payload for m in session.group.endpoint(member)
             .delivered_log] for member in members]
    assert all(log == logs[0] and len(log) == 3 for log in logs)


def test_shared_document_lifecycle(platform):
    members = platform.host_names()[:3]
    session = platform.create_session("writing", members)
    doc = session.shared_document("paper", initial="base ")
    doc.client(members[0]).insert(5, "alpha ")
    doc.client(members[1]).insert(0, ">")
    platform.run()
    assert doc.converged
    texts = doc.texts()
    assert len(set(texts.values())) == 1
    with pytest.raises(SessionError):
        doc.client("site9.host9")


def test_workspace_awareness_flows(platform):
    members = platform.host_names()[:2]
    session = platform.create_session("aware", members)
    seen = []
    session.workspace.watch(members[1], seen.append)
    session.session.store.write("strip", "FL340", writer=members[0],
                                at=platform.env.now)
    platform.run()
    assert len(seen) == 1
    assert seen[0].artefact == "strip"


def test_media_flow_with_reservation(platform):
    hosts = platform.host_names()
    flow = platform.open_media_flow(hosts[0], hosts[2], rate=10.0,
                                    frame_size=2000)
    flow.start(duration=1.0)
    # Stop just after the last frame plays but before the monitor sees
    # an idle window (the stream has ended; starvation would be flagged).
    platform.run(until=1.5)
    assert flow.sink.counters["played"] == 10
    assert flow.sink.deadline_misses == 0
    assert flow.monitor is not None
    assert flow.binding.contract.is_active
    platform.qos.release(flow.binding.contract)
    assert not flow.binding.contract.is_active


def test_media_flow_without_reservation(platform):
    hosts = platform.host_names()
    flow = platform.open_media_flow(hosts[0], hosts[2], rate=5.0,
                                    reserve=False)
    assert flow.monitor is None
    flow.start(duration=1.0)
    platform.run(until=3.0)
    assert flow.sink.counters["played"] == 5


def test_media_flow_custom_qos(platform):
    hosts = platform.host_names()
    desired = QoSParameters(throughput=5e5, latency=0.3, jitter=0.2,
                            loss=0.1)
    flow = platform.open_media_flow(hosts[0], hosts[3], rate=10.0,
                                    desired=desired)
    assert flow.binding.contract.agreed.throughput == 5e5


def test_quickstart_docstring_scenario():
    platform = CooperativePlatform(sites=3, hosts_per_site=2)
    members = platform.host_names()[:3]
    session = platform.create_session("design-review", members)
    doc = session.shared_document("minutes", initial="Agenda:\n")
    doc.client(members[0]).insert(7, "\n- QoS")
    platform.run()
    assert doc.converged
    assert "- QoS" in doc.server.core.text
