"""Edge paths of the platform facade and network services."""

import pytest

from repro import CooperativePlatform
from repro.errors import GroupError
from repro.net import MulticastService, Network, star
from repro.sim import Environment


def test_platform_port_allocation_monotonic():
    platform = CooperativePlatform(sites=2, hosts_per_site=1)
    first = platform.allocate_port(span=2)
    second = platform.allocate_port()
    assert second == first + 2


def test_two_documents_in_one_session_do_not_collide():
    platform = CooperativePlatform(sites=2, hosts_per_site=1, seed=3)
    members = platform.host_names()
    session = platform.create_session("s", members)
    minutes = session.shared_document("minutes", initial="m:")
    actions = session.shared_document("actions", initial="a:")
    minutes.client(members[0]).insert(2, "agree scope")
    actions.client(members[1]).insert(2, "send draft")
    platform.run()
    assert minutes.converged and actions.converged
    assert minutes.server.core.text == "m:agree scope"
    assert actions.server.core.text == "a:send draft"


def test_two_sessions_groups_are_isolated():
    platform = CooperativePlatform(sites=2, hosts_per_site=1, seed=4)
    members = platform.host_names()
    one = platform.create_session("one", members, ordering="fifo")
    two = platform.create_session("two", members, ordering="fifo")
    one.broadcast(members[0], "to-one")
    two.broadcast(members[1], "to-two")
    platform.run()
    one_log = [m.payload for m in
               one.group.endpoint(members[1]).delivered_log]
    two_log = [m.payload for m in
               two.group.endpoint(members[0]).delivered_log]
    assert one_log == ["to-one"]
    assert two_log == ["to-two"]


def test_session_store_history_enabled():
    platform = CooperativePlatform(sites=2, hosts_per_site=1)
    members = platform.host_names()
    session = platform.create_session("s", members)
    session.session.store.write("k", 1, writer=members[0], at=0.0)
    assert len(session.session.store.history()) == 1


def test_multicast_send_to_self_only_group():
    env = Environment()
    topo = star(env, leaves=2)
    net = Network(env, topo)
    service = MulticastService(net)
    group = service.create_group("solo")
    net.host("leaf0")
    group.join("leaf0")
    # Sending to a group containing only yourself without loopback
    # delivers nothing and must not error.
    packets = service.send("solo", "leaf0", payload="echo")
    env.run()
    assert packets == []
    with_loopback = service.send("solo", "leaf0", payload="echo",
                                 loopback=True)
    assert len(with_loopback) == 1


def test_multicast_unicast_fanout_unknown_group():
    env = Environment()
    topo = star(env, leaves=2)
    net = Network(env, topo)
    service = MulticastService(net)
    with pytest.raises(GroupError):
        service.unicast_fanout("ghost", "leaf0")


def test_multicast_unreachable_member_dropped_silently():
    env = Environment()
    topo = star(env, leaves=3)
    net = Network(env, topo)
    service = MulticastService(net)
    group = service.create_group("g")
    for i in range(3):
        net.host("leaf{}".format(i))
        group.join("leaf{}".format(i))
    # Cut leaf2's access link: the tree simply omits it.
    topo.link_between("leaf2", "hub").set_up(False)
    topo.invalidate_routes()
    received = []
    net.hosts["leaf1"].on_packet(service.port,
                                 lambda p: received.append(p.payload))
    service.send("g", "leaf0", payload="x")
    env.run()
    assert received == ["x"]


def test_platform_runtime_and_qos_available():
    platform = CooperativePlatform(sites=2, hosts_per_site=1)
    # The ODP runtime and broker are first-class parts of the facade.
    nucleus = platform.runtime.nucleus(platform.host_names()[1])
    capsule = nucleus.create_capsule()
    obj = nucleus.create_object(capsule, "shared-thing", state={"n": 1})
    obj.operation("read", lambda caller, state, args: state["n"])

    def root(env):
        yield env.timeout(0.5)  # allow registration to propagate
        value = yield platform.runtime.nucleus(
            platform.host_names()[0]).invoke(obj.oid, "read")
        return value

    proc = platform.env.process(root(platform.env))
    platform.run(proc)
    assert proc.value == 1
