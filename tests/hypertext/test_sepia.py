"""Tests for SEPIA-style planning spaces inside the hypertext network."""

import pytest

from repro.errors import HypertextError
from repro.hypertext import (
    DONE,
    HypertextNetwork,
    IN_PROGRESS,
    PLANNED,
    PlanningSpace,
)


@pytest.fixture
def plan():
    return PlanningSpace()


def test_task_creation_and_listing(plan):
    task = plan.add_task("gordon", "draft section 3")
    assert task.content == {"title": "draft section 3",
                            "state": PLANNED}
    assert plan.tasks() == [task]
    assert plan.tasks(state=PLANNED) == [task]
    assert plan.tasks(state=DONE) == []


def test_task_linked_to_content(plan):
    content = plan.network.add_node("gordon", "section", "the text")
    task = plan.add_task("gordon", "revise", concerning=content.node_id)
    annotations = plan.network.links_from(task.node_id, "annotates")
    assert len(annotations) == 1
    assert annotations[0].dst == content.node_id


def test_state_lifecycle(plan):
    task = plan.add_task("gordon", "write intro")
    plan.set_state("tom", task.node_id, IN_PROGRESS)
    assert plan.tasks(state=IN_PROGRESS) == [task]
    plan.set_state("tom", task.node_id, DONE)
    assert task.content["state"] == DONE
    with pytest.raises(HypertextError):
        plan.set_state("tom", task.node_id, "abandoned")


def test_non_task_rejected(plan):
    content = plan.network.add_node("x", "section", "text")
    with pytest.raises(HypertextError):
        plan.set_state("x", content.node_id, DONE)
    with pytest.raises(HypertextError):
        plan.assignees_of(content.node_id)


def test_dependencies_block_completion(plan):
    draft = plan.add_task("gordon", "draft")
    review = plan.add_task("tom", "review")
    plan.depends_on("tom", review.node_id, draft.node_id)
    assert plan.blocking_tasks(review.node_id) == [draft]
    with pytest.raises(HypertextError):
        plan.set_state("tom", review.node_id, DONE)
    plan.set_state("gordon", draft.node_id, DONE)
    assert plan.blocking_tasks(review.node_id) == []
    plan.set_state("tom", review.node_id, DONE)


def test_dependency_validation(plan):
    a = plan.add_task("x", "a")
    b = plan.add_task("x", "b")
    with pytest.raises(HypertextError):
        plan.depends_on("x", a.node_id, a.node_id)
    plan.depends_on("x", b.node_id, a.node_id)
    with pytest.raises(HypertextError):
        plan.depends_on("x", a.node_id, b.node_id)  # cycle


def test_ready_tasks(plan):
    a = plan.add_task("x", "a")
    b = plan.add_task("x", "b")
    c = plan.add_task("x", "c")
    plan.depends_on("x", b.node_id, a.node_id)
    plan.depends_on("x", c.node_id, b.node_id)
    assert plan.ready_tasks() == [a]
    plan.set_state("x", a.node_id, DONE)
    assert plan.ready_tasks() == [b]


def test_assignment_and_workload(plan):
    a = plan.add_task("gordon", "a")
    b = plan.add_task("gordon", "b")
    plan.assign("gordon", a.node_id, "tom")
    plan.assign("gordon", b.node_id, "tom")
    plan.assign("gordon", b.node_id, "nigel")
    with pytest.raises(HypertextError):
        plan.assign("gordon", a.node_id, "tom")
    assert plan.assignees_of(b.node_id) == ["tom", "nigel"]
    assert len(plan.workload_of("tom")) == 2
    plan.set_state("tom", a.node_id, DONE)
    assert plan.workload_of("tom") == [b]


def test_plan_shares_network_with_content(plan):
    """The plan is hypertext: it can be annotated like anything else."""
    task = plan.add_task("gordon", "restructure section 4")
    comment = plan.network.add_node("tom", "comment",
                                    "suggest splitting in two")
    plan.network.add_link("tom", comment.node_id, task.node_id,
                          "annotates")
    annotations = plan.network.links_to(task.node_id, "annotates")
    assert len(annotations) == 1


def test_plan_over_existing_network():
    network = HypertextNetwork("shared")
    section = network.add_node("gordon", "section", "content")
    plan = PlanningSpace(network=network)
    task = plan.add_task("gordon", "polish", concerning=section.node_id)
    assert task in network.nodes()
