"""Tests for multi-user hypertext and Quilt co-authoring."""

import pytest

from repro.errors import AccessDenied, HypertextError
from repro.hypertext import (
    AUTHOR,
    CO_AUTHOR,
    COMMENTER,
    HypertextNetwork,
    INCORPORATED,
    OPEN,
    QuiltDocument,
    REJECTED,
)


# -- network -------------------------------------------------------------------

def test_independent_additions_never_conflict():
    network = HypertextNetwork()
    a = network.add_node("alice", "idea", "use a cache")
    b = network.add_node("bob", "idea", "shard the data")
    assert len(network.nodes()) == 2
    assert network.conflicts == []
    assert a.node_id != b.node_id


def test_links_require_existing_endpoints():
    network = HypertextNetwork()
    node = network.add_node("alice", "idea", "x")
    with pytest.raises(HypertextError):
        network.add_link("alice", node.node_id, "n9999")
    with pytest.raises(HypertextError):
        network.node("n9999")


def test_link_types_validated():
    network = HypertextNetwork()
    a = network.add_node("alice", "idea", "x")
    b = network.add_node("bob", "idea", "y")
    with pytest.raises(HypertextError):
        network.add_link("bob", b.node_id, a.node_id, kind="teleports")
    link = network.add_link("bob", b.node_id, a.node_id, kind="refutes")
    assert network.links_from(b.node_id, "refutes") == [link]
    assert network.links_to(a.node_id) == [link]


def test_edit_with_current_version_updates_in_place():
    network = HypertextNetwork()
    node = network.add_node("alice", "section", "draft")
    written = network.edit_node("bob", node.node_id, "better draft",
                                base_version=1)
    assert written is node
    assert node.content == "better draft"
    assert node.version == 2
    assert node.editors == ["alice", "bob"]
    assert network.conflicts == []


def test_stale_edit_branches_and_records_conflict():
    network = HypertextNetwork()
    node = network.add_node("alice", "section", "draft")
    network.edit_node("bob", node.node_id, "bob's version",
                      base_version=1)
    branch = network.edit_node("carol", node.node_id, "carol's version",
                               base_version=1)  # stale!
    assert branch is not node
    assert node.content == "bob's version"
    assert branch.content == "carol's version"
    assert len(network.conflicts) == 1
    assert network.alternatives_of(node.node_id) == [branch]


def test_conflict_resolution_adopts_branch():
    network = HypertextNetwork()
    node = network.add_node("alice", "section", "draft")
    network.edit_node("bob", node.node_id, "bob's", base_version=1)
    branch = network.edit_node("carol", node.node_id, "carol's",
                               base_version=1)
    resolved = network.resolve_conflict("alice", node.node_id,
                                        branch.node_id)
    assert resolved.content == "carol's"
    assert resolved.version == 3
    assert network.alternatives_of(node.node_id) == []


def test_resolve_requires_actual_alternative():
    network = HypertextNetwork()
    node = network.add_node("alice", "section", "draft")
    other = network.add_node("bob", "section", "unrelated")
    with pytest.raises(HypertextError):
        network.resolve_conflict("alice", node.node_id, other.node_id)


# -- Quilt ---------------------------------------------------------------------

def make_document():
    doc = QuiltDocument("paper", "Abstract. Intro.", creator="alice")
    doc.add_participant("bob", CO_AUTHOR)
    doc.add_participant("carol", COMMENTER)
    return doc


def test_roles():
    doc = make_document()
    assert doc.role_of("alice") == AUTHOR
    assert doc.role_of("bob") == CO_AUTHOR
    with pytest.raises(AccessDenied):
        doc.role_of("stranger")
    with pytest.raises(HypertextError):
        doc.add_participant("dave", "lurker")


def test_everyone_may_comment():
    doc = make_document()
    for user in ("alice", "bob", "carol"):
        doc.comment(user, "note from " + user)
    assert len(doc.comments()) == 3


def test_threaded_comments():
    doc = make_document()
    first = doc.comment("bob", "is this right?")
    reply = doc.comment("alice", "yes, checked", on=first.node_id)
    assert doc.thread_of(first.node_id) == [reply]


def test_commenter_cannot_suggest():
    doc = make_document()
    with pytest.raises(AccessDenied):
        doc.suggest_revision("carol", "my rewrite")


def test_co_author_suggests_author_incorporates():
    doc = make_document()
    suggestion = doc.suggest_revision("bob", "Abstract. Better intro.")
    assert doc.suggestion_status(suggestion.node_id) == OPEN
    version = doc.incorporate("alice", suggestion.node_id)
    assert version == 2
    assert doc.base_text == "Abstract. Better intro."
    assert doc.suggestion_status(suggestion.node_id) == INCORPORATED
    assert doc.suggestions(status=OPEN) == []


def test_only_author_incorporates():
    doc = make_document()
    suggestion = doc.suggest_revision("bob", "rewrite")
    with pytest.raises(AccessDenied):
        doc.incorporate("bob", suggestion.node_id)


def test_incorporate_twice_rejected():
    doc = make_document()
    suggestion = doc.suggest_revision("bob", "rewrite")
    doc.incorporate("alice", suggestion.node_id)
    with pytest.raises(HypertextError):
        doc.incorporate("alice", suggestion.node_id)


def test_reject_suggestion_keeps_it_visible():
    doc = make_document()
    suggestion = doc.suggest_revision("bob", "radical rewrite")
    doc.reject("alice", suggestion.node_id)
    assert doc.suggestion_status(suggestion.node_id) == REJECTED
    assert suggestion in doc.suggestions()
    with pytest.raises(HypertextError):
        doc.reject("alice", suggestion.node_id)


def test_only_author_revises_base():
    doc = make_document()
    with pytest.raises(AccessDenied):
        doc.revise_base("bob", "hostile takeover")
    doc.revise_base("alice", "Abstract. Intro. Conclusion.")
    assert doc.base_version == 2
    assert len(doc.base_history) == 2


def test_suggestion_status_requires_suggestion():
    doc = make_document()
    note = doc.comment("carol", "nice")
    with pytest.raises(HypertextError):
        doc.suggestion_status(note.node_id)


def test_comment_network_shape():
    """The paper's description: base + suggestions + comments."""
    doc = make_document()
    doc.comment("carol", "typo in line 3")
    doc.suggest_revision("bob", "Abstract, improved. Intro.")
    annotations = doc.network.links_to(doc.base.node_id, "annotates")
    assert len(annotations) == 2
