"""Tests for media spaces: video walls, glances, cruises, office shares."""

import pytest

from repro.errors import ReproError
from repro.net import Network, lan
from repro.sim import Environment
from repro.spaces import (
    ACCESSIBLE,
    BUSY,
    DO_NOT_DISTURB,
    MediaSpace,
)


@pytest.fixture
def env():
    return Environment()


def make_space(env, networked=False):
    network = None
    if networked:
        topo = lan(env, hosts=4)
        network = Network(env, topo)
    space = MediaSpace(env, network=network, glance_duration=5.0)
    hosts = ["host0", "host1", "host2", "host3"] if networked \
        else [None] * 4
    space.add_node("coffee-lancaster", host=hosts[0])
    space.add_node("coffee-palo-alto", host=hosts[1])
    space.add_node("gordon-office", host=hosts[2])
    space.add_node("tom-office", host=hosts[3])
    return space


def run_event(env, event):
    holder = {}

    def root(env):
        value = yield event
        holder["value"] = value

    proc = env.process(root(env))
    env.run(proc)
    return holder["value"]


def test_node_management(env):
    space = make_space(env)
    assert space.node("gordon-office").accessibility == ACCESSIBLE
    with pytest.raises(ReproError):
        space.add_node("gordon-office")
    with pytest.raises(ReproError):
        space.node("nowhere")
    with pytest.raises(ReproError):
        space.set_accessibility("gordon-office", "invisible")
    with pytest.raises(ReproError):
        MediaSpace(env, glance_duration=0)


def test_video_wall_connects_common_areas(env):
    space = make_space(env)
    wall = space.video_wall("coffee-lancaster", "coffee-palo-alto")
    assert wall.live
    assert wall in space.live_connections()
    space.hang_up(wall)
    assert not wall.live
    space.hang_up(wall)  # idempotent


def test_video_wall_carries_real_frames(env):
    space = make_space(env, networked=True)
    wall = space.video_wall("coffee-lancaster", "coffee-palo-alto")
    assert len(wall.flows) == 2  # bidirectional
    env.run(until=2.0)
    space.hang_up(wall)
    for source, binding, sink in wall.flows:
        assert sink.counters["played"] > 10


def test_glance_granted_when_accessible(env):
    space = make_space(env)
    connection = run_event(env, space.glance("tom-office",
                                             "gordon-office"))
    assert connection is not None
    assert not connection.live  # glances end by themselves
    assert connection.ended_at - connection.started_at == \
        pytest.approx(5.0)


def test_glance_refused_when_busy(env):
    space = make_space(env)
    space.set_accessibility("gordon-office", BUSY)
    connection = run_event(env, space.glance("tom-office",
                                             "gordon-office"))
    assert connection is None
    assert space.counters["glances_refused"] == 1


def test_glance_target_always_informed(env):
    """Reciprocity: being looked at is never invisible."""
    space = make_space(env)
    space.set_accessibility("gordon-office", DO_NOT_DISTURB)
    seen = []
    space.awareness.subscribe("gordon-office",
                              lambda event: seen.append(event.action),
                              event_filter=lambda name, event:
                              event.artefact == "gordon-office"
                              and event.actor != name)
    run_event(env, space.glance("tom-office", "gordon-office"))
    assert "glance" in seen


def test_glance_carries_one_way_video(env):
    space = make_space(env, networked=True)
    connection = run_event(env, space.glance("tom-office",
                                             "gordon-office"))
    assert len(connection.flows) == 1
    source, binding, sink = connection.flows[0]
    # ~5 s at 12.5 fps.
    assert 55 <= sink.counters["played"] <= 65


def test_cruise_glances_past_offices(env):
    space = make_space(env)
    space.set_accessibility("gordon-office", BUSY)
    connections = run_event(
        env, space.cruise("coffee-lancaster",
                          ["gordon-office", "tom-office"]))
    # gordon refused, tom granted.
    assert len(connections) == 1
    assert connections[0].target == "tom-office"
    assert space.counters["cruises"] == 1
    with pytest.raises(ReproError):
        space.cruise("coffee-lancaster", [])


def test_office_share_two_way(env):
    space = make_space(env, networked=True)
    share = space.office_share("gordon-office", "tom-office")
    assert len(share.flows) == 2
    env.run(until=1.0)
    space.hang_up(share)
    assert not share.live


def test_office_share_respects_dnd(env):
    space = make_space(env)
    space.set_accessibility("tom-office", DO_NOT_DISTURB)
    with pytest.raises(ReproError):
        space.office_share("gordon-office", "tom-office")


def test_counters(env):
    space = make_space(env)
    run_event(env, space.glance("tom-office", "gordon-office"))
    assert space.counters["glances_attempted"] == 1
    assert space.counters["glances_granted"] == 1
