"""Tests for virtual rooms and doors."""

import pytest

from repro.errors import ReproError
from repro.sim import Environment
from repro.spaces import (
    DOOR_AJAR,
    DOOR_CLOSED,
    DOOR_OPEN,
    ENTER_GRANTED,
    ENTER_NO_ANSWER,
    ENTER_REFUSED,
    MEETING_ROOM,
    OFFICE,
    VirtualBuilding,
)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def building(env):
    b = VirtualBuilding(env)
    b.add_room("meeting-1", kind=MEETING_ROOM)
    b.add_room("gordons-office", kind=OFFICE, owner="gordon",
               capacity=3)
    return b


def enter(env, building, person, room):
    proc_result = {}

    def root(env):
        outcome = yield building.enter(person, room)
        proc_result["outcome"] = outcome

    proc = env.process(root(env))
    env.run(proc)
    return proc_result["outcome"]


def test_room_validation(env):
    building = VirtualBuilding(env)
    with pytest.raises(ReproError):
        building.add_room("x", kind="dungeon")
    with pytest.raises(ReproError):
        building.add_room("x", capacity=0)
    building.add_room("x")
    with pytest.raises(ReproError):
        building.add_room("x")
    with pytest.raises(ReproError):
        building.room("ghost")
    with pytest.raises(ReproError):
        VirtualBuilding(env, knock_timeout=0)


def test_meeting_room_door_defaults_open(building):
    assert building.room("meeting-1").door_state == DOOR_OPEN
    assert building.room("gordons-office").door_state == DOOR_AJAR


def test_open_door_admits_immediately(env, building):
    assert enter(env, building, "tom", "meeting-1") == ENTER_GRANTED
    assert building.location_of("tom") == "meeting-1"
    assert building.occupancy()["meeting-1"] == ["tom"]


def test_closed_door_refuses(env, building):
    room = building.room("meeting-1")
    room.set_door(DOOR_CLOSED)
    assert enter(env, building, "tom", "meeting-1") == ENTER_REFUSED
    assert building.location_of("tom") is None


def test_full_room_refuses(env, building):
    room = building.room("gordons-office")
    room.occupants.extend(["a", "b", "c"])  # capacity 3
    assert enter(env, building, "tom", "gordons-office") == ENTER_REFUSED


def test_ajar_door_knock_answered(env, building):
    # Gordon is in his office and answers knocks.
    building.room("gordons-office").occupants.append("gordon")
    building.whereis["gordon"] = "gordons-office"
    assert enter(env, building, "tom", "gordons-office") == ENTER_GRANTED


def test_ajar_door_policy_refusal(env, building):
    room = building.room("gordons-office")
    room.occupants.append("gordon")
    room.answer_policy = lambda visitor: visitor != "salesperson"
    assert enter(env, building, "salesperson",
                 "gordons-office") == ENTER_REFUSED
    assert enter(env, building, "tom", "gordons-office") == ENTER_GRANTED


def test_empty_office_knock_unanswered(env, building):
    assert enter(env, building, "tom",
                 "gordons-office") == ENTER_NO_ANSWER
    assert building.counters["unanswered_knocks"] == 1


def test_entering_leaves_previous_room(env, building):
    building.add_room("meeting-2")
    enter(env, building, "tom", "meeting-1")
    enter(env, building, "tom", "meeting-2")
    assert building.location_of("tom") == "meeting-2"
    assert building.occupancy()["meeting-1"] == []


def test_leave_to_corridor(env, building):
    enter(env, building, "tom", "meeting-1")
    building.leave("tom")
    assert building.location_of("tom") is None
    building.leave("tom")  # idempotent


def test_door_change_requires_standing(env, building):
    room = building.room("gordons-office")
    with pytest.raises(ReproError):
        room.set_door(DOOR_CLOSED, by="stranger")
    room.set_door(DOOR_CLOSED, by="gordon")  # the owner may
    assert room.door_state == DOOR_CLOSED
    with pytest.raises(ReproError):
        room.set_door("revolving")


def test_presence_awareness_events(env, building):
    seen = []
    building.awareness.subscribe("observer",
                                 lambda event: seen.append(
                                     (event.actor, event.artefact,
                                      event.action)))
    enter(env, building, "tom", "meeting-1")
    building.leave("tom")
    actions = [action for _, _, action in seen]
    assert "enter" in actions and "leave" in actions


def test_knock_publishes_awareness(env, building):
    building.room("gordons-office").occupants.append("gordon")
    seen = []
    building.awareness.subscribe(
        "gordon", lambda event: seen.append(event.action),
        event_filter=lambda name, event: event.actor != name)
    enter(env, building, "tom", "gordons-office")
    assert "knock" in seen
