"""Tests for the DIVE-style virtual environment."""

import pytest

from repro.errors import ReproError
from repro.sim import Environment
from repro.spaces import VirtualEnvironment


@pytest.fixture
def env():
    return Environment()


def make_world(env):
    return VirtualEnvironment(env, check_interval=0.5)


def test_validation(env):
    with pytest.raises(ReproError):
        VirtualEnvironment(env, check_interval=0)
    world = make_world(env)
    world.embody("alice")
    with pytest.raises(ReproError):
        world.walk("alice", 1, 1, speed=0)


def test_embody_places_entity(env):
    world = make_world(env)
    entity = world.embody("alice", 5.0, 7.0)
    assert world.space.entity("alice") is entity
    assert entity.position == (5.0, 7.0)


def test_walk_reaches_destination(env):
    world = make_world(env)
    world.embody("alice", 0, 0)
    walk = world.walk("alice", 10.0, 0.0, speed=2.0)
    env.run(walk)
    assert world.space.entity("alice").position == (10.0, 0.0)
    # 10 units at 2 u/s = 5 s of walking.
    assert env.now == pytest.approx(5.0, abs=0.5)
    world.stop()


def test_approach_opens_audio_link(env):
    world = make_world(env)
    world.embody("alice", 0, 0)
    world.embody("bob", 100, 0)
    env.run(until=1.0)
    assert not world.connected("alice", "bob")
    walk = world.walk("bob", 4.0, 0.0, speed=10.0)
    env.run(walk)
    env.run(until=env.now + 1.0)
    assert world.connected("alice", "bob")
    assert world.counters["links_opened"] == 1
    world.stop()


def test_departure_closes_audio_link(env):
    world = make_world(env)
    world.embody("alice", 0, 0)
    world.embody("bob", 3, 0)
    env.run(until=1.0)
    assert world.connected("alice", "bob")
    walk = world.walk("bob", 200.0, 0.0, speed=50.0)
    env.run(walk)
    env.run(until=env.now + 1.0)
    assert not world.connected("alice", "bob")
    assert world.counters["links_closed"] == 1
    opened_at, closed_at, pair = world.link_history[0]
    assert closed_at > opened_at
    assert pair == frozenset(("alice", "bob"))
    world.stop()


def test_asymmetric_awareness_does_not_connect(env):
    """Audio requires mutual full awareness (conversation, not spying)."""
    world = make_world(env)
    # Alice has a huge focus; bob's nimbus is tiny: alice sees bob only
    # peripherally, never mutually full.
    world.embody("alice", 0, 0, focus=50, nimbus=1)
    world.embody("bob", 8, 0, focus=1, nimbus=1)
    env.run(until=2.0)
    assert not world.connected("alice", "bob")
    world.stop()


def test_say_scoped_by_awareness(env):
    world = make_world(env)
    world.embody("speaker", 0, 0)
    world.embody("near", 3, 0)
    world.embody("distant", 500, 0)
    utterance = world.say("speaker", "shall we review the design?")
    assert "near" in utterance.heard_by
    assert "distant" not in utterance.heard_by
    assert 0 < utterance.heard_by["near"] <= 1
    world.stop()


def test_say_volume_falls_with_distance(env):
    world = make_world(env)
    world.embody("speaker", 0, 0, focus=20, nimbus=20)
    world.embody("close", 2, 0, focus=20, nimbus=20)
    world.embody("far", 15, 0, focus=20, nimbus=20)
    utterance = world.say("speaker", "hello")
    assert utterance.heard_by["close"] > utterance.heard_by["far"]
    world.stop()


def test_three_party_conversation_cluster(env):
    world = make_world(env)
    for name, x in (("a", 0), ("b", 3), ("c", 6)):
        world.embody(name, x, 0)
    env.run(until=1.0)
    assert world.connected("a", "b")
    assert world.connected("b", "c")
    assert world.connected("a", "c")
    assert world.counters["links_opened"] == 3
    world.stop()
