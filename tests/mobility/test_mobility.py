"""Tests for mobile hosts, disconnected caching and addressing."""

import pytest

from repro.concurrency import SharedStore
from repro.errors import DisconnectedError, MobilityError
from repro.mobility import (
    CLIENT_WINS,
    DisconnectionTolerantContract,
    HomeAgent,
    MobileCache,
    MobileHost,
    RoamingMobile,
    SERVER_WINS,
)
from repro.net import ConnectivityLevel, Network, Topology, lan
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_mobile(env, level=ConnectivityLevel.FULL):
    topo = lan(env, hosts=2)
    net = Network(env, topo)
    mobile = MobileHost(net, "laptop", "host0", level=level)
    return net, mobile


# -- mobile host ------------------------------------------------------------------

def test_mobile_host_levels(env):
    net, mobile = make_mobile(env)
    assert mobile.connected
    assert mobile.fully_connected
    mobile.set_level(ConnectivityLevel.PARTIAL)
    assert mobile.connected
    assert not mobile.fully_connected
    mobile.set_level(ConnectivityLevel.DISCONNECTED)
    assert not mobile.connected


def test_outage_accounting(env):
    net, mobile = make_mobile(env)

    def journey(env):
        yield env.timeout(1.0)
        mobile.set_level(ConnectivityLevel.DISCONNECTED)
        yield env.timeout(5.0)
        mobile.set_level(ConnectivityLevel.PARTIAL)
        yield env.timeout(1.0)
        mobile.set_level(ConnectivityLevel.DISCONNECTED)
        yield env.timeout(2.0)
        mobile.set_level(ConnectivityLevel.FULL)

    env.process(journey(env))
    env.run()
    assert mobile.total_disconnected == pytest.approx(7.0)
    assert mobile.longest_outage == pytest.approx(5.0)
    assert mobile.counters["outages"] == 2
    assert mobile.counters["reconnections"] == 2


def test_current_outage_during_disconnection(env):
    net, mobile = make_mobile(env, level=ConnectivityLevel.DISCONNECTED)
    env.run(until=3.0)
    assert mobile.current_outage() == pytest.approx(3.0)


def test_level_change_listeners(env):
    net, mobile = make_mobile(env)
    seen = []
    mobile.on_level_change(seen.append)
    mobile.set_level(ConnectivityLevel.PARTIAL)
    assert seen == [ConnectivityLevel.PARTIAL]


def test_disconnection_contract_violation(env):
    net, mobile = make_mobile(env)
    violations = []
    contract = DisconnectionTolerantContract(
        env, mobile, max_outage=3.0,
        on_violation=violations.append, check_interval=0.5)

    def journey(env):
        yield env.timeout(1.0)
        mobile.set_level(ConnectivityLevel.DISCONNECTED)
        yield env.timeout(5.0)  # exceeds accepted 3s
        mobile.set_level(ConnectivityLevel.FULL)

    env.process(journey(env))
    env.run(until=10.0)
    assert contract.violations == 1
    assert violations and violations[0] > 3.0


def test_disconnection_contract_tolerates_short_outage(env):
    net, mobile = make_mobile(env)
    contract = DisconnectionTolerantContract(env, mobile, max_outage=3.0,
                                             check_interval=0.5)

    def journey(env):
        yield env.timeout(1.0)
        mobile.set_level(ConnectivityLevel.DISCONNECTED)
        yield env.timeout(2.0)  # within the accepted level
        mobile.set_level(ConnectivityLevel.FULL)

    env.process(journey(env))
    env.run(until=10.0)
    assert contract.violations == 0


def test_contract_validation(env):
    net, mobile = make_mobile(env)
    with pytest.raises(MobilityError):
        DisconnectionTolerantContract(env, mobile, max_outage=-1)


# -- disconnected cache -------------------------------------------------------------

def make_cache(env, policy=SERVER_WINS):
    net, mobile = make_mobile(env)
    store = SharedStore("server")
    store.write("report", "v1", writer="server")
    store.write("map", "map-data", writer="server")
    cache = MobileCache(env, mobile, store, conflict_policy=policy)
    return mobile, store, cache


def test_cache_validation(env):
    net, mobile = make_mobile(env)
    with pytest.raises(MobilityError):
        MobileCache(env, mobile, SharedStore(), conflict_policy="duel")
    with pytest.raises(MobilityError):
        MobileCache(env, mobile, SharedStore(), transfer_rate=0)


def test_hoard_then_disconnected_read(env):
    mobile, store, cache = make_cache(env)

    def root(env):
        yield from cache.hoard(["report", "map"])
        mobile.set_level(ConnectivityLevel.DISCONNECTED)
        value = yield from cache.read("report")
        return value

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == "v1"
    assert cache.counters["reads:cache"] == 1
    assert cache.cached_keys() == ["map", "report"]


def test_disconnected_miss_raises(env):
    mobile, store, cache = make_cache(env)
    mobile.set_level(ConnectivityLevel.DISCONNECTED)
    failures = []

    def root(env):
        try:
            yield from cache.read("report")  # never hoarded
        except DisconnectedError:
            failures.append(True)

    proc = env.process(root(env))
    env.run(proc)
    assert failures == [True]
    assert cache.counters["reads:miss"] == 1


def test_hoard_requires_connection(env):
    mobile, store, cache = make_cache(env)
    mobile.set_level(ConnectivityLevel.DISCONNECTED)
    with pytest.raises(DisconnectedError):
        next(cache.hoard(["report"]))


def test_connected_write_through(env):
    mobile, store, cache = make_cache(env)

    def root(env):
        version = yield from cache.write("report", "v2")
        return version

    proc = env.process(root(env))
    env.run(proc)
    assert store.read("report") == "v2"
    assert proc.value == 2


def test_disconnected_writes_logged_and_reintegrated(env):
    mobile, store, cache = make_cache(env)

    def root(env):
        yield from cache.hoard(["report"])
        mobile.set_level(ConnectivityLevel.DISCONNECTED)
        yield from cache.write("report", "field-edit-1")
        yield from cache.write("notes", "new-notes")
        assert cache.pending_updates == 2
        # Reads see the locally written value meanwhile.
        value = yield from cache.read("report")
        assert value == "field-edit-1"
        mobile.set_level(ConnectivityLevel.FULL)
        applied, conflicted = yield from cache.reintegrate()
        return (applied, conflicted)

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == (2, 0)
    assert store.read("report") == "field-edit-1"
    assert store.read("notes") == "new-notes"
    assert cache.pending_updates == 0


def test_reintegration_conflict_server_wins(env):
    mobile, store, cache = make_cache(env, policy=SERVER_WINS)

    def root(env):
        yield from cache.hoard(["report"])
        mobile.set_level(ConnectivityLevel.DISCONNECTED)
        yield from cache.write("report", "mobile-edit")
        # Someone at the office edits the same report meanwhile.
        store.write("report", "office-edit", writer="colleague")
        mobile.set_level(ConnectivityLevel.FULL)
        applied, conflicted = yield from cache.reintegrate()
        return (applied, conflicted)

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == (0, 1)
    assert store.read("report") == "office-edit"
    assert cache.conflicts == [("report", "office-edit", "mobile-edit")]


def test_reintegration_conflict_client_wins(env):
    mobile, store, cache = make_cache(env, policy=CLIENT_WINS)
    conflicts = []
    cache.on_conflict = lambda key, server, client: conflicts.append(key)

    def root(env):
        yield from cache.hoard(["report"])
        mobile.set_level(ConnectivityLevel.DISCONNECTED)
        yield from cache.write("report", "mobile-edit")
        store.write("report", "office-edit", writer="colleague")
        mobile.set_level(ConnectivityLevel.FULL)
        applied, conflicted = yield from cache.reintegrate()
        return (applied, conflicted)

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == (1, 1)
    assert store.read("report") == "mobile-edit"
    assert conflicts == ["report"]


def test_reintegrate_requires_connection(env):
    mobile, store, cache = make_cache(env)
    mobile.set_level(ConnectivityLevel.DISCONNECTED)
    with pytest.raises(DisconnectedError):
        next(cache.reintegrate())


def test_reintegrate_empty_log(env):
    mobile, store, cache = make_cache(env)

    def root(env):
        result = yield from cache.reintegrate()
        return result
        yield  # pragma: no cover

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == (0, 0)


def test_partial_link_slows_transfers(env):
    """Bulk updates exploit higher connection levels (paper §4.2.2)."""
    mobile, store, cache = make_cache(env)

    def timed_hoard(env, level):
        mobile.set_level(level)
        start = env.now
        yield from cache.hoard(["report"])
        return env.now - start

    fast = env.process(timed_hoard(env, ConnectivityLevel.FULL))
    env.run(fast)
    slow = env.process(timed_hoard(env, ConnectivityLevel.PARTIAL))
    env.run(slow)
    assert slow.value > fast.value * 10


# -- addressing ---------------------------------------------------------------------

def make_roaming(env):
    topo = Topology(env)
    topo.add_link("home", "baseA", latency=0.01)
    topo.add_link("home", "baseB", latency=0.01)
    topo.add_link("home", "office", latency=0.005)
    net = Network(env, topo)
    agent = HomeAgent(net, "home")
    mobile = RoamingMobile(net, "laptop", agent, "baseA",
                           level=ConnectivityLevel.FULL)
    return net, agent, mobile


def test_home_agent_forwards_to_current_base(env):
    net, agent, mobile = make_roaming(env)
    received = []
    mobile.host.on_packet(7, lambda p: received.append(p.payload))
    net.host("office")
    agent.send_to_mobile("office", "laptop", payload="job-sheet",
                         size=100, port=7)
    env.run()
    assert received == ["job-sheet"]
    assert agent.counters["forwarded"] == 1


def test_home_agent_handoff_reroutes(env):
    net, agent, mobile = make_roaming(env)
    received = []
    mobile.host.on_packet(7, lambda p: received.append(p.payload))
    net.host("office")
    mobile.handoff("baseB")
    assert agent.binding_of("laptop") == "baseB"
    assert agent.counters["handoffs"] == 1
    agent.send_to_mobile("office", "laptop", payload="after-handoff",
                         size=100, port=7)
    env.run()
    assert received == ["after-handoff"]
    assert mobile.handoffs[0][1:] == ("baseA", "baseB")


def test_home_agent_unknown_mobile_dropped(env):
    net, agent, mobile = make_roaming(env)
    net.host("office")
    agent.send_to_mobile("office", "ghost", payload="x")
    env.run()
    assert agent.counters["undeliverable"] == 1


def test_handoff_validation(env):
    net, agent, mobile = make_roaming(env)
    with pytest.raises(MobilityError):
        mobile.handoff("baseA")  # already there
    with pytest.raises(MobilityError):
        mobile.handoff("nowhere")


def test_register_unknown_base_rejected(env):
    net, agent, mobile = make_roaming(env)
    with pytest.raises(MobilityError):
        agent.register("laptop", "nowhere")
