"""Flight recorder: ring bounds, epoch digests, journaling, black box."""

import json

import pytest

from repro import obs
from repro.analysis.replay import run_isolated, trace_digest
from repro.obs.flight import (
    NOOP_FLIGHT,
    BlackBox,
    FlightRecorder,
    canonical,
    use_flight,
)


def _feed(recorder, dispatches, rng_every=None):
    """Feed a deterministic synthetic stream of kernel decisions."""
    for eid in range(dispatches):
        recorder.on_dispatch(float(eid), 0, eid)
        if rng_every and eid % rng_every == 0:
            recorder.record_rng("s", "random", 0.5)


# -- ring bounds and counters ----------------------------------------------


def test_ring_is_bounded_and_counts_evictions():
    recorder = FlightRecorder(ring=8, epoch_events=1000)
    _feed(recorder, 20)
    assert len(recorder.ring) == 8
    assert recorder.recorded == 20
    assert recorder.evicted == 12
    # The ring holds the *newest* records.
    assert [r["eid"] for r in recorder.ring] == list(range(12, 20))
    stats = recorder.stats()
    assert stats["recorded"] == 20 and stats["evicted"] == 12
    assert stats["retained"] == 8


def test_validation():
    with pytest.raises(ValueError):
        FlightRecorder(ring=0)
    with pytest.raises(ValueError):
        FlightRecorder(epoch_events=0)
    with pytest.raises(ValueError):
        FlightRecorder(epoch_interval=0.0)
    with pytest.raises(ValueError):
        FlightRecorder(epoch_events=10, epoch_interval=1.0)


# -- epoch digests ---------------------------------------------------------


def test_epoch_rolls_every_n_events():
    recorder = FlightRecorder(epoch_events=4)
    _feed(recorder, 10)
    assert recorder.epoch == 2          # two closed, one partial
    assert recorder.finish() == 3
    assert recorder.finish() == 3       # idempotent


def test_epoch_interval_rolls_at_time_boundaries():
    recorder = FlightRecorder(epoch_interval=1.0)
    for eid, time in enumerate([0.1, 0.5, 1.2, 1.9, 3.5]):
        recorder.on_dispatch(time, 0, eid)
    # t=1.2 crossed boundary 1; t=3.5 crossed boundaries 2 and 3.
    assert recorder.epoch == 3
    epochs = [r["epoch"] for r in recorder.ring]
    assert epochs == [0, 0, 1, 1, 3]
    recorder.finish()
    assert len(recorder.epoch_digests) == 4


def test_digests_chain_prefix_property():
    # Identical prefixes hash identically; appending records changes
    # only subsequent epochs.
    short = FlightRecorder(epoch_events=4)
    long = FlightRecorder(epoch_events=4)
    _feed(short, 8)
    _feed(long, 12)
    short.finish()
    long.finish()
    assert short.epoch_digests[:2] == long.epoch_digests[:2]
    assert len(long.epoch_digests) == 3


def test_digests_stable_across_retention_settings():
    # Digests cover the whole run regardless of how little the ring
    # retains — divergence compares digests from tiny-ring runs.
    variants = [
        FlightRecorder(ring=2, epoch_events=4),
        FlightRecorder(ring=4096, epoch_events=4),
        FlightRecorder(ring=4096, epoch_events=4, keep_epochs=(1, 1)),
    ]
    for recorder in variants:
        _feed(recorder, 10, rng_every=3)
        recorder.finish()
    digests = {tuple(recorder.epoch_digests) for recorder in variants}
    assert len(digests) == 1


def test_digests_differ_on_injected_fork():
    run_a = FlightRecorder(epoch_events=4)
    run_b = FlightRecorder(epoch_events=4)
    _feed(run_a, 10)
    for eid in range(10):
        run_b.on_dispatch(float(eid), 0, eid)
        if eid == 6:                    # one extra draw in epoch 1
            run_b.record_rng("s", "random", 0.123)
    run_a.finish()
    run_b.finish()
    assert run_a.epoch_digests[0] == run_b.epoch_digests[0]
    assert run_a.epoch_digests[1] != run_b.epoch_digests[1]


class _SlowFlight(FlightRecorder):
    """A recorder whose every record takes the generic canonical path."""

    def _append(self, record, canon=None):
        FlightRecorder._append(self, record,
                               canonical(dict(record, epoch=self.epoch)))


def _exercise(recorder, streams=("s", 'we"ird\\')):
    times = [0, 1, 0.1, 1.5e-9, 12345.678901234567, 2.0 ** 40]
    for eid, time in enumerate(times):
        recorder.on_dispatch(time, eid % 3, eid)
        for stream in streams:
            recorder.record_rng(stream, "random", 0.5 + eid)
            recorder.record_rng(stream, "getrandbits", eid * 7)
        recorder.record_hop("a<->b", "a", "a", "b", 9)
        recorder.record_hop('q"\\uote', "a", "a", "b", 9)
    recorder.finish()


def test_fast_path_canonical_matches_generic_encoder():
    # The hot channels (dispatch/rng/hop) hash format-string canonical
    # forms instead of json.dumps; they must stay byte-identical to the
    # generic encoder for ints, floats, plain strings AND fall back
    # correctly on strings needing JSON escapes.
    fast = FlightRecorder(epoch_events=3)
    slow = _SlowFlight(epoch_events=3)
    _exercise(fast)
    _exercise(slow)
    assert fast.epoch_digests == slow.epoch_digests
    for record in fast.ring:
        assert json.loads(canonical(record)) == record


def test_side_fields_do_not_influence_digests():
    class FakeSpan:
        is_recording = True
        trace_id, span_id, name = "t1", "s1", "net.transmit"

    plain = FlightRecorder(epoch_events=4)
    traced = FlightRecorder(epoch_events=4)
    plain.record_hop("l", "n", "a", "b", 7)
    traced.record_hop("l", "n", "a", "b", 7, span=FakeSpan())
    plain.finish()
    traced.finish()
    assert plain.epoch_digests == traced.epoch_digests
    record = list(traced.ring)[0]
    assert record["_trace"] == "t1"
    assert "_trace" not in json.loads(canonical(record))


# -- keep_epochs / context -------------------------------------------------


def test_keep_epochs_restricts_ring_and_fills_context():
    recorder = FlightRecorder(epoch_events=4, keep_epochs=(1, 1),
                              context=3)
    _feed(recorder, 12)
    recorder.finish()
    assert [r["epoch"] for r in recorder.ring] == [1] * 4
    assert [r["eid"] for r in recorder.context] == [1, 2, 3]
    assert recorder.epoch_records(1) == list(recorder.ring)
    assert len(recorder.epoch_digests) == 3


# -- journaling a real workload --------------------------------------------


@pytest.mark.parametrize("name", ["locks-hard", "flaky-links",
                                  "traced-rpc"])
def test_recorder_never_perturbs_workload(name):
    baseline = trace_digest(run_isolated(name, 31))
    recorder = FlightRecorder(epoch_events=64)
    with use_flight(recorder):
        observed = trace_digest(run_isolated(name, 31))
    recorder.finish()
    assert observed == baseline
    assert recorder.recorded > 0
    assert len(recorder.epoch_digests) >= 1


def test_same_seed_runs_journal_identically():
    digests = []
    for _ in range(2):
        recorder = FlightRecorder(ring=16, epoch_events=64)
        with use_flight(recorder):
            run_isolated("locks-hard", 31)
        recorder.finish()
        digests.append(recorder.epoch_digests)
    assert digests[0] == digests[1]


def test_workload_journal_covers_all_channels():
    recorder = FlightRecorder(ring=1 << 16)
    with use_flight(recorder):
        run_isolated("locks-hard", 31)
    kinds = {record["kind"] for record in recorder.ring}
    assert {"dispatch", "rng", "lock", "spawn", "exit"} <= kinds


def test_channel_flags_silence_their_records():
    recorder = FlightRecorder(ring=1 << 16, journal_dispatch=False,
                              journal_rng=False, journal_locks=False,
                              journal_actors=False)
    with use_flight(recorder):
        run_isolated("locks-hard", 31)
    recorder.finish()
    assert len(recorder.ring) == 0
    # Epochs still advance on dispatch even with every channel off.
    assert len(recorder.epoch_digests) >= 1


def test_journalled_rng_draws_match_plain_rng():
    import random

    from repro.sim.rng import RandomStreams

    plain = RandomStreams(77).stream("s")
    recorder = FlightRecorder(ring=64)
    with use_flight(recorder):
        journalled = RandomStreams(77).stream("s")
    sequence = [journalled.random(), journalled.getrandbits(16),
                journalled.randrange(10), journalled.gauss(0, 1),
                journalled.choice([1, 2, 3])]
    expected = [plain.random(), plain.getrandbits(16),
                plain.randrange(10), plain.gauss(0, 1),
                plain.choice([1, 2, 3])]
    assert sequence == expected
    assert isinstance(plain, random.Random)
    assert recorder.recorded > 0
    assert all(r["stream"] == "s" for r in recorder.ring)


# -- export integration ----------------------------------------------------


def test_dump_jsonl_carries_meta_and_flight(tmp_path):
    recorder = FlightRecorder(ring=32, epoch_events=64)
    with use_flight(recorder):
        run_isolated("locks-hard", 31)
    recorder.finish()
    path = str(tmp_path / "flight.jsonl")
    with obs.use_metrics(obs.MetricsRegistry()):
        obs.dump_jsonl(path, flight=recorder,
                       meta={"workload": "locks-hard", "seed": 31})
    records = obs.load_jsonl(path)
    assert records[0]["kind"] == "meta"
    assert records[0]["schema"] == obs.META_SCHEMA
    assert records[0]["seed"] == 31
    digests = [r for r in records if r.get("kind") == "flight-epoch"]
    assert [d["digest"] for d in digests] == recorder.epoch_digests
    assert sum(1 for r in records if r.get("kind") == "rng") > 0


# -- the black box ---------------------------------------------------------


def _crashing_run(recorder):
    from repro.sim import Environment

    with use_flight(recorder):
        env = Environment()

        def boom(env):
            yield env.timeout(1.0)
            raise RuntimeError("kaput")

        env.process(boom(env), name="doomed")
        env.run()


def test_black_box_dumps_on_exception(tmp_path):
    path = str(tmp_path / "blackbox.jsonl")
    recorder = FlightRecorder(ring=64)
    box = BlackBox(path, flight=recorder, last=16)
    with obs.use_metrics(obs.MetricsRegistry()):
        with pytest.raises(RuntimeError, match="kaput"):
            with box.armed():
                _crashing_run(recorder)
    assert box.dumps == 1
    records = obs.load_jsonl(path)
    meta = records[0]
    assert meta["kind"] == "meta" and meta["black_box"] is True
    assert meta["reason"] == "exception"
    assert meta["error"] == "RuntimeError: kaput"
    assert meta["flight"]["recorded"] == recorder.recorded
    kinds = [r["kind"] for r in records]
    assert "spawn" in kinds and "exit" in kinds
    exit_record = next(r for r in records if r["kind"] == "exit")
    assert exit_record["actor"] == "doomed" and exit_record["ok"] is False


def test_black_box_respects_last(tmp_path):
    path = str(tmp_path / "tail.jsonl")
    recorder = FlightRecorder(ring=256, epoch_events=1000)
    _feed(recorder, 100)
    box = BlackBox(path, flight=recorder, last=5)
    with obs.use_metrics(obs.MetricsRegistry()):
        box.dump("manual")
    records = obs.load_jsonl(path)
    dispatches = [r for r in records if r["kind"] == "dispatch"]
    assert [r["eid"] for r in dispatches] == list(range(95, 100))


def test_black_box_records_open_spans(tmp_path):
    path = str(tmp_path / "spans.jsonl")
    tracer = obs.Tracer()
    tracer.start_span("stuck", at=1.0)
    done = tracer.start_span("done", at=2.0)
    done.finish(at=3.0)
    box = BlackBox(path, flight=NOOP_FLIGHT, tracer=tracer)
    with obs.use_metrics(obs.MetricsRegistry()):
        box.dump("manual")
    spans = [r for r in obs.load_jsonl(path) if r.get("kind") == "span"]
    assert [s["name"] for s in spans] == ["stuck"]
    assert spans[0]["open"] is True


def test_black_box_arms_slo_monitor(tmp_path):
    path = str(tmp_path / "slo.jsonl")
    box = BlackBox(path, flight=NOOP_FLIGHT, tracer=obs.NOOP_TRACER)

    class Alert:
        severity, slo = "page", "latency"

    class Monitor:
        on_alert = None

    seen = []
    monitor = Monitor()
    monitor.on_alert = lambda kind, alert: seen.append(kind)
    box.arm_slo(monitor, severity="page")
    with obs.use_metrics(obs.MetricsRegistry()):
        monitor.on_alert("cleared", Alert())   # wrong kind: no dump
        assert box.dumps == 0
        monitor.on_alert("fired", Alert())
    assert box.dumps == 1
    assert seen == ["cleared", "fired"]        # chained callback intact
    meta = obs.load_jsonl(path)[0]
    assert meta["reason"] == "slo:latency"


def test_black_box_validation():
    with pytest.raises(ValueError):
        BlackBox("x.jsonl", last=0)


# -- the process-wide default ----------------------------------------------


def test_noop_flight_is_inert_default():
    assert obs.get_flight() is NOOP_FLIGHT
    assert not NOOP_FLIGHT.enabled
    NOOP_FLIGHT.on_dispatch(0.0, 0, 0)
    NOOP_FLIGHT.record_rng("s", "random", 0.5)
    assert NOOP_FLIGHT.finish() == 0
    assert list(NOOP_FLIGHT.records()) == []
    assert len(NOOP_FLIGHT) == 0


def test_use_flight_scopes_and_restores():
    recorder = FlightRecorder()
    with use_flight(recorder):
        assert obs.get_flight() is recorder
    assert obs.get_flight() is NOOP_FLIGHT


# -- PR 10: journal byte-compatibility across schedulers -------------------


def test_journal_identical_between_heap_and_calendar():
    """Satellite guarantee of the calendar-queue PR: the dispatch
    journal — every (time, priority, eid) record AND the chained epoch
    digests — is byte-identical whichever queue drives the run.  The
    recorder receives unpacked parts via dispatch_parts(), so this
    holds by construction unless a scheduler reorders dispatches."""
    from repro.sim.environment import use_scheduler

    journals = {}
    for scheduler in ("heap", "calendar"):
        recorder = FlightRecorder(ring=1 << 16, epoch_events=256)
        with use_scheduler(scheduler), use_flight(recorder):
            run_isolated("locks-hard", 31)
        recorder.finish()
        journals[scheduler] = (
            [canonical(record) for record in recorder.ring],
            recorder.epoch_digests,
            recorder.recorded,
        )
    assert journals["calendar"] == journals["heap"]


def test_journal_identical_across_schedulers_under_network_storm():
    """Same guarantee on a packet workload: burst-carry elides events
    *virtually*, so the eids that do reach the journal line up."""
    from repro.sim.environment import use_scheduler

    journals = {}
    for scheduler in ("heap", "calendar"):
        recorder = FlightRecorder(ring=1 << 16, epoch_events=256)
        with use_scheduler(scheduler), use_flight(recorder):
            run_isolated("flaky-links", 31)
        recorder.finish()
        journals[scheduler] = (
            [canonical(record) for record in recorder.ring],
            recorder.epoch_digests,
        )
    assert journals["calendar"] == journals["heap"]
