"""The metrics registry: instruments, labels, snapshot."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_basic(registry):
    registry.counter("net.drops", reason="loss").add()
    registry.counter("net.drops", reason="loss").add(2)
    registry.counter("net.drops", reason="no-route").add()
    assert registry.counter("net.drops", reason="loss").value == 3
    assert registry.counters("net.drops") == {
        "net.drops{reason=loss}": 3,
        "net.drops{reason=no-route}": 1,
    }


def test_instruments_cached_by_name_and_labels(registry):
    a = registry.counter("x", node="n1")
    b = registry.counter("x", node="n1")
    c = registry.counter("x", node="n2")
    assert a is b
    assert a is not c
    # Label order is irrelevant.
    h1 = registry.histogram("y", node="n1", op="read")
    h2 = registry.histogram("y", op="read", node="n1")
    assert h1 is h2


def test_histogram_summary(registry):
    hist = registry.histogram("rpc.latency", node="n1")
    for value in (0.1, 0.2, 0.3):
        hist.record(value)
    assert hist.count == 3
    assert abs(hist.mean - 0.2) < 1e-12
    summary = hist.summary()
    assert summary["count"] == 3.0
    assert summary["max"] == 0.3


def test_gauge_tracks_last_value(registry):
    gauge = registry.gauge("queue.depth", node="n1")
    gauge.set(3, at=1.0)
    gauge.set(5, at=2.0)
    assert gauge.last == 5


def test_snapshot_shape(registry):
    registry.counter("a").add()
    registry.histogram("b", k="v").record(1.0)
    registry.gauge("c").set(2.0, at=0.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a": 1}
    assert snapshot["histograms"]["b{k=v}"]["count"] == 1.0
    assert snapshot["gauges"]["c"] == 2.0


def test_records_are_flat_and_typed(registry):
    registry.counter("a", x="1").add(4)
    registry.histogram("b").record(2.0)
    records = list(registry.records())
    kinds = {(r["type"], r["name"]) for r in records}
    assert kinds == {("counter", "a"), ("histogram", "b")}
    counter = next(r for r in records if r["type"] == "counter")
    assert counter == {"kind": "metric", "type": "counter", "name": "a",
                       "labels": {"x": "1"}, "value": 4}


def test_reset(registry):
    registry.counter("a").add()
    registry.reset()
    assert registry.snapshot() == {
        "counters": {}, "histograms": {}, "gauges": {}}


def test_use_metrics_scopes_the_default():
    outer = obs.get_metrics()
    scoped = MetricsRegistry()
    with obs.use_metrics(scoped):
        assert obs.get_metrics() is scoped
        obs.get_metrics().counter("in.scope").add()
    assert obs.get_metrics() is outer
    assert scoped.counter("in.scope").value == 1


def test_bound_instruments_are_the_keyed_instruments(registry):
    bound = registry.bind_counter("net.sent", node="n1")
    assert bound is registry.counter("net.sent", node="n1")
    bound.add(3)
    assert registry.counter("net.sent", node="n1").value == 3
    hist = registry.bind_histogram("rpc.latency", node="n1")
    assert hist is registry.histogram("rpc.latency", node="n1")
    hist.record(0.5)
    assert registry.histogram("rpc.latency", node="n1").count == 1
    gauge = registry.bind_gauge("depth", node="n1")
    assert gauge is registry.gauge("depth", node="n1")


def test_bound_counter_cache_binds_once_per_label_value():
    from repro.obs.metrics import BoundCounterCache
    with obs.use_metrics(MetricsRegistry()) as registry:
        cache = BoundCounterCache("chan.retries", "dst", node="n1")
        first = cache.get("n2")
        assert cache.get("n2") is first
        first.add()
        cache.get("n3").add(2)
        assert registry.counter("chan.retries", node="n1",
                                dst="n2").value == 1
        assert registry.counter("chan.retries", node="n1",
                                dst="n3").value == 2


def test_bound_counter_cache_rebinds_on_registry_swap():
    from repro.obs.metrics import BoundCounterCache
    cache = BoundCounterCache("c", "k")
    with obs.use_metrics(MetricsRegistry()) as first:
        cache.get("v").add()
    with obs.use_metrics(MetricsRegistry()) as second:
        cache.get("v").add()
        cache.get("v").add()
    assert first.counter("c", k="v").value == 1
    assert second.counter("c", k="v").value == 2


def test_null_registry_instruments_are_shared_noops():
    from repro.obs.metrics import (
        NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM, NullRegistry)
    registry = NullRegistry()
    assert registry.counter("a", x="1") is NULL_COUNTER
    assert registry.counter("b") is NULL_COUNTER
    assert registry.bind_counter("c") is NULL_COUNTER
    assert registry.histogram("h") is NULL_HISTOGRAM
    assert registry.gauge("g") is NULL_GAUGE
    NULL_COUNTER.add(5)
    NULL_HISTOGRAM.record(1.0)
    NULL_GAUGE.set(2.0, at=0.5)
    assert NULL_COUNTER.value == 0
    assert NULL_HISTOGRAM.count == 0
    assert NULL_HISTOGRAM.count_below(10.0) == 0
    assert NULL_HISTOGRAM.summary() == {"count": 0}
    assert NULL_GAUGE.last == 0.0
    # Queries inherited from MetricsRegistry read as empty.
    assert registry.counters() == {}
    assert registry.snapshot() == {
        "counters": {}, "histograms": {}, "gauges": {}}


def test_count_below_is_incremental_after_first_query(registry):
    hist = registry.histogram("lat")
    for value in (0.1, 0.2, 0.3):
        hist.record(value)
    assert hist.count_below(0.2) == 2  # first query scans and registers
    hist.record(0.15)
    hist.record(0.9)
    assert hist.count_below(0.2) == 3  # later records kept it current
    assert hist.count_below(0.95) == 5  # fresh threshold backfills fully
    hist.record(0.05)
    assert hist.count_below(0.2) == 4
    assert hist.count_below(0.95) == 6


# -- label-subset queries ---------------------------------------------------

def test_counter_total_over_label_subsets(registry):
    registry.counter("reqs", node="a", op="post").add(3)
    registry.counter("reqs", node="a", op="read").add(2)
    registry.counter("reqs", node="b", op="post").add(5)
    registry.counter("reqs", node="b").add(7)  # coarser label set
    assert registry.counter_total("reqs") == 17
    assert registry.counter_total("reqs", node="a") == 5
    assert registry.counter_total("reqs", op="post") == 8
    assert registry.counter_total("reqs", node="b") == 12
    assert registry.counter_total("reqs", node="b", op="post") == 5


def test_counter_total_zero_match_subsets(registry):
    registry.counter("reqs", node="a").add(3)
    assert registry.counter_total("reqs", node="z") == 0
    assert registry.counter_total("reqs", shard="0") == 0
    assert registry.counter_total("other") == 0
    # Querying MORE labels than any instrument carries matches nothing.
    assert registry.counter_total("reqs", node="a", op="post") == 0


def test_histogram_count_below_over_label_subsets(registry):
    registry.histogram("lat", node="a", op="post").record(0.1)
    registry.histogram("lat", node="a", op="read").record(0.5)
    registry.histogram("lat", node="b", op="post").record(0.1)
    assert registry.histogram_count_below("lat", 0.2) == 2
    assert registry.histogram_count_below("lat", 0.2, node="a") == 1
    assert registry.histogram_count_below("lat", 0.2, op="post") == 2
    assert registry.histogram_count_below("lat", 1.0, node="a") == 2
    assert registry.histogram_count_below("lat", 0.2, node="z") == 0
    assert registry.histogram_count_below("lat", 0.2, shard="9") == 0
    assert registry.histogram_count("lat", op="post") == 2


# -- deterministic iteration order ------------------------------------------

def _populate_unordered(registry):
    # Insertion order deliberately scrambled relative to sort order.
    registry.counter("z.last", node="n9").add(1)
    registry.counter("a.first", node="n2").add(2)
    registry.counter("a.first", node="n1").add(3)
    registry.histogram("m.mid", op="b").record(1.0)
    registry.histogram("m.mid", op="a").record(2.0)
    registry.gauge("g", k="2").set(1.0, at=0.0)
    registry.gauge("g", k="1").set(2.0, at=0.0)


def test_snapshot_iterates_in_sorted_key_order(registry):
    _populate_unordered(registry)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == [
        "a.first{node=n1}", "a.first{node=n2}", "z.last{node=n9}"]
    assert list(snapshot["histograms"]) == ["m.mid{op=a}", "m.mid{op=b}"]
    assert list(snapshot["gauges"]) == ["g{k=1}", "g{k=2}"]


def test_records_counters_views_and_items_share_the_order(registry):
    _populate_unordered(registry)
    expected = ["a.first{node=n1}", "a.first{node=n2}", "z.last{node=n9}"]
    assert list(registry.counters()) == expected
    assert [key for key, _ in registry.counter_items()] == expected
    assert [key for key, _ in registry.histogram_items()] == [
        "m.mid{op=a}", "m.mid{op=b}"]
    assert [key for key, _ in registry.gauge_items()] == [
        "g{k=1}", "g{k=2}"]
    records = list(registry.records())
    rendered = [(r["type"], r["name"], tuple(sorted(r["labels"].items())))
                for r in records]
    assert rendered == sorted(rendered, key=lambda r: (
        {"counter": 0, "histogram": 1, "gauge": 2}[r[0]], r[1], r[2]))


def test_items_return_live_instruments(registry):
    registry.counter("a", node="n1").add(2)
    ((key, inst),) = registry.counter_items()
    assert key == "a{node=n1}"
    inst.add(3)
    assert registry.counter("a", node="n1").value == 5


def test_histograms_and_gauges_views(registry):
    registry.histogram("h", k="v").record(1.0)
    registry.gauge("g").set(4.0, at=1.0)
    assert registry.histograms()["h{k=v}"]["count"] == 1.0
    assert registry.gauges() == {"g": 4.0}
    assert registry.histograms("nope") == {}
