"""The metrics registry: instruments, labels, snapshot."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_basic(registry):
    registry.counter("net.drops", reason="loss").add()
    registry.counter("net.drops", reason="loss").add(2)
    registry.counter("net.drops", reason="no-route").add()
    assert registry.counter("net.drops", reason="loss").value == 3
    assert registry.counters("net.drops") == {
        "net.drops{reason=loss}": 3,
        "net.drops{reason=no-route}": 1,
    }


def test_instruments_cached_by_name_and_labels(registry):
    a = registry.counter("x", node="n1")
    b = registry.counter("x", node="n1")
    c = registry.counter("x", node="n2")
    assert a is b
    assert a is not c
    # Label order is irrelevant.
    h1 = registry.histogram("y", node="n1", op="read")
    h2 = registry.histogram("y", op="read", node="n1")
    assert h1 is h2


def test_histogram_summary(registry):
    hist = registry.histogram("rpc.latency", node="n1")
    for value in (0.1, 0.2, 0.3):
        hist.record(value)
    assert hist.count == 3
    assert abs(hist.mean - 0.2) < 1e-12
    summary = hist.summary()
    assert summary["count"] == 3.0
    assert summary["max"] == 0.3


def test_gauge_tracks_last_value(registry):
    gauge = registry.gauge("queue.depth", node="n1")
    gauge.set(3, at=1.0)
    gauge.set(5, at=2.0)
    assert gauge.last == 5


def test_snapshot_shape(registry):
    registry.counter("a").add()
    registry.histogram("b", k="v").record(1.0)
    registry.gauge("c").set(2.0, at=0.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a": 1}
    assert snapshot["histograms"]["b{k=v}"]["count"] == 1.0
    assert snapshot["gauges"]["c"] == 2.0


def test_records_are_flat_and_typed(registry):
    registry.counter("a", x="1").add(4)
    registry.histogram("b").record(2.0)
    records = list(registry.records())
    kinds = {(r["type"], r["name"]) for r in records}
    assert kinds == {("counter", "a"), ("histogram", "b")}
    counter = next(r for r in records if r["type"] == "counter")
    assert counter == {"kind": "metric", "type": "counter", "name": "a",
                       "labels": {"x": "1"}, "value": 4}


def test_reset(registry):
    registry.counter("a").add()
    registry.reset()
    assert registry.snapshot() == {
        "counters": {}, "histograms": {}, "gauges": {}}


def test_use_metrics_scopes_the_default():
    outer = obs.get_metrics()
    scoped = MetricsRegistry()
    with obs.use_metrics(scoped):
        assert obs.get_metrics() is scoped
        obs.get_metrics().counter("in.scope").add()
    assert obs.get_metrics() is outer
    assert scoped.counter("in.scope").value == 1
