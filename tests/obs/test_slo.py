"""SLO burn-rate evaluation: objectives, windows, alert lifecycle."""

import pytest

from repro.errors import QoSError
from repro.obs import slo
from repro.obs.metrics import MetricsRegistry
from repro.qos import QoSBroker, QoSMonitor, QoSParameters
from repro.sim import Environment

WINDOWS = ((10.0, 2.0, 4.0, "page"),)


def drive(env, registry, schedule):
    """A process recording good/bad counts per simulated second.

    ``schedule`` maps an inclusive time range to (good, bad) increments
    applied each second inside it.
    """
    def proc(env):
        while True:
            yield env.timeout(1.0)
            for (start, end), (good, bad) in schedule.items():
                if start <= env.now <= end:
                    if good:
                        registry.counter("svc", outcome="ok").add(good)
                    if bad:
                        registry.counter("svc", outcome="err").add(bad)

    env.process(proc(env))


def availability(target=0.9):
    return slo.CounterRatioSLO(
        "svc-availability",
        good=("svc", {"outcome": "ok"}),
        bad=("svc", {"outcome": "err"}),
        target=target)


class TestObjectives:

    def test_counter_ratio_totals_sum_matching_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("svc", outcome="ok", node="a").add(3)
        registry.counter("svc", outcome="ok", node="b").add(2)
        registry.counter("svc", outcome="err", node="a").add(1)
        good, bad = availability().totals(registry)
        assert (good, bad) == (5.0, 1.0)

    def test_latency_slo_counts_threshold_crossings(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.3, 0.9):
            registry.histogram("rpc.latency").record(value)
        objective = slo.LatencySLO("fast-rpc", "rpc.latency",
                                   threshold=0.3, target=0.99)
        assert objective.totals(registry) == (3.0, 1.0)

    def test_target_must_be_a_fraction(self):
        with pytest.raises(QoSError):
            slo.CounterRatioSLO("x", "g", "b", target=1.0)
        with pytest.raises(QoSError):
            slo.LatencySLO("x", "rpc.latency", 0.1, target=0.0)

    def test_error_budget(self):
        assert availability(target=0.9).error_budget == pytest.approx(0.1)


class TestBurnRateAlerts:

    def run_monitor(self, schedule, until=60.0):
        env = Environment()
        registry = MetricsRegistry()
        drive(env, registry, schedule)
        monitor = slo.SLOMonitor(env, [availability()], registry=registry,
                                 interval=1.0, windows=WINDOWS,
                                 until=until)
        env.run(until=until + 1.0)
        return monitor

    def test_healthy_service_never_fires(self):
        monitor = self.run_monitor({(0.0, 60.0): (20, 0)})
        assert monitor.events == []
        assert monitor.active_alerts() == []

    def test_degradation_fires_then_recovery_clears(self):
        monitor = self.run_monitor({
            (0.0, 20.0): (20, 0),
            (21.0, 35.0): (10, 10),     # 50% errors: burn 5 >> factor 4
            (36.0, 60.0): (20, 0),
        })
        kinds = [event["event"] for event in monitor.events]
        assert kinds == ["fired", "cleared"]
        fired, cleared = monitor.events
        assert 21.0 <= fired["at"] <= 35.0
        assert fired["burn_long"] >= 4.0 and fired["burn_short"] >= 4.0
        # The short window lets the alert clear soon after recovery.
        assert cleared["at"] <= 40.0
        assert monitor.active_alerts() == []
        alert = monitor.alerts[0]
        assert not alert.active
        assert alert.peak_burn >= 4.0

    def test_short_blip_does_not_fire(self):
        # One bad second inside a healthy run: the long window never
        # accumulates enough burn, so no page.
        monitor = self.run_monitor({
            (0.0, 60.0): (20, 0),
            (30.0, 30.0): (0, 10),
        })
        assert monitor.events == []

    def test_alert_counters_and_gauges_recorded(self):
        env = Environment()
        registry = MetricsRegistry()
        drive(env, registry, {(0.0, 10.0): (0, 10),
                              (11.0, 40.0): (20, 0)})
        monitor = slo.SLOMonitor(env, [availability()], registry=registry,
                                 interval=1.0, windows=WINDOWS,
                                 until=40.0)
        env.run(until=41.0)
        counters = registry.counters()
        assert counters[
            "slo.alerts_fired{severity=page,slo=svc-availability}"] == 1
        assert counters[
            "slo.alerts_cleared{severity=page,slo=svc-availability}"] == 1
        gauge = registry.gauge("slo.burn_rate", slo="svc-availability",
                               window="10s")
        assert gauge.series.samples
        assert monitor.summary()["fired"] == 1

    def test_stop_lets_open_ended_run_drain(self):
        env = Environment()
        registry = MetricsRegistry()
        monitor = slo.SLOMonitor(env, [availability()],
                                 registry=registry, windows=WINDOWS)

        def stopper(env):
            yield env.timeout(5.0)
            monitor.stop()

        env.process(stopper(env))
        env.run()     # terminates only because stop() interrupts
        assert env.now == pytest.approx(5.0)

    def test_monitor_validates_configuration(self):
        env = Environment()
        with pytest.raises(QoSError):
            slo.SLOMonitor(env, [availability()], interval=0.0)
        with pytest.raises(QoSError):
            slo.SLOMonitor(env, [availability()],
                           windows=((1.0, 5.0, 4.0, "page"),))
        with pytest.raises(QoSError):
            slo.SLOMonitor(env, [availability(), availability()])


class TestQoSIntegration:

    def test_qos_slo_burns_on_contract_violations(self):
        env = Environment()
        registry = MetricsRegistry()
        from repro.net import Network, dumbbell
        from repro.obs.metrics import use_metrics
        topo = dumbbell(env, left=1, right=1,
                        bottleneck_bandwidth=1e6,
                        bottleneck_latency=0.01)
        network = Network(env, topo)
        broker = QoSBroker(network)
        desired = QoSParameters(throughput=8e5, latency=0.05,
                                jitter=0.05, loss=0.05)
        contract = broker.negotiate("left0", "right0", desired)
        monitor = QoSMonitor(env, contract, window=1.0,
                             expected_frames_per_window=10)
        windows = []
        monitor.add_observer(
            lambda observation, violated: windows.append(violated))
        objective = slo.qos_slo("left0->right0", target=0.5)
        slo_monitor = slo.SLOMonitor(
            env, [objective], registry=registry, interval=1.0,
            windows=((4.0, 1.0, 1.5, "page"),), until=10.0)
        # No frames are ever delivered: every window violates.
        with use_metrics(registry):
            env.run(until=10.0)
        contract.close()
        assert windows and all(windows)
        assert any(e["event"] == "fired" for e in slo_monitor.events)
