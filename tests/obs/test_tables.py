"""Hot-spot rollup tables and the Zipf-skew coefficient."""

import io

import pytest

from repro.obs.tables import (
    DIMENSIONS,
    all_tables,
    dimension_table,
    render_dimension_table,
    zipf_skew,
)


def window(index, start, end, counters=None, histograms=None):
    return {"kind": "window", "index": index, "start": start, "end": end,
            "counters": counters or {}, "histograms": histograms or {},
            "gauges": {}}


def span(name, start, end, span_id="s1", trace_id="t1", parent=None,
         **attributes):
    return {"kind": "span", "name": name, "trace_id": trace_id,
            "span_id": span_id, "parent_id": parent, "start": start,
            "end": end, "status": "ok", "attributes": attributes,
            "events": []}


# -- zipf_skew --------------------------------------------------------------

def test_zipf_skew_uniform_is_zero():
    assert zipf_skew([10, 10, 10, 10]) == 0.0


def test_zipf_skew_ideal_zipf_is_one():
    counts = [1000.0 / rank for rank in range(1, 11)]
    assert abs(zipf_skew(counts) - 1.0) < 1e-9


def test_zipf_skew_steeper_distributions_score_higher():
    mild = [1000.0 / rank for rank in range(1, 11)]
    steep = [1000.0 / rank ** 2 for rank in range(1, 11)]
    assert zipf_skew(steep) > zipf_skew(mild)


def test_zipf_skew_degenerate_inputs():
    assert zipf_skew([]) == 0.0
    assert zipf_skew([5]) == 0.0
    assert zipf_skew([0, 0, 3]) == 0.0  # one positive count


# -- dimension_table --------------------------------------------------------

def test_counter_totals_rates_and_peaks():
    windows = [
        window(0, 0.0, 1.0, {"net.node.sent{node=a}": 5,
                             "net.node.sent{node=b}": 1}),
        window(1, 1.0, 2.0, {"net.node.sent{node=a}": 2,
                             "net.node.sent{node=b}": 9}),
    ]
    doc = dimension_table("node", windows)
    assert doc["duration"] == 2.0
    rows = {row["key"]: row for row in doc["rows"]}
    assert rows["a"]["total"] == 7
    assert rows["a"]["rate"] == 3.5
    assert rows["a"]["peak_at"] == 0.0 and rows["a"]["peak"] == 5
    assert rows["b"]["peak_at"] == 1.0 and rows["b"]["peak"] == 9
    # b's rate (5/s) beats a's (3.5/s): top-K order.
    assert [row["key"] for row in doc["rows"]] == ["b", "a"]


def test_span_latency_percentiles():
    spans = [span("node.invoke", 0.0, 0.1 * (i + 1),
                  span_id="s{}".format(i), node="a") for i in range(10)]
    doc = dimension_table("node", [], spans)
    row = doc["rows"][0]
    assert row["key"] == "a"
    assert row["latency"]["count"] == 10
    assert abs(row["latency"]["p50"] - 0.55) < 1e-9
    assert row["total"] == 10  # span count stands in for the counter


def test_op_dimension_falls_back_to_span_name():
    spans = [span("node.invoke", 0.0, 1.0, span_id="s1", op="post"),
             span("net.transmit", 0.0, 2.0, span_id="s2")]
    doc = dimension_table("op", [], spans)
    keys = [row["key"] for row in doc["rows"]]
    assert set(keys) == {"post", "net.transmit"}


def test_histogram_windows_stand_in_when_no_spans():
    windows = [
        window(0, 0.0, 1.0, histograms={
            "rpc.latency{node=a}": {"count": 3, "mean": 0.2, "p50": 0.2,
                                    "p95": 0.3, "p99": 0.3, "max": 0.3}}),
        window(1, 1.0, 2.0, histograms={
            "rpc.latency{node=a}": {"count": 1, "mean": 0.6, "p50": 0.6,
                                    "p95": 0.6, "p99": 0.6, "max": 0.6}}),
    ]
    doc = dimension_table("node", windows)
    lat = doc["rows"][0]["latency"]
    assert lat["count"] == 4
    assert abs(lat["p50"] - 0.3) < 1e-9  # (0.2*3 + 0.6*1) / 4


def test_unknown_dimension_raises():
    with pytest.raises(KeyError):
        dimension_table("galaxy")


def test_all_tables_covers_every_dimension():
    docs = all_tables([], [])
    assert sorted(docs) == sorted(DIMENSIONS)


def test_render_includes_skew_line_and_rows():
    windows = [window(0, 0.0, 1.0, {"net.bytes{link=l1}": 100,
                                    "net.bytes{link=l2}": 10})]
    out = io.StringIO()
    render_dimension_table(dimension_table("link", windows), out=out)
    text = out.getvalue()
    assert "hot spots by link" in text
    assert "l1" in text and "l2" in text
    assert "zipf skew (link):" in text


def test_rows_without_labels_for_dimension_are_ignored():
    windows = [window(0, 0.0, 1.0, {"net.sent": 50,
                                    "net.bytes{link=l1}": 9})]
    doc = dimension_table("node", windows)
    assert doc["rows"] == []


# -- the drops column -------------------------------------------------------

def test_link_table_attributes_drops_by_reason():
    windows = [
        window(0, 0.0, 1.0, {
            "net.bytes{link=l1}": 100,
            "net.link.drops{link=l1,reason=loss}": 2,
            "net.link.drops{link=l1,reason=impairment}": 3}),
        window(1, 1.0, 2.0, {
            "net.bytes{link=l1}": 50,
            "net.link.drops{link=l1,reason=loss}": 1,
            "net.link.drops{link=l2,reason=link-down}": 4,
            "net.bytes{link=l2}": 10}),
    ]
    doc = dimension_table("link", windows)
    assert doc["drops_counter"] == "net.link.drops"
    rows = {row["key"]: row for row in doc["rows"]}
    assert rows["l1"]["drops"] == {"impairment": 3, "loss": 3}
    assert rows["l2"]["drops"] == {"link-down": 4}


def test_link_rows_without_drops_get_empty_dict():
    windows = [window(0, 0.0, 1.0, {"net.bytes{link=l1}": 100})]
    doc = dimension_table("link", windows)
    assert doc["rows"][0]["drops"] == {}


def test_non_link_dimensions_carry_no_drops():
    windows = [window(0, 0.0, 1.0, {"net.node.sent{node=a}": 5})]
    doc = dimension_table("node", windows)
    assert doc["drops_counter"] is None
    assert "drops" not in doc["rows"][0]


def test_render_drops_column_only_on_link_table():
    windows = [
        window(0, 0.0, 1.0, {
            "net.bytes{link=l1}": 100,
            "net.link.drops{link=l1,reason=loss}": 2,
            "net.link.drops{link=l1,reason=impairment}": 5,
            "net.bytes{link=l2}": 10,
            "net.node.sent{node=a}": 5}),
    ]
    out = io.StringIO()
    render_dimension_table(dimension_table("link", windows), out=out)
    text = out.getvalue()
    assert "drops" in text
    assert "impairment:5,loss:2" in text
    assert "\n-\n" not in text  # dash placeholder renders in-row
    out = io.StringIO()
    render_dimension_table(dimension_table("node", windows), out=out)
    assert "drops" not in out.getvalue()
