"""The bench telemetry harness: schema, merging, env override."""

import json
import os

import pytest

from benchmarks import _util


@pytest.fixture
def telemetry_file(tmp_path, monkeypatch):
    path = str(tmp_path / "BENCH_TEST.json")
    monkeypatch.setenv("REPRO_BENCH_TELEMETRY", path)
    return path


def test_telemetry_path_env_override(telemetry_file):
    assert _util.telemetry_path() == telemetry_file


def test_record_run_writes_schema_document(telemetry_file):
    entry = _util.record_run("demo_bench", sim_time_s=12.5, events=100,
                             metrics={"wait_mean": 1.234567891})
    with open(telemetry_file) as handle:
        document = json.load(handle)
    assert document["schema"] == _util.TELEMETRY_SCHEMA
    assert document["benches"]["demo_bench"] == entry
    assert entry["sim_time_s"] == 12.5
    assert entry["events"] == 100
    # Floats are rounded for a stable, diffable checked-in file.
    assert entry["metrics"]["wait_mean"] == 1.234568
    assert "wall_time_s" in entry


def test_record_run_merges_entries(telemetry_file):
    _util.record_run("bench_a", metrics={"x": 1})
    _util.record_run("bench_b", metrics={"y": 2})
    _util.record_run("bench_a", metrics={"x": 3})   # overwrite own entry
    with open(telemetry_file) as handle:
        document = json.load(handle)
    assert set(document["benches"]) == {"bench_a", "bench_b"}
    assert document["benches"]["bench_a"]["metrics"]["x"] == 3
    assert document["benches"]["bench_b"]["metrics"]["y"] == 2


def test_record_run_recovers_from_corrupt_file(telemetry_file):
    with open(telemetry_file, "w") as handle:
        handle.write("{corrupt")
    _util.record_run("bench_a", metrics={})
    with open(telemetry_file) as handle:
        document = json.load(handle)
    assert "bench_a" in document["benches"]


def test_missing_fields_are_null(telemetry_file):
    entry = _util.record_run("partial_bench", metrics={"m": 1})
    assert entry["sim_time_s"] is None
    assert entry["events"] is None


def test_checked_in_document_is_valid():
    """The committed BENCH_PR3.json matches the schema with >=5 benches."""
    path = os.path.join(os.path.dirname(_util.__file__), os.pardir,
                        "BENCH_PR3.json")
    with open(path) as handle:
        document = json.load(handle)
    assert document["schema"] == _util.TELEMETRY_SCHEMA
    assert len(document["benches"]) >= 5
    for name, entry in document["benches"].items():
        assert isinstance(entry["wall_time_s"], float), name
        assert isinstance(entry["metrics"], dict), name
        assert entry["sim_time_s"] is None \
            or isinstance(entry["sim_time_s"], (int, float)), name
        assert entry["events"] is None \
            or isinstance(entry["events"], int), name
