"""The registered telemetry demo workloads: shape and replayability."""

import json

from repro.analysis.replay import run_isolated
from repro.analysis.workloads import WORKLOADS, run_workload
from repro.obs.demo import slo_burn_workload, traced_rpc_workload


def test_workloads_are_registered():
    assert WORKLOADS["traced-rpc"] is traced_rpc_workload
    assert WORKLOADS["slo-burn"] is slo_burn_workload


class TestTracedRpc:

    def test_result_shape_and_sampling(self):
        result = run_workload("traced-rpc", seed=31)
        # All clients finish all their requests regardless of sampling.
        assert set(result["completed"].values()) == {8}
        assert result["posts"] == 24
        # The head sampler kept some traces and dropped some spans.
        assert result["sampled_traces"]
        assert result["spans_retained"] > 0
        assert result["spans_sampled_out"] > 0
        # Memory stayed inside the configured ring.
        assert result["spans_retained"] <= 256
        # The profile is part of the result and sees real sim time.
        assert result["profile"]["rpc.call"]["count"] > 0

    def test_result_is_json_serialisable_and_deterministic(self):
        first = json.dumps(run_workload("traced-rpc", seed=31),
                           sort_keys=True)
        second = json.dumps(run_workload("traced-rpc", seed=31),
                            sort_keys=True)
        assert first == second

    def test_different_seed_samples_different_traces(self):
        a = run_workload("traced-rpc", seed=31)
        b = run_workload("traced-rpc", seed=32)
        assert a["sampled_traces"] != b["sampled_traces"] \
            or a["env"] != b["env"]

    def test_replay_isolated(self):
        a = run_isolated("traced-rpc", seed=31)
        b = run_isolated("traced-rpc", seed=31)
        assert json.dumps(a, sort_keys=True) == \
            json.dumps(b, sort_keys=True)


class TestSloBurn:

    def test_alert_fires_during_degradation_and_clears_after(self):
        result = run_workload("slo-burn", seed=31)
        assert result["fired"] == 1
        assert result["cleared"] == 1
        # Fires inside the degraded phase (20..45), clears after it.
        assert 20.0 <= result["first_fired_at"] <= 45.0
        assert result["first_cleared_at"] > 45.0
        assert result["active"] == []

    def test_deterministic(self):
        first = json.dumps(run_workload("slo-burn", seed=31),
                           sort_keys=True)
        second = json.dumps(run_workload("slo-burn", seed=31),
                            sort_keys=True)
        assert first == second


class TestTimelineDemo:

    def test_registered_and_json_safe(self):
        assert "timeline-demo" in WORKLOADS
        result = run_workload("timeline-demo", seed=31)
        json.dumps(result)  # fully serialisable, windows included

    def test_windows_are_contiguous_and_nonempty(self):
        result = run_workload("timeline-demo", seed=31)
        windows = result["windows"]
        assert windows
        assert [w["index"] for w in windows] == list(range(len(windows)))
        for prev, cur in zip(windows, windows[1:]):
            assert cur["start"] == prev["end"]
        assert result["windows_flushed"] == len(windows)

    def test_workload_is_genuinely_skewed(self):
        result = run_workload("timeline-demo", seed=31)
        assert result["node_zipf_skew"] > 0.5
        # The doubled-up host carries the most client traffic.
        assert result["top_node"] is not None
        # Ops follow the Zipf draw: the hot op dominates.
        totals = sorted(result["op_totals"].values(), reverse=True)
        assert totals[0] > totals[-1]

    def test_critical_path_covers_traces(self):
        result = run_workload("timeline-demo", seed=31)
        assert result["critical_traces"] > 0
        assert result["bottlenecks"]
        shares = [b["share"] for b in result["bottlenecks"]]
        assert shares == sorted(shares, reverse=True)

    def test_deterministic(self):
        first = json.dumps(run_workload("timeline-demo", seed=31),
                           sort_keys=True)
        second = json.dumps(run_workload("timeline-demo", seed=31),
                            sort_keys=True)
        assert first == second
