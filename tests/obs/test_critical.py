"""Critical-path extraction over span trees."""

import pytest

from repro.obs.critical import (
    by_trace,
    critical_path,
    critical_summary,
    render_critical,
)


def span(span_id, name, start, end, parent=None, trace="t1", **attrs):
    return {"kind": "span", "name": name, "trace_id": trace,
            "span_id": span_id, "parent_id": parent, "start": start,
            "end": end, "status": "ok", "attributes": attrs, "events": []}


def steps_by_op(path):
    return {step["op"]: step for step in path["steps"]}


def test_single_span_owns_its_whole_duration():
    path = critical_path([span("s1", "root", 0.0, 4.0)])
    assert path["duration"] == 4.0
    assert path["steps"] == [
        {"op": "root", "self": 4.0, "share": 1.0, "count": 1}]


def test_child_splits_parent_self_time():
    spans = [span("s1", "root", 0.0, 10.0),
             span("s2", "child", 2.0, 7.0, parent="s1")]
    path = critical_path(spans)
    steps = steps_by_op(path)
    # Parent keeps [0,2] and [7,10]; child owns [2,7].
    assert steps["root"]["self"] == 5.0
    assert steps["child"]["self"] == 5.0
    assert sum(s["self"] for s in path["steps"]) == path["duration"]


def test_nested_chain_attributes_leaf_time_to_leaf():
    spans = [span("s1", "root", 0.0, 10.0),
             span("s2", "mid", 1.0, 9.0, parent="s1"),
             span("s3", "leaf", 2.0, 8.0, parent="s2")]
    steps = steps_by_op(critical_path(spans))
    assert steps["root"]["self"] == 2.0
    assert steps["mid"]["self"] == 2.0
    assert steps["leaf"]["self"] == 6.0


def test_parallel_children_only_determining_chain_counts():
    """Two overlapping children: the later-ending one owns the overlap."""
    spans = [span("s1", "root", 0.0, 10.0),
             span("s2", "slow", 1.0, 9.0, parent="s1"),
             span("s3", "fast", 1.0, 5.0, parent="s1")]
    steps = steps_by_op(critical_path(spans))
    # slow covers [1,9]; fast is entirely shadowed by it.
    assert steps["slow"]["self"] == 8.0
    assert "fast" not in steps
    assert steps["root"]["self"] == 2.0


def test_sequential_children_chain_through_gaps():
    spans = [span("s1", "root", 0.0, 10.0),
             span("s2", "first", 1.0, 4.0, parent="s1"),
             span("s3", "second", 5.0, 9.0, parent="s1")]
    steps = steps_by_op(critical_path(spans))
    assert steps["first"]["self"] == 3.0
    assert steps["second"]["self"] == 4.0
    # Gaps [0,1], [4,5], [9,10] belong to the root.
    assert steps["root"]["self"] == 3.0


def test_op_attribute_overrides_span_name():
    spans = [span("s1", "root", 0.0, 2.0),
             span("s2", "node.invoke", 0.5, 1.5, parent="s1", op="post")]
    steps = steps_by_op(critical_path(spans))
    assert "post" in steps and "node.invoke" not in steps


def test_orphan_trace_returns_none():
    assert critical_path([span("s2", "child", 0.0, 1.0,
                               parent="missing")]) is None
    assert critical_path([]) is None


def test_by_trace_groups_and_skips_unfinished():
    records = [span("s1", "a", 0.0, 1.0, trace="t1"),
               span("s2", "b", 0.0, None, trace="t1"),
               span("s3", "c", 0.0, 2.0, trace="t2"),
               {"kind": "metric", "name": "x"}]
    traces = by_trace(records)
    assert sorted(traces) == ["t1", "t2"]
    assert [s["span_id"] for s in traces["t1"]] == ["s1"]


def test_summary_aggregates_across_traces():
    records = [span("s1", "root", 0.0, 4.0, trace="t1"),
               span("s2", "rpc", 1.0, 3.0, parent="s1", trace="t1"),
               span("s3", "root", 0.0, 6.0, trace="t2"),
               span("s4", "rpc", 1.0, 5.0, parent="s3", trace="t2")]
    summary = critical_summary(records)
    assert summary["traces"] == 2
    assert summary["total_duration"] == 10.0
    top = summary["bottlenecks"][0]
    assert top["op"] == "rpc"
    assert top["self"] == 6.0
    assert top["share"] == 0.6
    assert top["traces"] == 2


def test_render_critical_prints_bottlenecks():
    import io
    records = [span("s1", "root", 0.0, 4.0),
               span("s2", "rpc", 1.0, 3.0, parent="s1")]
    out = io.StringIO()
    render_critical(critical_summary(records), out=out, per_trace=True)
    text = out.getvalue()
    assert "critical-path bottlenecks" in text
    assert "critical path of t1" in text
    assert "rpc" in text


def test_contributions_sum_to_root_duration_on_deep_trees():
    spans = [span("s1", "root", 0.0, 20.0)]
    for i in range(8):
        spans.append(span("s{}".format(i + 2), "op{}".format(i % 3),
                          float(i) + 1.0, 19.0 - float(i),
                          parent="s{}".format(i + 1)))
    path = critical_path(spans)
    assert abs(sum(s["self"] for s in path["steps"])
               - path["duration"]) < 1e-9
