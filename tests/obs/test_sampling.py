"""Deterministic head sampling: decisions, propagation, retention."""

import json

import pytest

from repro import obs
from repro.net import Network, wan
from repro.node import ODPRuntime
from repro.obs.sampling import Sampler
from repro.sim import Environment


def sampled_ids(rate, seed, trace_ids):
    sampler = Sampler(rate=rate, seed=seed)
    return {t for t in trace_ids if sampler.sample(t)}


class TestSamplerDecisions:

    def test_same_seed_and_rate_give_identical_sets(self):
        ids = ["t{}".format(i) for i in range(200)]
        assert sampled_ids(0.3, 7, ids) == sampled_ids(0.3, 7, ids)

    def test_different_seeds_give_different_sets(self):
        ids = ["t{}".format(i) for i in range(200)]
        assert sampled_ids(0.3, 7, ids) != sampled_ids(0.3, 8, ids)

    def test_rate_one_keeps_everything_rate_zero_nothing(self):
        ids = ["t{}".format(i) for i in range(50)]
        assert sampled_ids(1.0, 0, ids) == set(ids)
        assert sampled_ids(0.0, 0, ids) == set()

    def test_lower_rate_set_is_subset_of_higher(self):
        # fraction() is rate-independent, so raising the rate only adds
        # traces — sampled data at 10% stays valid when re-run at 50%.
        ids = ["t{}".format(i) for i in range(300)]
        assert sampled_ids(0.2, 3, ids) <= sampled_ids(0.6, 3, ids)

    def test_sampled_share_tracks_rate(self):
        ids = ["t{}".format(i) for i in range(2000)]
        share = len(sampled_ids(0.25, 5, ids)) / len(ids)
        assert 0.18 < share < 0.32

    def test_per_name_rate_overrides_default(self):
        sampler = Sampler(rate=0.0, seed=1,
                          rates={"user.request": 1.0})
        assert sampler.sample("t1", "user.request")
        assert not sampler.sample("t1", "other.root")

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Sampler(rate=1.5)
        with pytest.raises(ValueError):
            Sampler(rate=0.5, rates={"x": -0.1})


class TestTracerSampling:

    def test_unsampled_root_and_children_are_not_retained(self):
        tracer = obs.Tracer(sampler=Sampler(rate=0.0, seed=0))
        env = Environment()
        root = tracer.start_span("root", at=env.now)
        child = tracer.start_span("child", at=env.now, parent=root)
        root.finish(at=1.0)
        child.finish(at=1.0)
        assert len(tracer.spans) == 0
        assert tracer.sampled_out == 2
        assert not root.is_recording
        # The context still propagates (children inherit the decision).
        assert child.trace_id == root.trace_id
        assert not child.context.sampled

    def test_sampled_decision_is_inherited_by_descendants(self):
        tracer = obs.Tracer(sampler=Sampler(rate=1.0, seed=0))
        root = tracer.start_span("root", at=0.0)
        child = tracer.start_span("child", at=0.0, parent=root)
        assert root.context.sampled and child.context.sampled
        assert len(tracer.spans) == 2

    def test_ring_buffer_bounds_memory_and_counts_evictions(self):
        tracer = obs.Tracer(max_spans=10)
        for i in range(25):
            tracer.start_span("s{}".format(i), at=float(i))
        assert len(tracer.spans) == 10
        assert tracer.evicted == 15
        assert [s.name for s in tracer.spans] == \
            ["s{}".format(i) for i in range(15, 25)]

    def test_clear_resets_counters(self):
        tracer = obs.Tracer(sampler=Sampler(rate=0.0), max_spans=5)
        tracer.start_span("a", at=0.0)
        tracer.clear()
        assert tracer.sampled_out == 0 and tracer.evicted == 0


class TestHeaderPropagation:

    def test_sampled_context_serialises_exactly_as_before_sampling(self):
        # The byte-identity contract: a sampled (default) context must
        # not grow a "sampled" key, so runs without a sampler produce
        # headers identical to pre-sampling builds.
        context = obs.SpanContext("t1", "s1")
        assert context.to_dict() == {"trace_id": "t1", "span_id": "s1"}

    def test_unsampled_context_round_trips_through_headers(self):
        context = obs.SpanContext("t1", "s1", sampled=False)
        data = json.loads(json.dumps(context.to_dict()))
        restored = obs.SpanContext.from_dict(data)
        assert restored.sampled is False
        assert (restored.trace_id, restored.span_id) == ("t1", "s1")

    def test_missing_sampled_key_defaults_to_true(self):
        restored = obs.SpanContext.from_dict(
            {"trace_id": "t9", "span_id": "s9"})
        assert restored.sampled is True


def run_remote_invokes(tracer, requests=6):
    """N invokes from site1 to site0, each rooting its own trace."""
    with obs.use_tracer(tracer), obs.use_metrics(obs.MetricsRegistry()):
        env = Environment()
        topo = wan(env, sites=2, hosts_per_site=1)
        net = Network(env, topo)
        runtime = ODPRuntime(net, registry_node="site0.host0")
        server = runtime.nucleus("site0.host0")
        client = runtime.nucleus("site1.host0")
        capsule = server.create_capsule("cap")
        obj = server.create_object(capsule, "counter", state={"n": 0})
        obj.operation(
            "incr", lambda caller, state, args: state.__setitem__(
                "n", state["n"] + 1) or state["n"])

        def root(env):
            for _ in range(requests):
                yield client.invoke(obj.oid, "incr", 1)
                yield env.timeout(0.1)

        proc = env.process(root(env))
        env.run(proc)
    return obj


class TestCrossNodeSampling:

    def test_sampled_traces_stay_complete_end_to_end(self):
        tracer = obs.Tracer(sampler=Sampler(rate=0.5, seed=2))
        run_remote_invokes(tracer)
        trace_ids = {s.trace_id for s in tracer.spans}
        assert trace_ids, "expected at least one sampled trace"
        for trace_id in trace_ids:
            names = {s.name for s in tracer.trace(trace_id)}
            # Client call, transit over every hop, and the remote
            # execution are all present — no half-sampled traces.
            assert {"node.invoke", "rpc.call", "net.transmit",
                    "net.link", "rpc.serve"} <= names

    def test_unsampled_traces_leave_no_spans_at_any_node(self):
        tracer = obs.Tracer(sampler=Sampler(rate=0.5, seed=2))
        run_remote_invokes(tracer, requests=8)
        full = obs.Tracer()
        run_remote_invokes(full, requests=8)
        assert tracer.sampled_out > 0
        assert len(tracer.spans) < len(full.spans)

    def test_same_seed_samples_identical_trace_sets_across_runs(self):
        results = []
        for _ in range(2):
            tracer = obs.Tracer(sampler=Sampler(rate=0.5, seed=4))
            run_remote_invokes(tracer, requests=10)
            results.append(sorted({s.trace_id for s in tracer.spans}))
        assert results[0] == results[1]

    def test_sampling_does_not_change_simulation_results(self):
        sampled = run_remote_invokes(
            obs.Tracer(sampler=Sampler(rate=0.3, seed=9)))
        unsampled = run_remote_invokes(obs.Tracer())
        assert sampled.state == unsampled.state
