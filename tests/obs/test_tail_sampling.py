"""Tests for tail-based sampling: error traces survive the head drop."""

import pytest

from repro.obs.sampling import Sampler
from repro.obs.tracer import NOOP_TRACER, Tracer


class DropAll:
    """A head sampler that drops every trace."""

    def sample(self, trace_id, name):
        return False


def test_error_trace_promoted_on_flush():
    tracer = Tracer(sampler=DropAll(), tail_keep_errors=True)
    root = tracer.start_span("op", at=0.0)
    child = tracer.start_span("child", at=0.1, parent=root)
    child.set_status("error")
    child.finish(at=0.2)
    root.finish(at=0.3)
    assert len(tracer.spans) == 0  # held aside, not yet retained
    promoted = tracer.tail_flush()
    assert promoted == 2
    assert tracer.tail_promoted == 2
    assert [s.name for s in tracer.spans] == ["op", "child"]


def test_healthy_trace_discarded_on_flush():
    tracer = Tracer(sampler=DropAll(), tail_keep_errors=True)
    span = tracer.start_span("op", at=0.0)
    span.finish(at=0.1)
    assert tracer.tail_flush() == 0
    assert len(tracer.spans) == 0
    assert tracer.sampled_out == 1


def test_dropped_status_counts_as_interesting():
    tracer = Tracer(sampler=DropAll(), tail_keep_errors=True)
    span = tracer.start_span("net.transmit", at=0.0)
    span.set_status("dropped:loss")
    span.finish(at=0.1)
    assert tracer.tail_flush() == 1


def test_head_sampled_traces_unaffected():
    tracer = Tracer(sampler=None, tail_keep_errors=True)
    span = tracer.start_span("op", at=0.0)
    span.finish(at=0.1)
    # Head-sampled spans retain immediately; nothing pends.
    assert len(tracer.spans) == 1
    assert tracer.tail_flush() == 0


def test_tail_buffer_evicts_oldest_trace():
    tracer = Tracer(sampler=DropAll(), tail_keep_errors=True,
                    tail_buffer=2)
    first = tracer.start_span("first", at=0.0)
    first.set_status("error")
    first.finish(at=0.1)
    second = tracer.start_span("second", at=0.2)
    second.finish(at=0.3)
    third = tracer.start_span("third", at=0.4)
    third.finish(at=0.5)
    # Adding the third span overflowed the 2-span buffer: the oldest
    # trace (first — despite its error) lost its chance.
    assert tracer.sampled_out == 1
    assert tracer.tail_flush() == 0
    assert len(tracer.spans) == 0


def test_unsampled_spans_record_when_tail_enabled():
    plain = Tracer(sampler=DropAll())
    span = plain.start_span("op", at=0.0)
    assert not span.recorded

    tail = Tracer(sampler=DropAll(), tail_keep_errors=True)
    span = tail.start_span("op", at=0.0)
    assert span.recorded


def test_default_off_behaviour_unchanged():
    tracer = Tracer(sampler=DropAll())
    span = tracer.start_span("op", at=0.0)
    span.finish(at=0.1)
    assert tracer.sampled_out == 1
    assert tracer.tail_flush() == 0
    assert tracer.tail_promoted == 0


def test_clear_resets_tail_state():
    tracer = Tracer(sampler=DropAll(), tail_keep_errors=True)
    span = tracer.start_span("op", at=0.0)
    span.set_status("error")
    tracer.clear()
    assert tracer.tail_flush() == 0
    assert tracer.tail_promoted == 0


def test_tail_flush_never_half_promotes_into_small_ring():
    # A 2-span error trace cannot fit a max_spans=1 ring whole;
    # promoting it would evict its own root and export a headless
    # fragment.  The whole trace is discarded instead.
    tracer = Tracer(sampler=DropAll(), tail_keep_errors=True,
                    max_spans=1)
    root = tracer.start_span("a", at=0.0)
    root.set_status("error")
    tracer.start_span("b", at=0.1, parent=root)
    assert tracer.tail_flush() == 0
    assert len(tracer.spans) == 0
    assert tracer.evicted == 0
    assert tracer.sampled_out == 2


def test_tail_flush_promotes_trace_that_fits_ring():
    tracer = Tracer(sampler=DropAll(), tail_keep_errors=True,
                    max_spans=2)
    root = tracer.start_span("a", at=0.0)
    root.set_status("error")
    tracer.start_span("b", at=0.1, parent=root)
    assert tracer.tail_flush() == 2
    assert [s.name for s in tracer.spans] == ["a", "b"]
    assert tracer.evicted == 0


def test_evicted_trace_is_not_half_promoted():
    # Regression: a trace whose root was evicted from the tail buffer
    # must not be resurrected by its later spans — tail_flush would
    # promote the fragment that arrived after the eviction.
    tracer = Tracer(sampler=DropAll(), tail_keep_errors=True,
                    tail_buffer=1)
    root = tracer.start_span("victim-root", at=0.0)
    root.set_status("error")
    root.finish(at=0.1)
    other = tracer.start_span("other", at=0.2)
    other.finish(at=0.3)
    # "other" overflowed the 1-span buffer and evicted the victim's
    # root.  A late child of the victim trace arrives afterwards:
    late = tracer.start_span("victim-child", at=0.4, parent=root)
    late.set_status("error")
    late.finish(at=0.5)
    assert tracer.tail_flush() == 0
    assert len(tracer.spans) == 0
    assert tracer.sampled_out == 3


def test_eviction_poison_resets_on_flush():
    tracer = Tracer(sampler=DropAll(), tail_keep_errors=True,
                    tail_buffer=1)
    first = tracer.start_span("first", at=0.0)
    first.finish(at=0.1)
    second = tracer.start_span("second", at=0.2)
    second.finish(at=0.3)  # evicts trace "first"
    tracer.tail_flush()
    # After a flush the slate is clean: a new trace reusing nothing
    # from the evicted one promotes normally.
    span = tracer.start_span("fresh", at=1.0)
    span.set_status("error")
    span.finish(at=1.1)
    assert tracer.tail_flush() == 1
    assert [s.name for s in tracer.spans] == ["fresh"]


def test_sampler_still_head_samples_with_tail_on():
    tracer = Tracer(sampler=Sampler(rate=1.0, seed=1),
                    tail_keep_errors=True)
    span = tracer.start_span("op", at=0.0)
    span.finish(at=0.1)
    assert len(tracer.spans) == 1


def test_validation_and_noop():
    with pytest.raises(ValueError):
        Tracer(tail_buffer=0)
    assert NOOP_TRACER.tail_flush() == 0
    assert NOOP_TRACER.tail_promoted == 0
