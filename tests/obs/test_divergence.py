"""Divergence localizer: bisection, epoch re-journal, CLI contract."""

import io
import json

from repro.obs.divergence import (
    _first_mismatch,
    compare_digests,
    compare_dumps,
    first_divergent_epoch,
    localize,
    main,
    render,
)
from repro.obs.flight import FlightRecorder, use_flight


def _fork_pair(dispatches=20, fork_at=13, epoch_events=4):
    """Two synthetic journals forking at one injected RNG draw."""
    run_a = FlightRecorder(ring=1 << 10, epoch_events=epoch_events)
    run_b = FlightRecorder(ring=1 << 10, epoch_events=epoch_events)
    for eid in range(dispatches):
        for recorder in (run_a, run_b):
            recorder.on_dispatch(float(eid), 0, eid)
        if eid == fork_at:
            run_b.record_rng("s", "random", 0.999)
    run_a.finish()
    run_b.finish()
    return run_a, run_b


# -- bisection -------------------------------------------------------------


def test_first_divergent_epoch_identical_is_none():
    assert first_divergent_epoch(["a", "b"], ["a", "b"]) is None
    assert first_divergent_epoch([], []) is None


def test_first_divergent_epoch_finds_fork():
    run_a, run_b = _fork_pair(dispatches=20, fork_at=13, epoch_events=4)
    # The fork is in epoch 13 // 4 == 3; chaining makes every later
    # digest differ too, so bisection must still land on 3.
    assert run_a.epoch_digests[:3] == run_b.epoch_digests[:3]
    assert first_divergent_epoch(run_a.epoch_digests,
                                 run_b.epoch_digests) == 3


def test_first_divergent_epoch_prefix_length_mismatch():
    run_a, run_b = _fork_pair(dispatches=20, fork_at=13)
    # Equal-prefix, different-length: divergence is the first epoch the
    # shorter run never closed.
    assert first_divergent_epoch(run_a.epoch_digests[:2],
                                 run_a.epoch_digests) == 2
    assert first_divergent_epoch([], run_a.epoch_digests) == 0
    # Mixed: shorter AND forked — the fork wins.
    assert first_divergent_epoch(run_b.epoch_digests[:4],
                                 run_a.epoch_digests) == 3


def test_first_mismatch_on_epoch_records():
    run_a, run_b = _fork_pair(dispatches=20, fork_at=13, epoch_events=4)
    records_a = run_a.epoch_records(3)
    records_b = run_b.epoch_records(3)
    index = _first_mismatch(records_a, records_b)
    # Epoch 3 = eids 12..15; both journal dispatch 12 and 13, then B
    # has the injected draw.
    assert index == 2
    assert records_b[index]["kind"] == "rng"


# -- end-to-end on real workloads ------------------------------------------


def test_compare_digests_same_seed_agrees():
    report = compare_digests("locks-hard", 31, epoch_events=64)
    assert report["diverged"] is False
    assert report["epoch"] is None
    assert report["epochs"][0] == report["epochs"][1] > 0
    assert report["result_digests"][0] == report["result_digests"][1]


def test_localize_names_fork_between_seeds():
    report = localize("locks-hard", 31, seed2=32, epoch_events=64,
                      context=4)
    assert report["diverged"] is True
    assert report["epoch"] == 0         # different seeds fork instantly
    assert report["record_index"] is not None
    assert report["record_a"] != report["record_b"]
    assert len(report["context_a"]) <= 4
    out = io.StringIO()
    render(report, out)
    text = out.getvalue()
    assert "first divergent epoch: 0" in text
    assert "first mismatched record" in text


def test_localize_self_compare_short_circuits():
    report = localize("locks-hard", 31, epoch_events=64)
    assert report["diverged"] is False
    assert "record_index" not in report
    out = io.StringIO()
    render(report, out)
    assert "no divergence" in out.getvalue()


# -- dump-vs-dump ----------------------------------------------------------


def _dump(path, recorder):
    with open(path, "w") as handle:
        for record in recorder.records():
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def test_compare_dumps_localizes_offline(tmp_path):
    run_a, run_b = _fork_pair(dispatches=20, fork_at=13, epoch_events=4)
    path_a = str(tmp_path / "a.jsonl")
    path_b = str(tmp_path / "b.jsonl")
    _dump(path_a, run_a)
    _dump(path_b, run_b)
    report = compare_dumps(path_a, path_b, context=3)
    assert report["diverged"] is True
    assert report["epoch"] == 3
    assert report["record_index"] == 2
    assert report["record_b"]["kind"] == "rng"
    assert len(report["context_a"]) == 2


def test_compare_dumps_identical(tmp_path):
    run_a, _ = _fork_pair()
    path = str(tmp_path / "same.jsonl")
    _dump(path, run_a)
    report = compare_dumps(path, path)
    assert report["diverged"] is False


def test_compare_dumps_rejects_flightless_dump(tmp_path):
    path = str(tmp_path / "plain.jsonl")
    with open(path, "w") as handle:
        handle.write(json.dumps({"kind": "span", "name": "x"}) + "\n")
    err = io.StringIO()
    assert compare_dumps(path, path, err=err) is None
    assert "no flight-epoch records" in err.getvalue()


# -- CLI contract ----------------------------------------------------------


def test_cli_same_seed_exits_zero(capsys):
    assert main(["locks-hard", "--seed", "31",
                 "--epoch-events", "64"]) == 0
    assert "no divergence" in capsys.readouterr().out


def test_cli_seed_fork_exits_one(capsys):
    assert main(["locks-hard", "--seed", "31", "--seed2", "32",
                 "--epoch-events", "64"]) == 1
    out = capsys.readouterr().out
    assert "first divergent epoch" in out
    assert "seed 31 vs seed 32" in out


def test_cli_json_format(capsys):
    assert main(["locks-hard", "--seed", "31", "--seed2", "32",
                 "--epoch-events", "64", "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["diverged"] is True
    assert data["workload"] == "locks-hard"


def test_cli_unknown_workload_exits_two(capsys):
    assert main(["no-such-workload"]) == 2
    assert "no-such-workload" in capsys.readouterr().err


def test_cli_dumps_mode(tmp_path, capsys):
    run_a, run_b = _fork_pair()
    path_a = str(tmp_path / "a.jsonl")
    path_b = str(tmp_path / "b.jsonl")
    _dump(path_a, run_a)
    _dump(path_b, run_b)
    assert main(["--dumps", path_a, path_b]) == 1
    assert main(["--dumps", path_a, path_a]) == 0
