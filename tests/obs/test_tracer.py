"""Tracer integrity: span trees across distributed invocations."""

import json

import pytest

from repro import obs
from repro.net import Network, wan
from repro.node import ODPRuntime
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tracer():
    """A fresh recording tracer installed for the duration of the test."""
    with obs.use_tracer(obs.Tracer()) as tracer:
        with obs.use_metrics(obs.MetricsRegistry()):
            yield tracer


def make_wan_runtime(env):
    topo = wan(env, sites=2, hosts_per_site=1)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="site0.host0")
    return runtime


def invoke_remotely(env, runtime):
    """One remote incr: site1.host0 -> site0.host0, three links away."""
    server = runtime.nucleus("site0.host0")
    client = runtime.nucleus("site1.host0")
    capsule = server.create_capsule("cap")
    obj = server.create_object(capsule, "counter", state={"n": 0})
    obj.operation("incr", lambda caller, state, args: state.__setitem__(
        "n", state["n"] + args) or state["n"])

    def root(env):
        result = yield client.invoke(obj.oid, "incr", 2)
        return result

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == 2
    return obj


def invoke_trace(tracer):
    """The spans of the (single) node.invoke trace."""
    roots = [s for s in tracer.spans if s.name == "node.invoke"]
    assert len(roots) == 1
    return roots[0], tracer.trace(roots[0].trace_id)


def test_remote_invoke_builds_connected_span_tree(env, tracer):
    runtime = make_wan_runtime(env)
    invoke_remotely(env, runtime)
    root, spans = invoke_trace(tracer)
    by_id = {s.span_id: s for s in spans}
    # Every span in the trace is reachable from the invoke root.
    assert root.parent_id is None
    for span in spans:
        node = span
        while node.parent_id is not None:
            node = by_id[node.parent_id]
        assert node is root
    # Caller, network transit and remote execution are all present.
    names = {s.name for s in spans}
    assert {"node.invoke", "rpc.call", "net.transmit",
            "net.link", "rpc.serve"} <= names
    # The WAN route is site1.host0 -> router -> router -> site0.host0:
    # the request alone crosses three links.
    request_hops = [s for s in spans if s.name == "net.link"]
    assert len(request_hops) >= 3


def test_span_timestamps_are_consistent(env, tracer):
    runtime = make_wan_runtime(env)
    invoke_remotely(env, runtime)
    root, spans = invoke_trace(tracer)
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        assert span.end is not None
        assert span.end >= span.start
        if span.parent_id is not None:
            assert span.start >= by_id[span.parent_id].start
    # The remote execution happens strictly inside the caller's window.
    serve = next(s for s in spans if s.name == "rpc.serve")
    assert root.start <= serve.start and serve.end <= root.end


def test_context_survives_packet_transit(env, tracer):
    from repro.net import Topology

    topo = Topology(env)
    topo.add_link("a", "b")
    net = Network(env, topo)
    a, b = net.host("a"), net.host("b")
    parent = tracer.start_span("app.step", at=env.now, node="a")
    headers = obs.inject(parent, {})
    # The context is JSON-serialisable, so it survives any transport
    # serialisation unchanged.
    headers = json.loads(json.dumps(headers))

    def receiver(env):
        packet = yield b.receive()
        return obs.extract(packet.headers)

    proc = env.process(receiver(env))
    a.send("b", payload="x", size=10, headers=headers)
    env.run(proc)
    context = proc.value
    assert context.trace_id == parent.trace_id
    assert context.span_id == parent.span_id
    # The transit span parented itself under the application span.
    transmit = next(s for s in tracer.spans if s.name == "net.transmit")
    assert transmit.trace_id == parent.trace_id
    assert transmit.parent_id == parent.span_id


def test_disabled_tracer_records_nothing(env):
    assert isinstance(obs.get_tracer(), obs.NoopTracer)
    runtime = make_wan_runtime(env)
    invoke_remotely(env, runtime)
    assert len(obs.get_tracer()) == 0
    assert obs.get_tracer().finished_spans() == []
    span = obs.get_tracer().start_span("anything", at=env.now)
    assert span is obs.NOOP_SPAN
    assert not span.is_recording


def test_chrome_trace_round_trips_through_json(env, tracer, tmp_path):
    runtime = make_wan_runtime(env)
    invoke_remotely(env, runtime)
    path = str(tmp_path / "trace.json")
    count = obs.dump_chrome_trace(path, tracer=tracer)
    assert count > 0
    with open(path) as handle:
        document = json.loads(handle.read())
    events = document["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    # Every recorded span is exported with microsecond timestamps.
    assert len(complete) == len(tracer.spans)
    serve = next(e for e in complete if e["name"] == "rpc.serve")
    assert serve["ts"] >= 0 and serve["dur"] >= 0
    assert serve["args"]["node"] == "site0.host0"
    # Node names become named pseudo-threads.
    threads = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in threads}
    assert "site0.host0" in names and "site1.host0" in names


def test_tracer_context_manager_and_scoping(env):
    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        with tracer.span("outer", env, node="x") as outer:
            with tracer.span("inner", env, parent=outer) as inner:
                pass
    assert obs.get_tracer() is obs.NOOP_TRACER
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id
    assert outer.end is not None and inner.end is not None
