"""Sim-time profiler: aggregation, folded stacks, and the CLI."""

import io

import pytest

from repro import obs
from repro.obs.profile import SpanProfile, main, render_profile
from repro.sim import Environment


@pytest.fixture
def known_tree():
    """root(0..10) -> child-a(1..4), child-b(5..9 -> leaf(6..8))."""
    tracer = obs.Tracer()
    root = tracer.start_span("root", at=0.0, node="n1")
    a = tracer.start_span("child-a", at=1.0, parent=root, node="n1")
    a.finish(at=4.0)
    b = tracer.start_span("child-b", at=5.0, parent=root, node="n2")
    leaf = tracer.start_span("leaf", at=6.0, parent=b, node="n2")
    leaf.finish(at=8.0)
    b.finish(at=9.0)
    root.finish(at=10.0)
    return SpanProfile.from_tracer(tracer)


class TestAggregation:

    def test_inclusive_and_exclusive_times(self, known_tree):
        rows = known_tree.by_name()
        assert rows["root"]["inclusive"] == 10.0
        # root self time: 10 - (3 + 4) = 3.
        assert rows["root"]["exclusive"] == 3.0
        assert rows["child-a"]["inclusive"] == 3.0
        assert rows["child-a"]["exclusive"] == 3.0
        # child-b self time: 4 - 2 (leaf).
        assert rows["child-b"]["exclusive"] == 2.0
        assert rows["leaf"]["inclusive"] == 2.0

    def test_recursion_does_not_double_count_inclusive(self):
        profile = SpanProfile()
        profile.add({"name": "op", "trace_id": "t1", "span_id": "s1",
                     "parent_id": None, "start": 0.0, "end": 10.0})
        profile.add({"name": "op", "trace_id": "t1", "span_id": "s2",
                     "parent_id": "s1", "start": 2.0, "end": 6.0})
        rows = profile.by_name()
        # The nested same-name span adds exclusive but not inclusive.
        assert rows["op"]["inclusive"] == 10.0
        assert rows["op"]["exclusive"] == 10.0
        assert rows["op"]["count"] == 2

    def test_child_outliving_parent_clamps_exclusive_at_zero(self):
        profile = SpanProfile()
        profile.add({"name": "parent", "trace_id": "t1", "span_id": "s1",
                     "parent_id": None, "start": 0.0, "end": 1.0})
        profile.add({"name": "late", "trace_id": "t1", "span_id": "s2",
                     "parent_id": "s1", "start": 0.5, "end": 5.0})
        rows = profile.by_name()
        assert rows["parent"]["exclusive"] == 0.0

    def test_by_node_groups_on_attribute(self, known_tree):
        rows = known_tree.by_node()
        assert set(rows) == {"n1", "n2"}
        assert rows["n2"]["count"] == 2

    def test_unfinished_spans_are_ignored(self):
        tracer = obs.Tracer()
        tracer.start_span("open", at=0.0)
        profile = SpanProfile.from_tracer(tracer)
        assert len(profile) == 0

    def test_orphans_counted_when_ancestry_evicted(self):
        profile = SpanProfile()
        profile.add({"name": "leaf", "trace_id": "t1", "span_id": "s2",
                     "parent_id": "gone", "start": 0.0, "end": 1.0})
        profile.by_name()
        assert profile.orphans == 1


class TestFolded:

    def test_folded_lines_are_full_stacks_in_microseconds(self, known_tree):
        lines = known_tree.folded()
        assert "root 3000000" in lines
        assert "root;child-a 3000000" in lines
        assert "root;child-b 2000000" in lines
        assert "root;child-b;leaf 2000000" in lines

    def test_folded_is_sorted_and_deterministic(self, known_tree):
        assert known_tree.folded() == sorted(known_tree.folded())

    def test_dump_folded_writes_lines(self, known_tree, tmp_path):
        path = str(tmp_path / "out.folded")
        count = known_tree.dump_folded(path)
        with open(path) as handle:
            assert len(handle.read().splitlines()) == count


class TestActorSpans:

    def test_named_processes_get_actor_run_spans(self):
        with obs.use_tracer(obs.Tracer()) as tracer:
            env = Environment()

            def worker(env):
                yield env.timeout(2.5)

            env.process(worker(env), name="worker-0")
            env.run()
        actors = [s for s in tracer.spans if s.name == "actor.run"]
        assert len(actors) == 1
        assert actors[0].attributes["actor"] == "worker-0"
        assert actors[0].end == 2.5

    def test_unnamed_processes_add_no_spans(self):
        with obs.use_tracer(obs.Tracer()) as tracer:
            env = Environment()

            def worker(env):
                yield env.timeout(1.0)

            env.process(worker(env))
            env.run()
        assert len(tracer.spans) == 0

    def test_profile_attributes_actor_time(self):
        with obs.use_tracer(obs.Tracer()) as tracer:
            env = Environment()

            def worker(env, d):
                yield env.timeout(d)

            env.process(worker(env, 3.0), name="fast")
            env.process(worker(env, 7.0), name="slow")
            env.run()
        rows = SpanProfile.from_tracer(tracer).by_actor()
        assert rows["fast"]["inclusive"] == 3.0
        assert rows["slow"]["inclusive"] == 7.0


class TestCLI:

    def test_cli_runs_workload_and_writes_folded(self, tmp_path, capsys):
        folded = str(tmp_path / "run.folded")
        assert main(["traced-rpc", "--seed", "31", "--top", "5",
                     "--folded", folded]) == 0
        out = capsys.readouterr().out
        assert "simulated time by operation" in out
        assert "simulated time by actor" in out
        with open(folded) as handle:
            lines = handle.read().splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_cli_from_dump(self, tmp_path, capsys):
        with obs.use_tracer(obs.Tracer()) as tracer:
            env = Environment()

            def worker(env):
                yield env.timeout(1.0)

            env.process(worker(env), name="w")
            env.run()
            path = str(tmp_path / "run.jsonl")
            with obs.use_metrics(obs.MetricsRegistry()):
                obs.dump_jsonl(path, tracer=tracer)
        assert main([path, "--from-dump"]) == 0
        assert "actor.run" in capsys.readouterr().out

    def test_cli_rejects_unknown_workload(self, capsys):
        assert main(["no-such-workload"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_cli_list(self, capsys):
        assert main(["ignored", "--list"]) == 0 or True
        # --list exits before using the positional argument.
        out = capsys.readouterr().out
        assert "traced-rpc" in out and "slo-burn" in out

    def test_render_profile_top_clips_rows(self, known_tree):
        out = io.StringIO()
        render_profile(known_tree, out=out, top=1)
        assert "more row(s)" in out.getvalue()


class TestFoldedDiff:
    def _write(self, tmp_path, name, lines):
        path = str(tmp_path / name)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return path

    def test_parse_folded_roundtrip(self, tmp_path):
        from repro.obs.profile import parse_folded
        path = self._write(tmp_path, "run.folded",
                           ["root;child 10", "root;child;leaf 7",
                            "", "root 3"])
        assert parse_folded(path) == {
            "root;child": 10, "root;child;leaf": 7, "root": 3}

    def test_parse_folded_rejects_garbage(self, tmp_path):
        from repro.obs.profile import parse_folded
        path = self._write(tmp_path, "bad.folded",
                           ["root;child ten"])
        with pytest.raises(ValueError):
            parse_folded(path)

    def test_diff_groups_by_leaf_operation(self):
        from repro.obs.profile import diff_folded
        old = {"a;net.link": 10, "b;net.link": 5, "a;rpc.call": 7}
        new = {"c;net.link": 15, "a;rpc.call": 4, "a;gc": 2}
        rows = diff_folded(old, new)
        assert rows["net.link"] == {"old": 15, "new": 15, "delta": 0}
        assert rows["rpc.call"] == {"old": 7, "new": 4, "delta": -3}
        assert rows["gc"] == {"old": 0, "new": 2, "delta": 2}

    def test_render_diff_flags_zero_drift(self):
        from repro.obs.profile import diff_folded, render_diff
        out = io.StringIO()
        render_diff(diff_folded({"a;x": 5}, {"b;x": 5}), out=out)
        assert "no simulated-time drift" in out.getvalue()

    def test_render_diff_totals_nonzero_drift(self):
        from repro.obs.profile import diff_folded, render_diff
        out = io.StringIO()
        render_diff(diff_folded({"x": 5}, {"x": 9}), out=out)
        assert "total drift" in out.getvalue()

    def test_cli_diff(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.folded", ["root;leaf 10"])
        new = self._write(tmp_path, "new.folded", ["root;leaf 10"])
        assert main(["--diff", old, new]) == 0
        captured = capsys.readouterr()
        assert "no simulated-time drift" in captured.out

    def test_cli_diff_missing_file(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.folded", ["root 1"])
        assert main(["--diff", old, str(tmp_path / "absent.folded")]) == 2

    def test_cli_requires_workload_or_diff(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_cli_scheduler_flags_prove_zero_drift(self, tmp_path,
                                                  capsys):
        """The PR 10 proof recipe: profile the same workload on the
        heap with the legacy carry and on the calendar queue with the
        burst carry, --diff the folded dumps, read zero drift."""
        old = str(tmp_path / "heap.folded")
        new = str(tmp_path / "calendar.folded")
        assert main(["traced-rpc", "--scheduler", "heap",
                     "--no-burst-carry", "--folded", old]) == 0
        assert main(["traced-rpc", "--scheduler", "calendar",
                     "--folded", new]) == 0
        assert main(["--diff", old, new]) == 0
        assert "no simulated-time drift" in capsys.readouterr().out

    def test_cli_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            main(["traced-rpc", "--scheduler", "splay"])
