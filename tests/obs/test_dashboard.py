"""The dashboard CLI: workload mode, dump mode, formats, exit codes."""

import json

import pytest

from repro.obs.dashboard import main


def run_main(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_workload_mode_renders_tables_and_critical_path(capsys):
    code, out, _ = run_main(capsys, [
        "--workload", "timeline-demo", "--seed", "31",
        "--tables", "node,link", "--critical-path"])
    assert code == 0
    assert "hot spots by node" in out
    assert "hot spots by link" in out
    assert "critical-path bottlenecks" in out
    assert "zipf skew (node):" in out
    # Non-empty top-K: at least one node row between header and skew line.
    node_section = out.split("hot spots by node")[1]
    node_rows = node_section.split("zipf skew")[0].strip().splitlines()
    assert len(node_rows) > 2  # rule + header + >=1 data row


def test_same_seed_runs_are_byte_identical(capsys):
    argv = ["--workload", "timeline-demo", "--seed", "31",
            "--tables", "node,op", "--critical-path", "--timeline"]
    _, first, _ = run_main(capsys, argv)
    _, second, _ = run_main(capsys, argv)
    assert first == second
    assert first  # and not trivially empty


def test_dump_mode_reads_mixed_jsonl(tmp_path, capsys):
    from repro import obs
    from repro.obs.timeline import TimelineRecorder
    from repro.sim import Environment

    with obs.use_tracer(obs.Tracer()) as tracer, \
            obs.use_metrics(obs.MetricsRegistry()) as metrics:
        env = Environment()
        recorder = TimelineRecorder(env, registry=metrics, resolution=1.0)

        def proc(env):
            for step in range(5):
                with tracer.span("work", env, node="n1", actor="worker"):
                    metrics.counter("net.node.sent", node="n1").add()
                    yield env.timeout(0.7)

        env.process(proc(env), name="worker")
        env.run()
        recorder.finish()
        path = str(tmp_path / "run.jsonl")
        obs.dump_jsonl(path, tracer=tracer, metrics=metrics,
                       timeline=recorder)

    code, out, _ = run_main(capsys, [path, "--tables", "node,actor",
                                     "--critical-path", "--timeline"])
    assert code == 0
    assert "window(s) covering" in out
    assert "timeline" in out
    assert "hot spots by node" in out
    assert "n1" in out and "worker" in out


def test_format_json_is_parseable_and_sorted(capsys):
    code, out, _ = run_main(capsys, [
        "--workload", "timeline-demo", "--tables", "node",
        "--critical-path", "--format", "json"])
    assert code == 0
    data = json.loads(out)
    assert data["windows"] > 0
    assert data["tables"]["node"]["rows"]
    assert data["critical_path"]["bottlenecks"]
    assert out == json.dumps(data, sort_keys=True, indent=2) + "\n"


def test_unknown_dimension_exits_2(capsys):
    code, _, err = run_main(capsys, [
        "--workload", "timeline-demo", "--tables", "node,galaxy"])
    assert code == 2
    assert "unknown table dimension" in err


def test_unknown_workload_exits_2(capsys):
    code, _, err = run_main(capsys, ["--workload", "no-such-workload"])
    assert code == 2
    assert "unknown workload" in err


def test_unreadable_dump_exits_2(tmp_path, capsys):
    code, _, err = run_main(capsys,
                            [str(tmp_path / "missing.jsonl")])
    assert code == 2
    assert "cannot read" in err


def test_requires_exactly_one_source(capsys):
    with pytest.raises(SystemExit):
        main([])
    with pytest.raises(SystemExit):
        main(["dump.jsonl", "--workload", "timeline-demo"])


def test_top_clips_tables(capsys):
    code, out, _ = run_main(capsys, [
        "--workload", "timeline-demo", "--tables", "op", "--top", "2"])
    assert code == 0
    assert "more row(s); raise --top" in out
