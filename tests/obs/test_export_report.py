"""JSONL export, loading and the report CLI."""

import io
import json

import pytest

from repro import obs
from repro.net import Network, lan
from repro.node import ODPRuntime
from repro.obs.report import main, render_report
from repro.sim import Environment


@pytest.fixture
def traced_run(tmp_path):
    """A small traced two-node run, dumped to JSONL."""
    with obs.use_tracer(obs.Tracer()) as tracer, \
            obs.use_metrics(obs.MetricsRegistry()) as metrics:
        env = Environment()
        net = Network(env, lan(env, hosts=2))
        runtime = ODPRuntime(net, registry_node="host0")
        server = runtime.nucleus("host0")
        client = runtime.nucleus("host1")
        capsule = server.create_capsule()
        obj = server.create_object(capsule, "counter", state={"n": 0})
        obj.operation(
            "incr", lambda caller, state, args: state.__setitem__(
                "n", state["n"] + args) or state["n"])

        def root(env):
            for _ in range(3):
                yield client.invoke(obj.oid, "incr", 1)

        proc = env.process(root(env))
        env.run(proc)
        path = str(tmp_path / "run.jsonl")
        lines = obs.dump_jsonl(path, tracer=tracer, metrics=metrics)
    return path, lines


def test_dump_is_nonempty_parseable_jsonl(traced_run):
    path, lines = traced_run
    assert lines > 0
    with open(path) as handle:
        raw = [line for line in handle if line.strip()]
    assert len(raw) == lines
    records = [json.loads(line) for line in raw]
    kinds = {record["kind"] for record in records}
    assert kinds == {"span", "metric"}


def test_load_round_trips(traced_run):
    path, lines = traced_run
    records = obs.load_jsonl(path)
    assert len(records) == lines
    spans = [r for r in records if r["kind"] == "span"]
    assert any(s["name"] == "node.invoke" for s in spans)
    assert any(s["name"] == "rpc.serve" for s in spans)
    metrics = [r for r in records if r["kind"] == "metric"]
    latency = [m for m in metrics if m["name"] == "rpc.latency"]
    assert latency and latency[0]["summary"]["count"] == 3.0


def test_render_report_tables(traced_run):
    path, _ = traced_run
    out = io.StringIO()
    render_report(obs.load_jsonl(path), out=out)
    text = out.getvalue()
    assert "spans by operation" in text
    assert "invocation latency by node" in text
    assert "invocation latency by object" in text
    assert "traffic by source node" in text
    assert "node.invoke" in text
    assert "host1" in text


def test_report_cli_main(traced_run, capsys):
    path, _ = traced_run
    assert main([path]) == 0
    captured = capsys.readouterr()
    assert "spans by operation" in captured.out


def test_default_noop_dump_has_no_spans(tmp_path):
    path = str(tmp_path / "empty.jsonl")
    with obs.use_metrics(obs.MetricsRegistry()):
        lines = obs.dump_jsonl(path)
    records = obs.load_jsonl(path)
    assert lines == len(records)
    assert all(record["kind"] == "metric" for record in records)


def test_report_cli_top_clips_tables(traced_run, capsys):
    path, _ = traced_run
    assert main([path, "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "more row(s); raise --top" in out


def test_tolerant_loader_skips_truncated_lines(traced_run):
    path, lines = traced_run
    with open(path) as handle:
        content = handle.read()
    # Simulate a dump cut off mid-write: last line truncated, plus a
    # garbage line injected in the middle.
    rows = content.splitlines()
    rows.insert(len(rows) // 2, "{not json")
    rows[-1] = rows[-1][: len(rows[-1]) // 2]
    with open(path, "w") as handle:
        handle.write("\n".join(rows))
    records, skipped = obs.load_jsonl_tolerant(path)
    assert skipped == 2
    assert len(records) == lines - 1


def test_report_cli_tolerates_truncated_dump(traced_run, capsys):
    path, _ = traced_run
    with open(path) as handle:
        content = handle.read()
    with open(path, "w") as handle:
        handle.write(content[: int(len(content) * 0.8)])
    assert main([path]) == 0
    captured = capsys.readouterr()
    assert "skipped" in captured.err
    assert "spans by operation" in captured.out


def test_report_cli_rejects_dump_with_no_records(tmp_path, capsys):
    path = str(tmp_path / "garbage.jsonl")
    with open(path, "w") as handle:
        handle.write("not json at all\n{{{\n")
    assert main([path]) == 2
    assert "no parseable records" in capsys.readouterr().err


def test_report_cli_format_json(traced_run, capsys):
    path, _ = traced_run
    assert main([path, "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["spans"] > 0
    assert "node.invoke" in data["by_operation"]
    assert data["invocation_by_node"]["host1"]["count"] == 3
    assert any(m["name"] == "rpc.latency" for m in data["histograms"])


def test_report_json_matches_text_counts(traced_run, capsys):
    path, _ = traced_run
    assert main([path, "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert main([path]) == 0
    text = capsys.readouterr().out
    assert text.startswith("{} spans in {} traces, {} metric records".format(
        data["spans"], data["traces"], data["metric_records"]))


def test_report_json_is_byte_stable(traced_run, capsys):
    path, _ = traced_run
    assert main([path, "--format", "json"]) == 0
    first = capsys.readouterr().out
    assert main([path, "--format", "json"]) == 0
    assert capsys.readouterr().out == first


def test_report_cli_unreadable_file_exits_2(tmp_path, capsys):
    assert main([str(tmp_path / "missing.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_meta_record_leads_the_dump(traced_run, tmp_path):
    from repro.obs.export import META_SCHEMA

    path = str(tmp_path / "meta.jsonl")
    with obs.use_metrics(obs.MetricsRegistry()):
        obs.dump_jsonl(path, meta={"workload": "demo", "seed": 7,
                                   "sim_time": [0.0, 4.5]})
    with open(path) as handle:
        first = json.loads(handle.readline())
    assert first == {"kind": "meta", "schema": META_SCHEMA,
                     "workload": "demo", "seed": 7,
                     "sim_time": [0.0, 4.5]}


def test_report_surfaces_meta_line(tmp_path, capsys):
    path = str(tmp_path / "meta.jsonl")
    with obs.use_metrics(obs.MetricsRegistry()) as metrics:
        metrics.counter("ticks").add()
        obs.dump_jsonl(path, metrics=metrics,
                       meta={"workload": "demo", "seed": 7})
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert out.startswith("meta: workload=demo seed=7 schema=repro-obs/1")
    assert main([path, "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["meta"]["workload"] == "demo"


def test_metaless_dump_still_loads_and_reports(traced_run, capsys):
    # Dumps written before the meta record existed: no meta line, no
    # meta key surprises, everything else identical.
    path, _ = traced_run
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert not out.startswith("meta:")
    assert "spans by operation" in out
    assert main([path, "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out)["meta"] is None


def test_dump_jsonl_appends_timeline_windows(tmp_path):
    from repro.obs.timeline import TimelineRecorder
    from repro.sim import Environment

    with obs.use_metrics(obs.MetricsRegistry()) as metrics:
        env = Environment()
        recorder = TimelineRecorder(env, registry=metrics, resolution=1.0)

        def proc(env):
            for _ in range(3):
                yield env.timeout(0.8)
                metrics.counter("ticks").add()

        env.process(proc(env))
        env.run()
        recorder.finish()
        path = str(tmp_path / "mixed.jsonl")
        obs.dump_jsonl(path, metrics=metrics, timeline=recorder)
    records = obs.load_jsonl(path)
    kinds = {record["kind"] for record in records}
    assert "window" in kinds and "metric" in kinds
    windows = [r for r in records if r["kind"] == "window"]
    assert sum(w["counters"].get("ticks", 0) for w in windows) == 3
