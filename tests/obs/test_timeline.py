"""The sim-time timeline recorder."""

import json

import pytest

from repro.obs import load_windows
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TimelineRecorder
from repro.sim import Environment


def drive(env, registry, period, count, node="n1"):
    """A process ticking a counter + histogram every ``period``."""
    def proc(env):
        counter = registry.bind_counter("ticks", node=node)
        hist = registry.bind_histogram("tick.latency", node=node)
        for i in range(count):
            yield env.timeout(period)
            counter.add()
            hist.record(period * (i + 1))
    env.process(proc(env))


def test_counter_deltas_per_window():
    env = Environment()
    registry = MetricsRegistry()
    recorder = TimelineRecorder(env, registry=registry, resolution=1.0)
    drive(env, registry, 0.25, 10)  # ticks at 0.25 .. 2.5
    env.run()
    recorder.finish()
    windows = list(recorder.records())
    deltas = [w["counters"].get("ticks{node=n1}", 0) for w in windows]
    # [0.25..0.75]=3 in window 0 (tick at 1.0 lands in window 1).
    assert deltas == [3, 4, 3]
    assert sum(deltas) == 10
    assert [w["start"] for w in windows] == [0.0, 1.0, 2.0]


def test_histogram_stats_cover_only_their_window():
    env = Environment()
    registry = MetricsRegistry()
    recorder = TimelineRecorder(env, registry=registry, resolution=1.0)
    drive(env, registry, 0.25, 10)
    env.run()
    recorder.finish()
    first = list(recorder.records())[0]["histograms"]
    stats = first["tick.latency{node=n1}"]
    assert stats["count"] == 3
    assert stats["max"] == 0.75  # later observations not leaked back


def test_quiet_windows_still_emitted():
    env = Environment()
    registry = MetricsRegistry()
    recorder = TimelineRecorder(env, registry=registry, resolution=1.0)

    def proc(env):
        registry.counter("a").add()
        yield env.timeout(3.5)
        registry.counter("a").add()

    env.process(proc(env))
    env.run()
    recorder.finish()
    windows = list(recorder.records())
    assert [w["index"] for w in windows] == [0, 1, 2, 3]
    assert windows[1]["counters"] == {}
    assert windows[2]["counters"] == {}


def test_finish_flushes_partial_window_and_is_idempotent():
    env = Environment()
    registry = MetricsRegistry()
    recorder = TimelineRecorder(env, registry=registry, resolution=1.0)
    drive(env, registry, 0.3, 5)  # last activity at 1.5
    env.run()
    flushed = recorder.finish()
    windows = list(recorder.records())
    assert windows[-1].get("partial") is True
    assert windows[-1]["end"] == env.now
    assert sum(w["counters"].get("ticks{node=n1}", 0)
               for w in windows) == 5
    assert recorder.finish() == flushed  # second call is a no-op


def test_retention_ring_evicts_oldest():
    env = Environment()
    registry = MetricsRegistry()
    recorder = TimelineRecorder(env, registry=registry, resolution=1.0,
                                retention=2)
    drive(env, registry, 0.5, 10)  # 5s of activity
    env.run()
    recorder.finish()
    windows = list(recorder.records())
    assert len(windows) == 2
    assert recorder.flushed > 2
    assert recorder.evicted == recorder.flushed - 2
    assert windows[0]["index"] == recorder.flushed - 2


def test_window_at_and_series():
    env = Environment()
    registry = MetricsRegistry()
    recorder = TimelineRecorder(env, registry=registry, resolution=1.0)
    drive(env, registry, 0.25, 10)
    env.run()
    recorder.finish()
    window = recorder.window_at(1.5)
    assert window["start"] == 1.0 and window["end"] == 2.0
    assert recorder.window_at(99.0) is None
    series = recorder.series("ticks{node=n1}")
    assert [delta for _, delta in series] == [3, 4, 3]


def test_dump_jsonl_round_trips_through_load_windows(tmp_path):
    env = Environment()
    registry = MetricsRegistry()
    recorder = TimelineRecorder(env, registry=registry, resolution=1.0)
    drive(env, registry, 0.25, 10)
    env.run()
    recorder.finish()
    path = str(tmp_path / "run.timeline.jsonl")
    lines = recorder.dump_jsonl(path)
    assert lines == len(recorder)
    with open(path) as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    assert load_windows(records) == list(recorder.records())


def test_recorder_does_not_change_event_counts():
    """The zero-event property replay digests rely on."""
    def stats(record):
        env = Environment()
        registry = MetricsRegistry()
        recorder = TimelineRecorder(env, registry=registry,
                                    resolution=0.5) if record else None
        drive(env, registry, 0.25, 20)
        env.run()
        if recorder is not None:
            recorder.finish()
        return env.stats()

    assert stats(record=True) == stats(record=False)


def test_same_run_twice_is_identical():
    def run():
        env = Environment()
        registry = MetricsRegistry()
        recorder = TimelineRecorder(env, registry=registry, resolution=1.0)
        drive(env, registry, 0.25, 10)
        drive(env, registry, 0.4, 5, node="n2")
        env.run()
        recorder.finish()
        return json.dumps(list(recorder.records()), sort_keys=True)

    assert run() == run()


def test_gauges_report_latest_value_only_on_change():
    env = Environment()
    registry = MetricsRegistry()
    recorder = TimelineRecorder(env, registry=registry, resolution=1.0)

    def proc(env):
        gauge = registry.bind_gauge("depth")
        gauge.set(3.0, at=env.now)
        yield env.timeout(0.5)
        gauge.set(5.0, at=env.now)
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    recorder.finish()
    windows = list(recorder.records())
    assert windows[0]["gauges"] == {"depth": 5.0}
    assert windows[1]["gauges"] == {}  # unchanged → not re-reported


def test_bad_retention_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        TimelineRecorder(env, registry=MetricsRegistry(), retention=0)
