"""Tests for the distributed object runtime: invocation and migration."""

import pytest

from repro.errors import NodeError, PlacementError
from repro.net import Network, lan, wan
from repro.node import ODPRuntime
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_runtime(env, hosts=3):
    topo = lan(env, hosts=hosts)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="host0")
    return runtime


def counter_ops(obj):
    obj.operation("incr", lambda caller, state, args: _incr(state, args))
    obj.operation("read", lambda caller, state, args: state["n"])


def _incr(state, by):
    state["n"] = state["n"] + by
    return state["n"]


def test_registry_basics():
    from repro.node import Registry

    registry = Registry()
    registry.register("obj-1", "host0")
    assert registry.lookup("obj-1") == "host0"
    registry.unregister("obj-1")
    assert registry.lookup("obj-1") is None


def test_local_invocation_short_circuits(env):
    runtime = make_runtime(env)
    nucleus = runtime.nucleus("host0")
    capsule = nucleus.create_capsule("cap")
    obj = nucleus.create_object(capsule, "counter", state={"n": 0})
    counter_ops(obj)

    def root(env):
        result = yield nucleus.invoke(obj.oid, "incr", 3)
        return (env.now, result)

    proc = env.process(root(env))
    env.run(proc)
    at, result = proc.value
    assert result == 3
    assert at == 0.0  # no network crossing for a local object


def test_remote_invocation(env):
    runtime = make_runtime(env)
    server = runtime.nucleus("host0")
    client = runtime.nucleus("host1")
    capsule = server.create_capsule("cap")
    obj = server.create_object(capsule, "counter", state={"n": 10})
    counter_ops(obj)

    def root(env):
        result = yield client.invoke(obj.oid, "incr", 5)
        return (env.now, result)

    proc = env.process(root(env))
    env.run(proc)
    at, result = proc.value
    assert result == 15
    assert at > 0.0  # crossed the network


def test_invocation_unknown_object_fails(env):
    runtime = make_runtime(env)
    client = runtime.nucleus("host1")
    errors = []

    def root(env):
        try:
            yield client.invoke("obj-424242", "read")
        except NodeError:
            errors.append(True)

    proc = env.process(root(env))
    env.run(proc)
    assert errors == [True]


def test_invocation_unknown_operation_fails(env):
    runtime = make_runtime(env)
    server = runtime.nucleus("host0")
    client = runtime.nucleus("host1")
    capsule = server.create_capsule()
    obj = server.create_object(capsule, "thing")
    errors = []

    def root(env):
        try:
            yield client.invoke(obj.oid, "nothing")
        except NodeError as error:
            errors.append(str(error))

    proc = env.process(root(env))
    env.run(proc)
    assert errors


def test_generator_operation_takes_simulated_time(env):
    runtime = make_runtime(env)
    server = runtime.nucleus("host0")
    client = runtime.nucleus("host1")
    capsule = server.create_capsule()
    obj = server.create_object(capsule, "worker")

    def busy(caller, state, args):
        yield env.timeout(1.0)
        return "worked"

    obj.operation("work", busy)

    def root(env):
        result = yield client.invoke(obj.oid, "work")
        return (env.now, result)

    proc = env.process(root(env))
    env.run(proc)
    at, result = proc.value
    assert result == "worked"
    assert at >= 1.0


def test_create_object_requires_local_capsule(env):
    runtime = make_runtime(env)
    n0 = runtime.nucleus("host0")
    n1 = runtime.nucleus("host1")
    foreign_capsule = n1.create_capsule()
    with pytest.raises(NodeError):
        n0.create_object(foreign_capsule, "x")


def test_migration_moves_object_and_updates_registry(env):
    runtime = make_runtime(env)
    source = runtime.nucleus("host0")
    target_name = "host2"
    runtime.nucleus(target_name)
    client = runtime.nucleus("host1")
    capsule = source.create_capsule()
    obj = source.create_object(capsule, "counter", state={"n": 0},
                               state_size=4096)
    counter_ops(obj)
    cluster = obj.cluster

    def root(env):
        yield client.invoke(obj.oid, "incr", 1)
        yield source.migrate_cluster(cluster, target_name)
        assert runtime.locate(obj.oid) == target_name
        result = yield client.invoke(obj.oid, "incr", 1)
        return result

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == 2
    assert source.find_object(obj.oid) is None
    assert runtime.nuclei[target_name].find_object(obj.oid) is not None


def test_migration_of_foreign_cluster_fails(env):
    runtime = make_runtime(env)
    n0 = runtime.nucleus("host0")
    n1 = runtime.nucleus("host1")
    capsule = n1.create_capsule()
    obj = n1.create_object(capsule, "x")
    errors = []

    def root(env):
        try:
            yield n0.migrate_cluster(obj.cluster, "host2")
        except PlacementError:
            errors.append(True)

    proc = env.process(root(env))
    env.run(proc)
    assert errors == [True]


def test_stale_cache_chased_after_migration(env):
    runtime = make_runtime(env, hosts=4)
    source = runtime.nucleus("host0")
    runtime.nucleus("host2")
    client = runtime.nucleus("host1")
    capsule = source.create_capsule()
    obj = source.create_object(capsule, "counter", state={"n": 0})
    counter_ops(obj)
    cluster = obj.cluster

    def root(env):
        # Prime the client's location cache.
        yield client.invoke(obj.oid, "incr", 1)
        yield source.migrate_cluster(cluster, "host2")
        # The cached location (host0) is now stale; the runtime must chase.
        result = yield client.invoke(obj.oid, "incr", 1)
        return result

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == 2


def test_runtime_all_objects_and_locate(env):
    runtime = make_runtime(env)
    n0 = runtime.nucleus("host0")
    capsule = n0.create_capsule()
    obj = n0.create_object(capsule, "a")
    assert runtime.locate(obj.oid) == "host0"
    assert obj in runtime.all_objects()


def test_remote_object_registration_over_wan(env):
    topo = wan(env, sites=2, hosts_per_site=1)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="site0.host0")
    remote = runtime.nucleus("site1.host0")
    capsule = remote.create_capsule()
    obj = remote.create_object(capsule, "far", state={"n": 0})
    counter_ops(obj)
    client = runtime.nucleus("site0.host0")

    def root(env):
        # Allow the asynchronous registration to reach the registry.
        yield env.timeout(1.0)
        result = yield client.invoke(obj.oid, "incr", 7)
        return result

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == 7
