"""Tests for engineering objects, clusters and capsules."""

import pytest

from repro.errors import NodeError
from repro.node import Capsule, Cluster, EngineeringObject


def test_object_identity_and_state():
    obj = EngineeringObject("doc", state={"text": "hi"}, state_size=64)
    assert obj.name == "doc"
    assert obj.state == {"text": "hi"}
    assert obj.state_size == 64
    assert obj.oid.startswith("obj-")


def test_object_state_size_validation():
    with pytest.raises(NodeError):
        EngineeringObject("x", state_size=-1)


def test_object_operations():
    obj = EngineeringObject("counter", state={"n": 0})
    obj.operation("incr", lambda caller, state, args: state.__setitem__(
        "n", state["n"] + args) or state["n"])
    assert obj.has_operation("incr")
    assert not obj.has_operation("decr")
    obj.invoke_local("tester", "incr", 5)
    assert obj.state["n"] == 5
    assert obj.invocations == 1


def test_invoke_unknown_operation():
    obj = EngineeringObject("x")
    with pytest.raises(NodeError):
        obj.invoke_local("tester", "missing", None)


def test_cluster_add_remove():
    cluster = Cluster("c")
    obj = EngineeringObject("a")
    cluster.add(obj)
    assert obj.cluster is cluster
    assert len(cluster) == 1
    removed = cluster.remove(obj.oid)
    assert removed is obj
    assert obj.cluster is None
    assert len(cluster) == 0


def test_cluster_rejects_double_add():
    c1, c2 = Cluster(), Cluster()
    obj = EngineeringObject("a")
    c1.add(obj)
    with pytest.raises(NodeError):
        c2.add(obj)


def test_cluster_remove_missing():
    cluster = Cluster()
    with pytest.raises(NodeError):
        cluster.remove("obj-999999")


def test_cluster_state_size_sums_objects():
    cluster = Cluster()
    cluster.add(EngineeringObject("a", state_size=100))
    cluster.add(EngineeringObject("b", state_size=200))
    assert cluster.state_size == 300


def test_capsule_cluster_lifecycle():
    capsule = Capsule("cap")
    cluster = Cluster("c")
    capsule.add_cluster(cluster)
    assert cluster.capsule is capsule
    removed = capsule.remove_cluster(cluster.cluster_id)
    assert removed is cluster
    assert cluster.capsule is None


def test_capsule_rejects_double_add():
    cap1, cap2 = Capsule(), Capsule()
    cluster = Cluster()
    cap1.add_cluster(cluster)
    with pytest.raises(NodeError):
        cap2.add_cluster(cluster)


def test_capsule_remove_missing():
    capsule = Capsule()
    with pytest.raises(NodeError):
        capsule.remove_cluster("cluster-999999")


def test_capsule_find_object():
    capsule = Capsule()
    cluster = Cluster()
    capsule.add_cluster(cluster)
    obj = EngineeringObject("target")
    cluster.add(obj)
    assert capsule.find_object(obj.oid) is obj
    assert capsule.find_object("obj-0") is None


def test_capsule_all_objects():
    capsule = Capsule()
    c1, c2 = Cluster(), Cluster()
    capsule.add_cluster(c1)
    capsule.add_cluster(c2)
    c1.add(EngineeringObject("a"))
    c2.add(EngineeringObject("b"))
    assert sorted(o.name for o in capsule.all_objects()) == ["a", "b"]
