"""Tests for Skarra & Zdonik transaction groups and access rules."""

import pytest

from repro.concurrency import (
    SharedStore,
    TransactionGroup,
    cooperative_rule,
    free_rule,
    serialisable_rule,
)
from repro.errors import ConcurrencyError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_group(env, rule):
    store = SharedStore()
    group = TransactionGroup(env, store, rule=rule)
    group.add_member("alice")
    group.add_member("bob")
    return group, store


def test_membership():
    env = Environment()
    group = TransactionGroup(env, SharedStore())
    group.add_member("alice")
    with pytest.raises(ConcurrencyError):
        group.add_member("alice")
    with pytest.raises(ConcurrencyError):
        group.read("stranger", "k")


def test_rule_names():
    assert serialisable_rule().name == "serialisable"
    assert cooperative_rule().name == "cooperative"
    assert free_rule().name == "free"


def test_cooperative_read_sees_uncommitted_write(env):
    """The paper's co-authoring case: read over the writer's shoulder."""
    group, store = make_group(env, cooperative_rule())
    store.write("section", "draft v0")

    def root(env):
        yield group.write("alice", "section", "draft v1 (in progress)")
        value = yield group.read("bob", "section")
        return value

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == "draft v1 (in progress)"
    assert group.counters["cooperative_reads"] == 1
    # Outside the group, the store still shows the committed state.
    assert store.read("section") == "draft v0"


def test_serialisable_rule_blocks_reader_during_write(env):
    group, store = make_group(env, serialisable_rule())
    read_times = []

    def writer(env):
        yield group.write("alice", "section", "v1")
        yield env.timeout(3.0)
        group.release("alice", "section", "write")

    def reader(env):
        yield env.timeout(0.5)
        yield group.read("bob", "section")
        read_times.append(env.now)

    env.process(writer(env))
    env.process(reader(env))
    env.run()
    assert read_times == [3.0]
    assert group.counters["blocked"] == 1


def test_concurrent_writers_excluded_under_cooperative(env):
    group, _ = make_group(env, cooperative_rule())
    write_times = []

    def writer(env, name, delay, hold):
        yield env.timeout(delay)
        yield group.write(name, "section", name)
        write_times.append((name, env.now))
        yield env.timeout(hold)
        group.release(name, "section", "write")

    env.process(writer(env, "alice", 0.0, 2.0))
    env.process(writer(env, "bob", 0.5, 1.0))
    env.run()
    assert write_times == [("alice", 0.0), ("bob", 2.0)]


def test_free_rule_permits_everything(env):
    group, _ = make_group(env, free_rule())
    times = []

    def writer(env, name):
        yield group.write(name, "section", name)
        times.append(env.now)

    env.process(writer(env, "alice"))
    env.process(writer(env, "bob"))
    env.run()
    assert times == [0.0, 0.0]
    assert group.counters["blocked"] == 0


def test_commit_publishes_group_state(env):
    group, store = make_group(env, cooperative_rule())

    def root(env):
        yield group.write("alice", "a", 1)
        yield group.write("bob", "b", 2)
        group.commit()

    proc = env.process(root(env))
    env.run(proc)
    assert store.read("a") == 1
    assert store.read("b") == 2
    assert group.committed
    assert group.counters["commits"] == 1


def test_release_requires_held_access(env):
    group, _ = make_group(env, cooperative_rule())
    with pytest.raises(ConcurrencyError):
        group.release("alice", "k", "write")


def test_group_value_fallbacks(env):
    group, store = make_group(env, cooperative_rule())
    assert group.group_value("missing") is None
    store.write("k", "committed")
    assert group.group_value("k") == "committed"


def test_own_uncommitted_read_not_counted_cooperative(env):
    group, _ = make_group(env, cooperative_rule())

    def root(env):
        yield group.write("alice", "k", "mine")
        value = yield group.read("alice", "k")
        return value

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == "mine"
    assert group.counters["cooperative_reads"] == 0


def test_tailoring_with_custom_rule(env):
    """Applications tailor policy by amending the access rules."""
    from repro.concurrency import AccessRule

    # A rule that lets only 'editor-*' members write.
    def predicate(requester, op, key, holders):
        if op == "write":
            return requester.startswith("editor-")
        return True

    store = SharedStore()
    group = TransactionGroup(env, store,
                             rule=AccessRule(predicate, name="editors-only"))
    group.add_member("editor-alice")
    group.add_member("viewer-bob")

    def root(env):
        yield group.write("editor-alice", "k", "ok")
        blocked = group.write("viewer-bob", "k", "nope")
        assert not blocked.triggered  # held forever by policy
        blocked.defuse()

    proc = env.process(root(env))
    env.run(proc)
    assert group.wait_queue_length == 1
