"""Tests for lock granularity modelling and reservation control."""

import pytest
from hypothesis import given, strategies as st

from repro.concurrency import (
    GRANULARITIES,
    ReservationControl,
    StructuredDocument,
)
from repro.errors import ConcurrencyError, FloorControlError
from repro.sim import Environment


def make_doc():
    return StructuredDocument(sections=3, paragraphs_per_section=4,
                              sentences_per_paragraph=5,
                              words_per_sentence=6)


def test_document_shape():
    doc = make_doc()
    assert doc.words_per_sentence == 6
    assert doc.words_per_paragraph == 30
    assert doc.words_per_section == 120
    assert doc.total_words == 360


def test_document_shape_validation():
    with pytest.raises(ConcurrencyError):
        StructuredDocument(sections=0)


def test_unit_counts():
    doc = make_doc()
    assert doc.unit_count("document") == 1
    assert doc.unit_count("section") == 3
    assert doc.unit_count("paragraph") == 12
    assert doc.unit_count("sentence") == 60
    assert doc.unit_count("word") == 360


def test_unit_of_maps_words_to_units():
    doc = make_doc()
    assert doc.unit_of("section", 0) == "section:0"
    assert doc.unit_of("section", 120) == "section:1"
    assert doc.unit_of("word", 359) == "word:359"
    assert doc.unit_of("document", 200) == "document:0"


def test_unit_of_validation():
    doc = make_doc()
    with pytest.raises(ConcurrencyError):
        doc.unit_of("chapter", 0)
    with pytest.raises(ConcurrencyError):
        doc.unit_of("word", 360)


def test_units_for_span_counts():
    doc = make_doc()
    # A 12-word edit starting at word 0 covers 2 sentences, 1 paragraph.
    assert len(doc.units_for_span("sentence", 0, 12)) == 2
    assert len(doc.units_for_span("paragraph", 0, 12)) == 1
    assert len(doc.units_for_span("word", 0, 12)) == 12


def test_units_for_span_validation():
    doc = make_doc()
    with pytest.raises(ConcurrencyError):
        doc.units_for_span("word", 0, 0)
    with pytest.raises(ConcurrencyError):
        doc.units_for_span("word", 355, 10)


def test_spans_conflict_depends_on_granularity():
    doc = make_doc()
    # Two edits in the same paragraph but different sentences.
    edit_a = (0, 3)    # sentence 0
    edit_b = (12, 3)   # sentence 2
    assert doc.spans_conflict("paragraph", edit_a, edit_b)
    assert not doc.spans_conflict("sentence", edit_a, edit_b)
    assert doc.spans_conflict("document", edit_a, edit_b)


@given(st.integers(0, 359), st.integers(0, 359))
def test_coarser_granularity_conflicts_superset(word_a, word_b):
    """If two single-word edits conflict at a fine granularity, they
    conflict at every coarser one — the monotonicity behind E2."""
    doc = make_doc()
    spans = ((word_a, 1), (word_b, 1))
    fine_to_coarse = list(reversed(GRANULARITIES))  # word ... document
    conflicted = False
    for granularity in fine_to_coarse:
        now = doc.spans_conflict(granularity, *spans)
        assert now or not conflicted
        conflicted = conflicted or now
    assert doc.spans_conflict("document", *spans)


def test_reservation_grant_and_queue():
    env = Environment()
    floor = ReservationControl(env)
    order = []

    def speaker(env, name, hold):
        yield floor.request(name)
        order.append((name, env.now))
        yield env.timeout(hold)
        floor.release(name)

    env.process(speaker(env, "alice", 2.0))
    env.process(speaker(env, "bob", 1.0))
    env.process(speaker(env, "carol", 1.0))
    env.run()
    assert order == [("alice", 0.0), ("bob", 2.0), ("carol", 3.0)]


def test_reservation_release_requires_holder():
    env = Environment()
    floor = ReservationControl(env)
    floor.request("alice")
    with pytest.raises(FloorControlError):
        floor.release("bob")


def test_reservation_check():
    env = Environment()
    floor = ReservationControl(env)
    floor.request("alice")
    floor.check("alice")
    with pytest.raises(FloorControlError):
        floor.check("bob")
    assert floor.holds("alice")
    assert not floor.holds("bob")


def test_reservation_queue_length():
    env = Environment()
    floor = ReservationControl(env)
    floor.request("alice")
    floor.request("bob").defuse()
    assert floor.queue_length == 1
