"""Tests for serialisable transactions (the Figure 2a baseline)."""

import pytest

from repro.concurrency import (
    ABORTED,
    COMMITTED,
    SharedStore,
    TransactionManager,
)
from repro.errors import TransactionAborted
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tm(env):
    return TransactionManager(env, SharedStore())


def test_commit_publishes_writes(env, tm):
    def root(env):
        txn = tm.begin("alice")
        yield from tm.write(txn, "doc", "draft-1")
        assert "doc" not in tm.store  # invisible before commit
        yield from tm.commit(txn)
        return tm.store.read("doc")

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == "draft-1"
    assert tm.counters["committed"] == 1


def test_writes_invisible_until_commit(env, tm):
    """The 'walls' of Figure 2a: no outside visibility before commit."""
    tm.store.write("doc", "original")
    visible = []

    def writer(env):
        txn = tm.begin("alice")
        yield from tm.write(txn, "doc", "edited")
        yield env.timeout(5.0)
        yield from tm.commit(txn)

    def outside_observer(env):
        yield env.timeout(1.0)
        visible.append((env.now, tm.store.read("doc")))
        yield env.timeout(5.0)
        visible.append((env.now, tm.store.read("doc")))

    env.process(writer(env))
    env.process(outside_observer(env))
    env.run()
    assert visible == [(1.0, "original"), (6.0, "edited")]


def test_read_own_write(env, tm):
    def root(env):
        txn = tm.begin("alice")
        yield from tm.write(txn, "doc", "mine")
        value = yield from tm.read(txn, "doc")
        return value

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == "mine"


def test_read_missing_key_returns_none(env, tm):
    def root(env):
        txn = tm.begin("alice")
        value = yield from tm.read(txn, "ghost")
        return value

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value is None


def test_concurrent_readers_allowed(env, tm):
    tm.store.write("doc", "shared")
    times = []

    def reader(env, name):
        txn = tm.begin(name)
        value = yield from tm.read(txn, "doc")
        times.append((name, env.now, value))
        yield env.timeout(1.0)
        yield from tm.commit(txn)

    env.process(reader(env, "alice"))
    env.process(reader(env, "bob"))
    env.run()
    assert times == [("alice", 0.0, "shared"), ("bob", 0.0, "shared")]


def test_writer_blocks_reader_until_commit(env, tm):
    tm.store.write("doc", "v0")
    log = []

    def writer(env):
        txn = tm.begin("writer")
        yield from tm.write(txn, "doc", "v1")
        yield env.timeout(4.0)
        yield from tm.commit(txn)

    def reader(env):
        yield env.timeout(1.0)
        txn = tm.begin("reader")
        value = yield from tm.read(txn, "doc")
        log.append((env.now, value))
        yield from tm.commit(txn)

    env.process(writer(env))
    env.process(reader(env))
    env.run()
    assert log == [(4.0, "v1")]  # blocked until the writer committed


def test_abort_discards_writes(env, tm):
    tm.store.write("doc", "original")

    def root(env):
        txn = tm.begin("alice")
        yield from tm.write(txn, "doc", "scrapped")
        tm.abort(txn)
        assert txn.state == ABORTED
        return tm.store.read("doc")

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == "original"
    assert tm.counters["aborted"] == 1


def test_abort_is_idempotent(env, tm):
    txn = tm.begin("alice")
    tm.abort(txn)
    tm.abort(txn)
    assert tm.counters["aborted"] == 1


def test_operations_on_finished_txn_rejected(env, tm):
    def root(env):
        txn = tm.begin("alice")
        yield from tm.commit(txn)
        assert txn.state == COMMITTED
        with pytest.raises(TransactionAborted):
            yield from tm.write(txn, "doc", "late")

    proc = env.process(root(env))
    env.run(proc)


def test_abort_releases_locks(env, tm):
    log = []

    def holder(env):
        txn = tm.begin("alice")
        yield from tm.write(txn, "doc", "x")
        yield env.timeout(1.0)
        tm.abort(txn)

    def waiter(env):
        yield env.timeout(0.5)
        txn = tm.begin("bob")
        yield from tm.write(txn, "doc", "y")
        log.append(env.now)
        yield from tm.commit(txn)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert log == [1.0]
    assert tm.store.read("doc") == "y"


def test_deadlock_detected_and_resolved(env, tm):
    outcomes = {}

    def txn_proc(env, name, first, second, start_delay):
        yield env.timeout(start_delay)
        txn = tm.begin(name)
        try:
            yield from tm.write(txn, first, name)
            yield env.timeout(1.0)
            yield from tm.write(txn, second, name)
            yield from tm.commit(txn)
            outcomes[name] = "committed"
        except TransactionAborted:
            outcomes[name] = "aborted"

    env.process(txn_proc(env, "t1", "A", "B", 0.0))
    env.process(txn_proc(env, "t2", "B", "A", 0.1))
    env.run()
    assert sorted(outcomes.values()) == ["aborted", "committed"]
    assert tm.counters["deadlocks"] == 1


def test_deadlock_victim_leaves_store_clean(env, tm):
    tm.store.write("A", "orig-A")
    tm.store.write("B", "orig-B")

    def txn_proc(env, name, first, second, start_delay):
        yield env.timeout(start_delay)
        txn = tm.begin(name)
        try:
            yield from tm.write(txn, first, name)
            yield env.timeout(1.0)
            yield from tm.write(txn, second, name)
            yield from tm.commit(txn)
        except TransactionAborted:
            pass

    env.process(txn_proc(env, "t1", "A", "B", 0.0))
    env.process(txn_proc(env, "t2", "B", "A", 0.1))
    env.run()
    # The survivor wrote both keys; the victim's writes are nowhere.
    values = {tm.store.read("A"), tm.store.read("B")}
    assert values == {"t1"} or values == {"t2"}


def test_lock_upgrade_shared_to_exclusive(env, tm):
    tm.store.write("doc", "v0")

    def root(env):
        txn = tm.begin("alice")
        value = yield from tm.read(txn, "doc")
        yield from tm.write(txn, "doc", value + "+edit")
        yield from tm.commit(txn)
        return tm.store.read("doc")

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == "v0+edit"


def test_serialisability_of_counter_increments(env, tm):
    """Lost-update prevention: increments through txns all survive."""
    tm.store.write("counter", 0)

    def incrementer(env, name):
        for _ in range(5):
            while True:
                txn = tm.begin(name)
                try:
                    value = yield from tm.read(txn, "counter")
                    yield env.timeout(0.01)
                    yield from tm.write(txn, "counter", value + 1)
                    yield from tm.commit(txn)
                    break
                except TransactionAborted:
                    yield env.timeout(0.005)

    env.process(incrementer(env, "alice"))
    env.process(incrementer(env, "bob"))
    env.run()
    assert tm.store.read("counter") == 10
