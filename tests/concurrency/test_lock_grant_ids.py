"""Grant ids are per-LockTable: replays and parallel experiments in one
process must see identical id sequences."""

from repro.concurrency import EXCLUSIVE, HARD, LockTable
from repro.sim import Environment


def take(table, key, owner):
    granted = []

    def proc(env):
        grant = yield table.acquire(key, owner, EXCLUSIVE)
        granted.append(grant)
        grant.release()

    table.env.process(proc(table.env))
    table.env.run()
    return granted[0]


def test_grant_ids_start_at_one_per_table():
    table = LockTable(Environment(), style=HARD)
    assert take(table, "a", "ann").grant_id == 1
    assert take(table, "b", "bob").grant_id == 2


def test_tables_do_not_share_the_id_sequence():
    first = LockTable(Environment(), style=HARD)
    second = LockTable(Environment(), style=HARD)
    for key in ("a", "b", "c"):
        take(first, key, "ann")
    # A fresh table restarts at 1 regardless of activity elsewhere in
    # the process — the sequence is table state, not module state.
    assert take(second, "z", "zoe").grant_id == 1
