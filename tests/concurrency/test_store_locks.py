"""Tests for the shared store and the four lock styles."""

import pytest

from repro.concurrency import (
    EXCLUSIVE,
    HARD,
    LockTable,
    NOTIFICATION,
    SHARED,
    SOFT,
    SharedStore,
    TICKLE,
)
from repro.errors import ConcurrencyError, LockError
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


# -- SharedStore ------------------------------------------------------------

def test_store_create_and_read():
    store = SharedStore()
    store.create("doc", "hello")
    assert store.read("doc") == "hello"
    assert "doc" in store
    assert store.keys() == ["doc"]


def test_store_create_duplicate_rejected():
    store = SharedStore()
    store.create("doc")
    with pytest.raises(ConcurrencyError):
        store.create("doc")


def test_store_missing_item_raises():
    store = SharedStore()
    with pytest.raises(ConcurrencyError):
        store.item("ghost")


def test_store_ensure_idempotent():
    store = SharedStore()
    a = store.ensure("x", 1)
    b = store.ensure("x", 2)
    assert a is b
    assert store.read("x") == 1


def test_store_write_bumps_version():
    store = SharedStore()
    v1 = store.write("doc", "a", writer="alice", at=1.0)
    v2 = store.write("doc", "b", writer="bob", at=2.0)
    assert (v1, v2) == (1, 2)
    item = store.item("doc")
    assert item.last_writer == "bob"
    assert item.last_write_at == 2.0


def test_store_subscription():
    store = SharedStore()
    seen = []
    store.subscribe(lambda key, value, version, writer:
                    seen.append((key, value, version, writer)))
    store.write("doc", "x", writer="alice")
    assert seen == [("doc", "x", 1, "alice")]
    store.unsubscribe(store._subscribers[0])
    store.write("doc", "y")
    assert len(seen) == 1


def test_store_snapshot():
    store = SharedStore()
    store.write("a", 1)
    store.write("b", 2)
    assert store.snapshot() == {"a": (1, 1), "b": (2, 1)}


# -- hard locks ---------------------------------------------------------------

def test_hard_exclusive_blocks(env):
    table = LockTable(env, style=HARD)
    order = []

    def user(env, name, hold):
        grant = yield table.acquire("doc", name)
        order.append((name, env.now))
        yield env.timeout(hold)
        grant.release()

    env.process(user(env, "alice", 2.0))
    env.process(user(env, "bob", 1.0))
    env.run()
    assert order == [("alice", 0.0), ("bob", 2.0)]
    assert table.counters["waits"] == 1


def test_hard_shared_locks_coexist(env):
    table = LockTable(env, style=HARD)
    granted = []

    def reader(env, name):
        yield table.acquire("doc", name, SHARED)
        granted.append((name, env.now))

    env.process(reader(env, "alice"))
    env.process(reader(env, "bob"))
    env.run()
    assert granted == [("alice", 0.0), ("bob", 0.0)]


def test_hard_shared_blocks_writer(env):
    table = LockTable(env, style=HARD)
    events = []

    def reader(env):
        grant = yield table.acquire("doc", "reader", SHARED)
        events.append(("read", env.now))
        yield env.timeout(3.0)
        grant.release()

    def writer(env):
        yield env.timeout(0.5)
        yield table.acquire("doc", "writer", EXCLUSIVE)
        events.append(("write", env.now))

    env.process(reader(env))
    env.process(writer(env))
    env.run()
    assert events == [("read", 0.0), ("write", 3.0)]


def test_release_unheld_grant_raises(env):
    table = LockTable(env, style=HARD)

    def root(env):
        grant = yield table.acquire("doc", "alice")
        grant.release()
        with pytest.raises(LockError):
            grant.release()

    proc = env.process(root(env))
    env.run(proc)


def test_invalid_mode_and_style(env):
    with pytest.raises(LockError):
        LockTable(env, style="optimistic")
    with pytest.raises(LockError):
        LockTable(env, tickle_grace=-1, style=TICKLE)
    table = LockTable(env)
    with pytest.raises(LockError):
        table.acquire("doc", "alice", mode="update")


def test_same_owner_reentrant_exclusive(env):
    table = LockTable(env, style=HARD)

    def root(env):
        yield table.acquire("doc", "alice", EXCLUSIVE)
        second = table.acquire("doc", "alice", EXCLUSIVE)
        assert second.triggered  # same owner is compatible with itself
        yield second

    proc = env.process(root(env))
    env.run(proc)


def test_cancel_wait(env):
    table = LockTable(env, style=HARD)

    def root(env):
        yield table.acquire("doc", "alice")
        pending = table.acquire("doc", "bob")
        assert not pending.triggered
        assert table.cancel_wait("doc", pending)
        assert table.queue_length("doc") == 0
        assert not table.cancel_wait("doc", pending)

    proc = env.process(root(env))
    env.run(proc)


# -- tickle locks ----------------------------------------------------------------

def test_tickle_takeover_when_holder_idle(env):
    table = LockTable(env, style=TICKLE, tickle_grace=1.0)
    takeovers = []
    table.on_takeover = lambda grant, taker: takeovers.append(
        (grant.owner, taker))

    def idle_holder(env):
        yield table.acquire("doc", "alice")
        # Alice goes idle; never touches the grant again.

    def impatient(env):
        yield env.timeout(2.0)  # past the grace period
        grant = yield table.acquire("doc", "bob")
        return (env.now, grant.owner)

    env.process(idle_holder(env))
    proc = env.process(impatient(env))
    env.run(proc)
    assert proc.value == (2.0, "bob")
    assert takeovers == [("alice", "bob")]
    assert table.counters["takeovers"] == 1


def test_tickle_active_holder_keeps_lock(env):
    table = LockTable(env, style=TICKLE, tickle_grace=1.0)

    def active_holder(env):
        grant = yield table.acquire("doc", "alice")
        for _ in range(5):
            yield env.timeout(0.5)
            grant.touch()
        grant.release()

    def impatient(env):
        yield env.timeout(2.0)
        yield table.acquire("doc", "bob")
        return env.now

    env.process(active_holder(env))
    proc = env.process(impatient(env))
    env.run(proc)
    assert proc.value == 2.5  # waited for the release, no takeover
    assert table.counters["takeovers"] == 0


def test_tickled_holder_grant_marked_revoked(env):
    table = LockTable(env, style=TICKLE, tickle_grace=0.5)
    grants = {}

    def holder(env):
        grants["alice"] = yield table.acquire("doc", "alice")

    def taker(env):
        yield env.timeout(1.0)
        yield table.acquire("doc", "bob")

    env.process(holder(env))
    env.process(taker(env))
    env.run()
    assert grants["alice"].revoked


# -- soft locks ---------------------------------------------------------------

def test_soft_locks_never_block(env):
    table = LockTable(env, style=SOFT)
    times = []

    def user(env, name):
        yield table.acquire("doc", name, EXCLUSIVE)
        times.append((name, env.now))

    env.process(user(env, "alice"))
    env.process(user(env, "bob"))
    env.run()
    assert times == [("alice", 0.0), ("bob", 0.0)]


def test_soft_lock_conflict_flagged(env):
    table = LockTable(env, style=SOFT)
    conflicts = []
    table.on_conflict = lambda grant, other: conflicts.append(
        (grant.owner, other))

    def root(env):
        a = yield table.acquire("doc", "alice", EXCLUSIVE)
        assert not a.conflicting
        b = yield table.acquire("doc", "bob", EXCLUSIVE)
        assert a.conflicting and b.conflicting
        b.release()
        assert not a.conflicting

    proc = env.process(root(env))
    env.run(proc)
    assert ("alice", "bob") in conflicts or ("bob", "alice") in conflicts
    assert table.counters["conflicts"] >= 1


def test_soft_readers_do_not_conflict(env):
    table = LockTable(env, style=SOFT)

    def root(env):
        a = yield table.acquire("doc", "alice", SHARED)
        b = yield table.acquire("doc", "bob", SHARED)
        assert not a.conflicting and not b.conflicting

    proc = env.process(root(env))
    env.run(proc)


# -- notification locks ----------------------------------------------------------

def test_notification_readers_always_admitted(env):
    table = LockTable(env, style=NOTIFICATION)

    def root(env):
        yield table.acquire("doc", "writer", EXCLUSIVE)
        reader = table.acquire("doc", "reader", SHARED)
        assert reader.triggered  # admitted despite the writer

    proc = env.process(root(env))
    env.run(proc)


def test_notification_writers_exclude_writers(env):
    table = LockTable(env, style=NOTIFICATION)
    order = []

    def writer(env, name, hold):
        grant = yield table.acquire("doc", name, EXCLUSIVE)
        order.append((name, env.now))
        yield env.timeout(hold)
        grant.release()

    env.process(writer(env, "w1", 2.0))
    env.process(writer(env, "w2", 1.0))
    env.run()
    assert order == [("w1", 0.0), ("w2", 2.0)]


def test_notification_watchers_notified_of_writes(env):
    table = LockTable(env, style=NOTIFICATION)
    seen = []
    table.watch("doc", lambda key, writer, kind: seen.append(
        (key, writer, kind)))

    def root(env):
        yield table.acquire("doc", "writer", EXCLUSIVE)
        yield table.acquire("doc", "reader", SHARED)
        notified = table.notify_write("doc", "writer")
        assert notified == 2  # the watcher and the shared reader

    proc = env.process(root(env))
    env.run(proc)
    assert seen == [("doc", "writer", "write")]
    assert table.counters["notifications"] == 2
