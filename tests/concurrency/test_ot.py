"""Tests for operation transformation: TP1, cores and networked sites."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.concurrency import (
    Delete,
    Insert,
    Noop,
    OTClientCore,
    OTClientSite,
    OTServerCore,
    OTServerSite,
    apply_op,
    apply_ops,
    xform,
    xform_sequences,
)
from repro.errors import ConcurrencyError
from repro.net import Network, lan
from repro.sim import Environment


# -- primitives ----------------------------------------------------------------

def test_insert_apply():
    assert apply_op("abc", Insert(1, "X")) == "aXbc"
    assert apply_op("", Insert(0, "X")) == "X"


def test_delete_apply():
    assert apply_op("abc", Delete(1)) == "ac"


def test_noop_apply():
    assert apply_op("abc", Noop()) == "abc"


def test_apply_validation():
    with pytest.raises(ConcurrencyError):
        apply_op("ab", Insert(5, "X"))
    with pytest.raises(ConcurrencyError):
        apply_op("ab", Delete(2))
    with pytest.raises(ConcurrencyError):
        Insert(-1, "X")
    with pytest.raises(ConcurrencyError):
        Insert(0, "XY")
    with pytest.raises(ConcurrencyError):
        Delete(-1)
    with pytest.raises(ConcurrencyError):
        apply_op("ab", "not-an-op")


def test_op_equality_and_repr():
    assert Insert(1, "a") == Insert(1, "a")
    assert Insert(1, "a") != Insert(2, "a")
    assert Delete(3) == Delete(3)
    assert Noop() == Noop()
    assert "Ins" in repr(Insert(0, "x"))
    assert "Del" in repr(Delete(0))
    assert "Noop" in repr(Noop())


def test_xform_insert_insert_tiebreak():
    a, b = Insert(2, "A"), Insert(2, "B")
    assert xform(a, b, a_wins=True) == Insert(2, "A")
    assert xform(a, b, a_wins=False) == Insert(3, "A")


def test_xform_delete_delete_same_position_cancels():
    assert xform(Delete(2), Delete(2), True) == Noop()


def ops_strategy(doc_len, max_ops=4):
    """Random op sequences valid against a document of ``doc_len``."""
    def build(draw):
        length = doc_len
        count = draw(st.integers(0, max_ops))
        ops = []
        for _ in range(count):
            if length == 0 or draw(st.booleans()):
                pos = draw(st.integers(0, length))
                ops.append(Insert(pos, draw(st.sampled_from("xyzw"))))
                length += 1
            else:
                ops.append(Delete(draw(st.integers(0, length - 1))))
                length -= 1
        return ops
    return st.composite(lambda draw: build(draw))()


BASE = "abcdef"


@settings(max_examples=200)
@given(ops_strategy(len(BASE)), ops_strategy(len(BASE)))
def test_tp1_convergence_property(ops_a, ops_b):
    """TP1: apply(A + B') == apply(B + A') for any concurrent sequences."""
    a_prime, b_prime = xform_sequences(ops_a, ops_b, a_wins=True)
    left = apply_ops(apply_ops(BASE, ops_a), b_prime)
    right = apply_ops(apply_ops(BASE, ops_b), a_prime)
    assert left == right


def test_tp1_exhaustive_single_ops():
    """Every pair of single ops on a short doc satisfies TP1 exactly."""
    base = "abcd"
    singles = ([Insert(p, "X") for p in range(len(base) + 1)]
               + [Delete(p) for p in range(len(base))])
    for a in singles:
        for b in singles:
            for a_wins in (True, False):
                a1 = xform(a, b, a_wins)
                b1 = xform(b, a, not a_wins)
                left = apply_op(apply_op(base, a), b1)
                right = apply_op(apply_op(base, b), a1)
                assert left == right, (a, b, a_wins)


# -- protocol cores -----------------------------------------------------------

def test_server_core_sequences_ops():
    server = OTServerCore("ab")
    rev, ops = server.receive("site1", 0, [Insert(0, "X")])
    assert rev == 1
    assert server.text == "Xab"


def test_server_core_bad_revision():
    server = OTServerCore()
    with pytest.raises(ConcurrencyError):
        server.receive("s", 5, [])


def test_server_transforms_concurrent_ops():
    server = OTServerCore("abc")
    server.receive("s1", 0, [Insert(0, "X")])      # Xabc
    rev, transformed = server.receive("s2", 0, [Delete(2)])  # meant 'c'
    assert server.text == "Xabc".replace("c", "")
    assert transformed == [Delete(3)]


def test_client_core_immediate_local_application():
    client = OTClientCore("site1", "ab")
    send = client.local_edit([Insert(2, "c")])
    assert client.text == "abc"  # applied before any round-trip
    assert send == (0, [Insert(2, "c")])


def test_client_core_one_batch_in_flight():
    client = OTClientCore("site1")
    first = client.local_edit([Insert(0, "a")])
    second = client.local_edit([Insert(1, "b")])
    assert first is not None
    assert second is None  # queued behind the in-flight batch
    next_send = client.server_ack(1)
    assert next_send == (1, [Insert(1, "b")])


def test_client_core_ack_without_inflight_rejected():
    client = OTClientCore("site1")
    with pytest.raises(ConcurrencyError):
        client.server_ack(1)


def test_client_core_remote_transformed_against_pending():
    client = OTClientCore("siteB", "ab")
    client.local_edit([Insert(2, "c")])  # "abc", in flight
    applied = client.server_remote(1, "siteA", [Insert(0, "X")])
    assert client.text == "Xabc"
    assert applied == [Insert(0, "X")]


def test_core_roundtrip_two_sites_converge():
    """Drive the full protocol by hand: concurrent edits converge."""
    server = OTServerCore("base")
    alice = OTClientCore("alice", "base")
    bob = OTClientCore("bob", "base")

    send_a = alice.local_edit([Insert(0, "A")])
    send_b = bob.local_edit([Delete(3)])
    # Server receives alice first.
    rev_a, ops_a = server.receive("alice", *_unpack(send_a))
    rev_b, ops_b = server.receive("bob", *_unpack(send_b))
    # Deliver acks and remote broadcasts.
    alice.server_ack(rev_a)
    alice.server_remote(rev_b, "bob", ops_b)
    bob.server_remote(rev_a, "alice", ops_a)
    bob.server_ack(rev_b)
    assert alice.text == bob.text == server.text


def _unpack(send):
    base_rev, ops = send
    return base_rev, ops


# -- networked sites -----------------------------------------------------------

@pytest.fixture
def env():
    return Environment()


def make_ot(env, sites=3, initial=""):
    topo = lan(env, hosts=sites + 1)
    net = Network(env, topo)
    server = OTServerSite(net.host("host0"), initial=initial)
    clients = []
    for i in range(1, sites + 1):
        name = "host{}".format(i)
        client = OTClientSite(net.host(name), "host0", initial=initial)
        server.register(name)
        clients.append(client)
    return server, clients


def test_networked_local_edit_is_instant(env):
    server, (alice, bob, carol) = make_ot(env, initial="doc")
    alice.insert(3, "!")
    assert alice.text == "doc!"  # before any simulation time passes
    env.run()
    assert server.core.text == "doc!"
    assert bob.text == "doc!"
    assert carol.text == "doc!"


def test_networked_concurrent_edits_converge(env):
    server, (alice, bob, carol) = make_ot(env, initial="shared text")

    def alice_edits(env):
        alice.insert(0, "A: ")
        yield env.timeout(0.001)
        alice.delete(len(alice.text) - 1)

    def bob_edits(env):
        bob.insert(6, "-B-")
        yield env.timeout(0.002)
        bob.insert(0, ">")

    env.process(alice_edits(env))
    env.process(bob_edits(env))
    env.run()
    assert alice.text == bob.text == carol.text == server.core.text


def test_networked_many_random_edits_converge(env):
    from repro.sim import RandomStreams

    server, clients = make_ot(env, sites=4, initial="0123456789")
    rng = RandomStreams(7).stream("edits")

    def editor(env, client, count):
        for _ in range(count):
            yield env.timeout(rng.uniform(0.0001, 0.01))
            text_len = len(client.text)
            if text_len == 0 or rng.random() < 0.6:
                client.insert(rng.randrange(text_len + 1), "x")
            else:
                client.delete(rng.randrange(text_len))

    for client in clients:
        env.process(editor(env, client, 20))
    env.run()
    texts = [client.text for client in clients] + [server.core.text]
    assert all(text == texts[0] for text in texts)


def test_networked_applied_log_kinds(env):
    server, (alice, bob, carol) = make_ot(env, initial="")
    alice.insert(0, "hi")
    env.run()
    assert [kind for _, kind in alice.applied_log] == ["local"]
    assert [kind for _, kind in bob.applied_log] == ["remote"]


def test_remote_callback_invoked(env):
    applied = []
    topo = lan(env, hosts=3)
    net = Network(env, topo)
    server = OTServerSite(net.host("host0"))
    alice = OTClientSite(net.host("host1"), "host0")
    bob = OTClientSite(net.host("host2"), "host0",
                       on_remote=lambda ops: applied.append(ops))
    server.register("host1")
    server.register("host2")
    alice.insert(0, "Z")
    env.run()
    assert applied == [[Insert(0, "Z")]]
