"""Tests for the shared store's accountability history (§2.3)."""

import pytest

from repro.concurrency import SharedStore
from repro.errors import ConcurrencyError


def test_history_disabled_by_default():
    store = SharedStore()
    store.write("k", 1)
    with pytest.raises(ConcurrencyError):
        store.history()


def test_history_records_every_write():
    store = SharedStore(keep_history=True)
    store.write("strip/BA100", "FL340", writer="north", at=1.0)
    store.write("strip/BA100", "FL200", writer="north", at=2.0)
    store.write("strip/BA200", "FL310", writer="south", at=3.0)
    entries = store.history()
    assert len(entries) == 3
    assert entries[0] == (1.0, "strip/BA100", "FL340", 1, "north")
    assert entries[1][3] == 2  # version advanced


def test_history_filters_by_key_and_writer():
    store = SharedStore(keep_history=True)
    store.write("a", 1, writer="alice", at=1.0)
    store.write("b", 2, writer="bob", at=2.0)
    store.write("a", 3, writer="bob", at=3.0)
    assert len(store.history(key="a")) == 2
    assert len(store.history(writer="bob")) == 2
    assert store.history(key="a", writer="bob") == [
        (3.0, "a", 3, 2, "bob")]


def test_history_supports_accountability_question():
    """'Who moved this strip, and when?' — answerable at a glance."""
    store = SharedStore(keep_history=True)
    store.write("board/BA103", "north-rack", writer="north", at=10.0)
    store.write("board/BA103", "south-rack", writer="south", at=25.0)
    moves = store.history(key="board/BA103")
    last_at, _, last_rack, _, last_by = moves[-1]
    assert (last_by, last_rack, last_at) == ("south", "south-rack", 25.0)
