"""Tests for ReliableChannel retry backoff and its counters."""

import pytest

from repro.errors import TransportError
from repro.faults.policies import RetryPolicy, fixed_retry
from repro.net import Network, ReliableChannel, Topology
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


@pytest.fixture(autouse=True)
def _scoped_metrics():
    with use_metrics(MetricsRegistry()):
        yield


def make_pair(env, **kwargs):
    topo = Topology(env)
    link = topo.add_link("a", "b", latency=0.001,
                         rng=RandomStreams(3).stream("link"))
    net = Network(env, topo)
    sender = ReliableChannel(net.host("a"), **kwargs)
    ReliableChannel(net.host("b"), port=kwargs.get("port", 1))
    return sender, link


def give_up_time(env, sender, link):
    """Drive one send into the void; returns the failure time."""
    link.set_up(False)
    failed_at = []

    def root(env):
        try:
            yield sender.send("b", payload="x")
        except TransportError:
            failed_at.append(env.now)

    env.run(env.process(root(env)))
    assert failed_at
    return failed_at[0]


def test_default_matches_legacy_fixed_interval(env):
    # No backoff argument: timing identical to the historical fixed
    # ack_timeout retransmission loop.
    sender, link = make_pair(env, ack_timeout=0.1, max_retries=3)
    # 4 attempts, each waiting exactly ack_timeout.
    assert give_up_time(env, sender, link) == pytest.approx(0.4)


def test_explicit_fixed_retry_identical_to_default(env):
    sender, link = make_pair(env, ack_timeout=0.1, max_retries=3,
                             backoff=fixed_retry(0.1, 3))
    assert give_up_time(env, sender, link) == pytest.approx(0.4)


def test_exponential_backoff_changes_timing(env):
    sender, link = make_pair(
        env, backoff=RetryPolicy(base=0.1, multiplier=2.0,
                                 max_retries=3))
    # Waits 0.1 + 0.2 + 0.4 + 0.8 before giving up.
    assert give_up_time(env, sender, link) == pytest.approx(1.5)
    assert sender.max_retries == 3


def test_backoff_policy_overrides_max_retries(env):
    sender, _ = make_pair(env, max_retries=9,
                          backoff=fixed_retry(0.1, 2))
    assert sender.max_retries == 2


def test_retry_and_gave_up_counters(env):
    with use_metrics(MetricsRegistry()) as metrics:
        sender, link = make_pair(env, ack_timeout=0.05, max_retries=2)
        give_up_time(env, sender, link)
        assert sender.retries == 2
        assert sender.gave_up == 1
        assert metrics.counter_total("chan.retries") == 2
        assert metrics.counter_total("chan.gave_up") == 1
        # Labels carry the sending node and destination.
        assert metrics.counters("chan.retries") \
            == {"chan.retries{dst=b,node=a}": 2}


def test_no_counters_on_clean_delivery(env):
    with use_metrics(MetricsRegistry()) as metrics:
        sender, _ = make_pair(env)

        def root(env):
            yield sender.send("b", payload="ok")

        env.run(env.process(root(env)))
        assert sender.retries == 0
        assert sender.gave_up == 0
        assert metrics.counter_total("chan.retries") == 0
        assert metrics.counter_total("chan.gave_up") == 0


def test_jittered_backoff_is_seed_deterministic():
    def failure_time(seed):
        env = Environment()
        topo = Topology(env)
        link = topo.add_link("a", "b", latency=0.001,
                             rng=RandomStreams(3).stream("link"))
        net = Network(env, topo)
        sender = ReliableChannel(
            net.host("a"),
            backoff=RetryPolicy(base=0.1, multiplier=2.0, jitter=0.3,
                                max_retries=2,
                                rng=RandomStreams(seed).stream("bk")))
        ReliableChannel(net.host("b"))
        return give_up_time(env, sender, link)

    assert failure_time(5) == failure_time(5)
    assert failure_time(5) != failure_time(6)
