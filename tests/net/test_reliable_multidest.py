"""Regression tests: reliable delivery to multiple destinations.

Guards against two real bugs found during development: a channel-global
sequence counter left per-receiver gaps that stalled in-order delivery,
and a first-arrival baseline dropped an earlier message whose first copy
was lost.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import Network, ReliableChannel, Topology
from repro.sim import Environment, RandomStreams


def make_star(env, receivers, loss, seed):
    streams = RandomStreams(seed)
    topo = Topology(env)
    topo.add_link("sender", "hub", latency=0.002, loss=loss,
                  rng=streams.stream("up"))
    for i in range(receivers):
        topo.add_link("r{}".format(i), "hub", latency=0.002, loss=loss,
                      rng=streams.stream("down-{}".format(i)))
    return Network(env, topo)


def test_interleaved_sends_to_two_destinations():
    env = Environment()
    net = make_star(env, receivers=2, loss=0.0, seed=1)
    sender = ReliableChannel(net.host("sender"))
    receivers = [ReliableChannel(net.host("r{}".format(i)))
                 for i in range(2)]
    got = {0: [], 1: []}

    def consumer(env, index):
        for _ in range(3):
            packet = yield receivers[index].receive()
            got[index].append(packet.payload)

    procs = [env.process(consumer(env, i)) for i in range(2)]
    # Interleave: r0, r1, r0, r1, ... (the global-counter trap).
    for i in range(3):
        sender.send("r0", payload="r0-{}".format(i))
        sender.send("r1", payload="r1-{}".format(i))
    for proc in procs:
        env.run(proc)
    assert got[0] == ["r0-0", "r0-1", "r0-2"]
    assert got[1] == ["r1-0", "r1-1", "r1-2"]


def test_lost_first_message_not_skipped():
    """seq 2 arriving before seq 1's retransmit must be held back."""
    env = Environment()
    topo = Topology(env)
    link = topo.add_link("a", "b", latency=0.002)
    net = Network(env, topo)
    sender = ReliableChannel(net.host("a"), ack_timeout=0.1,
                             max_retries=50)
    receiver = ReliableChannel(net.host("b"), ack_timeout=0.1,
                               max_retries=50)
    got = []

    def consumer(env):
        for _ in range(2):
            packet = yield receiver.receive()
            got.append(packet.payload)

    proc = env.process(consumer(env))
    # Drop exactly the first copy of message 1: send it while the link
    # drops everything, then restore before its retransmission.
    link.loss = 0.999999
    sender.send("b", payload="first").defuse()

    def heal(env):
        yield env.timeout(0.05)
        link.loss = 0.0
        sender.send("b", payload="second").defuse()

    env.process(heal(env))
    env.run(proc)
    assert got == ["first", "second"]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.0, 0.4),
       st.integers(2, 4))
def test_multidest_exactly_once_in_order_under_loss(seed, loss,
                                                    receivers):
    env = Environment()
    net = make_star(env, receivers=receivers, loss=loss, seed=seed)
    sender = ReliableChannel(net.host("sender"), ack_timeout=0.03,
                             max_retries=300)
    channels = {i: ReliableChannel(net.host("r{}".format(i)),
                                   ack_timeout=0.03, max_retries=300)
                for i in range(receivers)}
    got = {i: [] for i in range(receivers)}

    def consumer(env, index):
        for _ in range(5):
            packet = yield channels[index].receive()
            got[index].append(packet.payload)

    procs = [env.process(consumer(env, i)) for i in range(receivers)]
    for i in range(5):
        for r in range(receivers):
            sender.send("r{}".format(r),
                        payload=(r, i), size=50).defuse()
    for proc in procs:
        env.run(proc)
    for r in range(receivers):
        assert got[r] == [(r, i) for i in range(5)]
