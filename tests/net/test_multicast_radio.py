"""Tests for multicast delivery and radio/mobile links."""

import pytest

from repro.errors import GroupError, NetworkError
from repro.net import (
    ConnectivityLevel,
    ConnectivitySchedule,
    MulticastService,
    Network,
    Topology,
    attach_mobile,
    periodic_trace,
    star,
    wan,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_star_net(env, leaves=4):
    topo = star(env, leaves=leaves)
    net = Network(env, topo)
    hosts = [net.host("leaf{}".format(i)) for i in range(leaves)]
    return net, hosts


def test_group_membership(env):
    net, hosts = make_star_net(env)
    service = MulticastService(net)
    group = service.create_group("g")
    group.join("leaf0")
    group.join("leaf1")
    assert "leaf0" in group
    assert len(group) == 2
    group.leave("leaf0")
    assert "leaf0" not in group


def test_join_requires_attached_host(env):
    net, hosts = make_star_net(env)
    service = MulticastService(net)
    group = service.create_group("g")
    with pytest.raises(GroupError):
        group.join("hub")  # node exists but no host attached


def test_create_group_idempotent(env):
    net, _ = make_star_net(env)
    service = MulticastService(net)
    assert service.create_group("g") is service.create_group("g")


def test_send_unknown_group(env):
    net, _ = make_star_net(env)
    service = MulticastService(net)
    with pytest.raises(GroupError):
        service.send("ghost", "leaf0")


def test_multicast_reaches_all_members(env):
    net, hosts = make_star_net(env, leaves=4)
    service = MulticastService(net)
    group = service.create_group("g")
    for i in range(4):
        group.join("leaf{}".format(i))
    got = []
    for host in hosts[1:]:
        host.on_packet(service.port,
                       lambda packet, name=host.name:
                       got.append((name, packet.payload)))
    service.send("g", "leaf0", payload="video-frame", size=100)
    env.run()
    assert sorted(got) == [("leaf1", "video-frame"),
                           ("leaf2", "video-frame"),
                           ("leaf3", "video-frame")]


def test_multicast_no_loopback_by_default(env):
    net, hosts = make_star_net(env)
    service = MulticastService(net)
    group = service.create_group("g")
    group.join("leaf0")
    group.join("leaf1")
    got = []
    hosts[0].on_packet(service.port, lambda p: got.append("self"))
    hosts[1].on_packet(service.port, lambda p: got.append("peer"))
    service.send("g", "leaf0", payload="x")
    env.run()
    assert got == ["peer"]


def test_multicast_loopback(env):
    net, hosts = make_star_net(env)
    service = MulticastService(net)
    group = service.create_group("g")
    group.join("leaf0")
    group.join("leaf1")
    got = []
    hosts[0].on_packet(service.port, lambda p: got.append("self"))
    hosts[1].on_packet(service.port, lambda p: got.append("peer"))
    service.send("g", "leaf0", payload="x", loopback=True)
    env.run()
    assert sorted(got) == ["peer", "self"]


def test_multicast_tree_cheaper_than_unicast_fanout(env):
    """E9's core shape: shared tree links carry the payload once."""
    sites = 4
    env1 = Environment()
    topo1 = wan(env1, sites=sites, hosts_per_site=1)
    net1 = Network(env1, topo1)
    service1 = MulticastService(net1)
    group1 = service1.create_group("g")
    members = ["site{}.host0".format(i) for i in range(sites)]
    for m in members:
        net1.host(m)
        group1.join(m)
    service1.send("g", members[0], size=1000)
    env1.run()
    multicast_bytes = net1.total_link_bytes()

    env2 = Environment()
    topo2 = wan(env2, sites=sites, hosts_per_site=1)
    net2 = Network(env2, topo2)
    service2 = MulticastService(net2)
    group2 = service2.create_group("g")
    for m in members:
        net2.host(m)
        group2.join(m)
    service2.unicast_fanout("g", members[0], size=1000)
    env2.run()
    unicast_bytes = net2.total_link_bytes()

    # Unicast re-sends over the sender's access link per member.
    assert multicast_bytes < unicast_bytes


def test_radio_link_levels(env):
    topo = Topology(env)
    topo.add_node("base")
    link = attach_mobile(topo, "mobile", "base",
                         level=ConnectivityLevel.FULL)
    assert link.up
    link.set_level(ConnectivityLevel.DISCONNECTED)
    assert not link.up
    link.set_level(ConnectivityLevel.PARTIAL)
    assert link.up
    assert link.bandwidth < 1e6  # radio is slow


def test_radio_level_listeners(env):
    topo = Topology(env)
    link = attach_mobile(topo, "m", "b")
    seen = []
    link.on_level_change(seen.append)
    link.set_level(ConnectivityLevel.PARTIAL)
    link.set_level(ConnectivityLevel.PARTIAL)  # no-op, no duplicate event
    assert seen == [ConnectivityLevel.PARTIAL]


def test_attach_mobile_validation(env):
    topo = Topology(env)
    with pytest.raises(NetworkError):
        attach_mobile(topo, "x", "x")
    attach_mobile(topo, "m", "b")
    with pytest.raises(NetworkError):
        attach_mobile(topo, "m", "b")


def test_connectivity_schedule_replays_trace(env):
    topo = Topology(env)
    link = attach_mobile(topo, "m", "b", level=ConnectivityLevel.FULL)
    trace = [(1.0, ConnectivityLevel.DISCONNECTED),
             (2.0, ConnectivityLevel.PARTIAL)]
    ConnectivitySchedule(env, link, trace)
    env.run(until=0.5)
    assert link.level is ConnectivityLevel.FULL
    env.run(until=1.5)
    assert link.level is ConnectivityLevel.DISCONNECTED
    env.run(until=2.5)
    assert link.level is ConnectivityLevel.PARTIAL


def test_connectivity_schedule_rejects_unordered(env):
    topo = Topology(env)
    link = attach_mobile(topo, "m", "b")
    with pytest.raises(NetworkError):
        ConnectivitySchedule(env, link, [
            (2.0, ConnectivityLevel.FULL),
            (1.0, ConnectivityLevel.PARTIAL)])


def test_periodic_trace_shape():
    trace = periodic_trace(10.0, 5.0, total=30.0)
    assert trace[0] == (0.0, ConnectivityLevel.PARTIAL)
    assert trace[1] == (10.0, ConnectivityLevel.DISCONNECTED)
    assert trace[2] == (15.0, ConnectivityLevel.PARTIAL)
    assert all(at < 30.0 for at, _ in trace)


def test_periodic_trace_validation():
    with pytest.raises(NetworkError):
        periodic_trace(0, 5, total=10)


def test_routing_follows_connectivity(env):
    topo = Topology(env)
    topo.add_link("base", "server", latency=0.001)
    link = attach_mobile(topo, "mobile", "base",
                         level=ConnectivityLevel.FULL)
    net = Network(env, topo)
    mobile, server = net.host("mobile"), net.host("server")
    got = []
    server.on_packet(0, lambda p: got.append(p.payload))
    mobile.send("server", payload="while-connected")
    env.run()
    assert got == ["while-connected"]
    link.set_level(ConnectivityLevel.DISCONNECTED)
    mobile.send("server", payload="while-disconnected")
    env.run()
    assert got == ["while-connected"]
    assert net.counters["dropped"] == 1
