"""Tests for topologies, links and routing."""

import pytest

from repro.errors import NetworkError, RoutingError
from repro.net import Topology, dumbbell, lan, line, star, wan
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_add_nodes_and_links(env):
    topo = Topology(env)
    topo.add_link("a", "b", latency=0.01)
    assert set(topo.nodes) == {"a", "b"}
    assert topo.link_between("a", "b").latency == 0.01


def test_add_node_idempotent(env):
    topo = Topology(env)
    topo.add_node("a")
    topo.add_node("a")
    assert topo.nodes == ["a"]


def test_self_link_rejected(env):
    topo = Topology(env)
    with pytest.raises(NetworkError):
        topo.add_link("a", "a")


def test_duplicate_link_rejected(env):
    topo = Topology(env)
    topo.add_link("a", "b")
    with pytest.raises(NetworkError):
        topo.add_link("b", "a")


def test_missing_link_raises(env):
    topo = Topology(env)
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(NetworkError):
        topo.link_between("a", "b")


def test_neighbours(env):
    topo = Topology(env)
    topo.add_link("a", "b")
    topo.add_link("a", "c")
    assert sorted(topo.neighbours("a")) == ["b", "c"]
    with pytest.raises(NetworkError):
        topo.neighbours("zzz")


def test_links_listed_once(env):
    topo = Topology(env)
    topo.add_link("a", "b")
    topo.add_link("b", "c")
    assert len(topo.links()) == 2


def test_path_direct(env):
    topo = Topology(env)
    link = topo.add_link("a", "b")
    assert topo.path("a", "b") == [link]


def test_path_to_self_is_empty(env):
    topo = Topology(env)
    topo.add_node("a")
    assert topo.path("a", "a") == []


def test_path_multi_hop(env):
    topo = line(env, 4)
    path = topo.path("n0", "n3")
    assert len(path) == 3
    assert topo.hops("n0", "n3") == 3


def test_path_prefers_lower_latency(env):
    topo = Topology(env)
    topo.add_link("a", "b", latency=0.100)
    topo.add_link("a", "c", latency=0.001)
    topo.add_link("c", "b", latency=0.001)
    path = topo.path("a", "b")
    assert len(path) == 2  # via c, not the direct slow link


def test_no_route_raises(env):
    topo = Topology(env)
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(RoutingError):
        topo.path("a", "b")


def test_unknown_endpoint_raises(env):
    topo = Topology(env)
    topo.add_node("a")
    with pytest.raises(RoutingError):
        topo.path("a", "ghost")


def test_down_link_excluded_from_routes(env):
    topo = Topology(env)
    direct = topo.add_link("a", "b", latency=0.001)
    topo.add_link("a", "c", latency=0.010)
    topo.add_link("c", "b", latency=0.010)
    assert topo.path("a", "b") == [direct]
    direct.set_up(False)
    topo.invalidate_routes()
    assert len(topo.path("a", "b")) == 2


def test_path_latency(env):
    topo = line(env, 3, latency=0.005)
    assert abs(topo.path_latency("n0", "n2") - 0.010) < 1e-12


def test_lan_builder(env):
    topo = lan(env, hosts=4)
    assert len(topo.nodes) == 5
    assert topo.hops("host0", "host3") == 2


def test_lan_requires_hosts(env):
    with pytest.raises(NetworkError):
        lan(env, hosts=0)


def test_wan_builder(env):
    topo = wan(env, sites=3, hosts_per_site=2)
    assert "site0.host0" in topo.nodes
    assert "site2.router" in topo.nodes
    # Host to host across sites: lan + wan + lan = 3 hops.
    assert topo.hops("site0.host0", "site2.host1") == 3


def test_wan_requires_sites(env):
    with pytest.raises(NetworkError):
        wan(env, sites=0)


def test_star_builder(env):
    topo = star(env, leaves=5)
    assert topo.hops("leaf0", "leaf4") == 2


def test_dumbbell_builder(env):
    topo = dumbbell(env, left=2, right=2)
    assert topo.hops("left0", "right1") == 3
    bottleneck = topo.link_between("routerL", "routerR")
    assert bottleneck.bandwidth == 1e6


def test_line_requires_two_nodes(env):
    with pytest.raises(NetworkError):
        line(env, 1)


def test_link_validation(env):
    topo = Topology(env)
    with pytest.raises(NetworkError):
        topo.add_link("a", "b", latency=-1)
    with pytest.raises(NetworkError):
        topo.add_link("a", "c", bandwidth=0)
    with pytest.raises(NetworkError):
        topo.add_link("a", "d", loss=1.5)
    with pytest.raises(NetworkError):
        topo.add_link("a", "e", jitter=-0.1)


def test_link_other_end(env):
    topo = Topology(env)
    link = topo.add_link("a", "b")
    assert link.other_end("a") == "b"
    assert link.other_end("b") == "a"
    with pytest.raises(NetworkError):
        link.other_end("c")


def test_link_delays(env):
    topo = Topology(env)
    link = topo.add_link("a", "b", latency=0.01, bandwidth=8000)
    assert link.transmission_delay(1000) == 1.0  # 8000 bits at 8000 b/s
    assert link.propagation_delay() == 0.01


def test_link_jitter_bounds(env):
    topo = Topology(env)
    link = topo.add_link("a", "b", latency=0.01, jitter=0.005)
    for _ in range(100):
        delay = link.propagation_delay()
        assert 0.01 <= delay <= 0.015


def test_link_loss_draw(env):
    topo = Topology(env)
    link = topo.add_link("a", "b", loss=0.0)
    assert not link.drops_packet()
    link.set_up(False)
    assert link.drops_packet()
