"""Topology route/link caching: hits, invalidation, fault schedules."""

import pytest

from repro.errors import RoutingError
from repro.faults import FaultInjector, FaultSchedule
from repro.net.network import Network
from repro.net.topology import Topology, line, wan
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim import Environment


@pytest.fixture(autouse=True)
def fresh_metrics():
    # The fault injector records gauges against the process default; give
    # each test its own registry so sim clocks never appear to rewind.
    with use_metrics(MetricsRegistry()):
        yield


@pytest.fixture
def env():
    return Environment()


def test_path_is_served_from_cache(env):
    topo = line(env, length=4)
    first = topo.path("n0", "n3")
    assert [link.label for link in first] == \
        ["n0<->n1", "n1<->n2", "n2<->n3"]
    # Cache hit: the very same list object, no re-walk.
    assert topo.path("n0", "n3") is first


def test_path_cache_invalidated_by_add_link(env):
    topo = line(env, length=3)
    old = topo.path("n0", "n2")
    assert len(old) == 2
    topo.add_link("n0", "n2", latency=0.0001)
    new = topo.path("n0", "n2")
    assert new is not old
    assert len(new) == 1 and new[0].label == "n0<->n2"


def test_path_cache_invalidated_by_invalidate_routes(env):
    topo = line(env, length=3)
    old = topo.path("n0", "n2")
    topo.invalidate_routes()
    # Unchanged link state: the state-epoch memo serves the same
    # materialised route (a flap that healed costs a dict hit, not a
    # full Dijkstra rebuild).
    assert topo.path("n0", "n2") is old
    # A genuine state change keys a different epoch and re-walks.
    topo.link_between("n0", "n1").latency *= 2
    topo.invalidate_routes()
    rebuilt = topo.path("n0", "n2")
    assert rebuilt is not old
    assert [link.label for link in rebuilt] == [l.label for l in old]
    # Healing back to the original state revives the first epoch's
    # tables — and the very same route object.
    topo.link_between("n0", "n1").latency /= 2
    topo.invalidate_routes()
    assert topo.path("n0", "n2") is old


def test_no_route_is_cached_and_still_raises(env):
    topo = Topology(env)
    topo.add_node("a")
    topo.add_node("b")
    for _ in range(2):  # second raise comes from the cached verdict
        with pytest.raises(RoutingError):
            topo.path("a", "b")
    topo.add_link("a", "b")
    assert len(topo.path("a", "b")) == 1


def test_same_node_path_is_empty_and_cached(env):
    topo = line(env, length=2)
    assert topo.path("n0", "n0") == []
    assert topo.path("n0", "n0") is topo.path("n0", "n0")


def test_unknown_endpoint_raises(env):
    topo = line(env, length=2)
    with pytest.raises(RoutingError):
        topo.path("n0", "nope")


def test_links_cached_until_add_link(env):
    topo = line(env, length=4)
    first = topo.links()
    assert topo.links() is first
    assert len(first) == 3
    topo.add_link("n0", "n3")
    second = topo.links()
    assert second is not first
    assert len(second) == 4


def test_total_link_bytes_reads_cached_links(env):
    topo = line(env, length=3)
    network = Network(env, topo)
    for link in topo.links():
        link.stats.bytes += 100
    assert network.total_link_bytes() == 200


def test_link_down_schedule_reroutes_and_restores(env):
    topo = wan(env, sites=3, hosts_per_site=1, site_latency=0.004)
    network = Network(env, topo)
    direct = topo.link_between("site0.router", "site1.router")
    assert direct in topo.path("site0.host0", "site1.host0")
    schedule = (FaultSchedule()
                .link_down(0.010, "site0.router", "site1.router")
                .link_up(0.020, "site0.router", "site1.router"))
    FaultInjector(env, network, schedule)
    env.run(until=0.015)
    detour = topo.path("site0.host0", "site1.host0")
    assert direct not in detour
    assert topo.link_between("site0.router", "site2.router") in detour
    env.run(until=0.025)
    assert direct in topo.path("site0.host0", "site1.host0")


def test_partition_schedule_invalidates_cached_routes(env):
    topo = wan(env, sites=2, hosts_per_site=1, site_latency=0.004)
    network = Network(env, topo)
    site0 = ["site0.router", "site0.host0"]
    rest = [node for node in topo.nodes if node not in site0]
    assert topo.path("site0.host0", "site1.host0")  # warm the cache
    schedule = (FaultSchedule()
                .partition(0.010, [site0, rest], heal_at=0.020))
    FaultInjector(env, network, schedule)
    env.run(until=0.015)
    for _ in range(2):  # the unreachable verdict is itself cached
        with pytest.raises(RoutingError):
            topo.path("site0.host0", "site1.host0")
    env.run(until=0.025)
    assert len(topo.path("site0.host0", "site1.host0")) == 3
