"""Tests for pending-operation accounting on channels and RPC.

The liveness contract: every send/call started eventually resolves —
succeeds or fails cleanly — and ``inflight()`` returns to zero.  The
fuzzer's liveness oracle reads exactly these counters.
"""

import pytest

from repro.net import Network, ReliableChannel, RpcEndpoint, Topology
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


def make_net(env, loss=0.0):
    topo = Topology(env)
    topo.add_link("a", "b", latency=0.005, loss=loss,
                  rng=RandomStreams(42).stream("link"))
    net = Network(env, topo)
    return net, net.host("a"), net.host("b")


def test_channel_inflight_rises_and_drains(env):
    net, a, b = make_net(env)
    sender = ReliableChannel(a)
    receiver = ReliableChannel(b)
    observed = []

    def root(env):
        done = sender.send("b", payload="x", size=50)
        observed.append(sender.inflight())
        yield done
        observed.append(sender.inflight())

    env.run(env.process(root(env)))
    # send() only starts the process; the +1 lands when it runs.
    env.run()
    assert observed == [0, 0] or observed == [1, 0]
    assert sender.inflight() == 0
    assert receiver.inflight() == 0


def test_channel_inflight_nonzero_while_awaiting_ack(env):
    net, a, b = make_net(env)
    sender = ReliableChannel(a)
    ReliableChannel(b)
    sender.send("b", payload="x", size=50)
    env.run(until=0.001)  # data packet still in flight, no ack yet
    assert sender.inflight() == 1
    env.run()
    assert sender.inflight() == 0


def test_channel_give_up_resolves_inflight(env):
    net, a, b = make_net(env)
    net.topology.link_between("a", "b").set_up(False)
    net.topology.invalidate_routes()
    sender = ReliableChannel(a, ack_timeout=0.05, max_retries=2)
    failures = []

    def root(env):
        try:
            yield sender.send("b", payload="x", size=50)
        except Exception as error:  # noqa: BLE001 - expected give-up
            failures.append(type(error).__name__)

    env.run(env.process(root(env)))
    env.run()
    assert failures  # the send failed cleanly...
    assert sender.inflight() == 0  # ...and is no longer pending


def test_rpc_inflight_resolves_on_reply_and_timeout(env):
    net, a, b = make_net(env)
    caller = RpcEndpoint(a)
    server = RpcEndpoint(b)
    server.register("echo", lambda caller_name, args: args)

    def root(env):
        value = yield caller.call("b", "echo", 7)
        return value

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == 7
    assert caller.inflight() == 0

    # A timed-out call must also resolve the counter.
    server.register("hang", lambda c, a: (yield env.timeout(100.0)))
    errors = []

    def root2(env):
        try:
            yield caller.call("b", "hang", None, timeout=0.1)
        except Exception as error:  # noqa: BLE001 - expected timeout
            errors.append(type(error).__name__)

    env.run(env.process(root2(env)))
    env.run(until=env.now + 1.0)
    assert errors == ["RpcError"]
    assert caller.inflight() == 0


def test_inflight_gauges_recorded_in_scoped_registry(env):
    registry = MetricsRegistry()
    with use_metrics(registry):
        net, a, b = make_net(env)
        sender = ReliableChannel(a)
        ReliableChannel(b)
        caller = RpcEndpoint(a)
        server = RpcEndpoint(b)
        server.register("echo", lambda c, args: args)

        def root(env):
            yield sender.send("b", payload="x", size=50)
            yield caller.call("b", "echo", 1)

        env.run(env.process(root(env)))
        env.run()
    gauges = registry.gauges()
    assert gauges.get("chan.inflight{node=a}") == 0.0
    assert gauges.get("rpc.inflight{node=a}") == 0.0


def test_gauge_set_tolerates_time_rewind():
    # The process-default registry outlives environments; a fresh env's
    # t=0 sample must be dropped, not raise "time went backwards".
    from repro.net.transport import _gauge_set

    registry = MetricsRegistry()
    with use_metrics(registry):
        _gauge_set("chan.inflight", "x", 1, 5.0)
        _gauge_set("chan.inflight", "x", 2, 1.0)  # stale: ignored
        _gauge_set("chan.inflight", "x", 3, 6.0)
    series = registry.gauge("chan.inflight", node="x").series
    assert [(t, v) for t, v in series.samples] == [(5.0, 1), (6.0, 3)]
