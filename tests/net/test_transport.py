"""Tests for reliable channels and RPC."""

import pytest

from repro.errors import TransportError
from repro.net import Network, ReliableChannel, RpcEndpoint, Topology
from repro.net.transport import RemoteException, RpcError
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env():
    return Environment()


def make_net(env, loss=0.0, latency=0.005):
    topo = Topology(env)
    topo.add_link("a", "b", latency=latency, loss=loss,
                  rng=RandomStreams(42).stream("link"))
    net = Network(env, topo)
    return net, net.host("a"), net.host("b")


def test_reliable_send_acks(env):
    net, a, b = make_net(env)
    sender = ReliableChannel(a)
    receiver = ReliableChannel(b)

    def root(env):
        done = sender.send("b", payload="msg", size=50)
        packet = yield receiver.receive()
        yield done
        return packet.payload

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == "msg"


def test_reliable_survives_loss(env):
    net, a, b = make_net(env, loss=0.4)
    sender = ReliableChannel(a, ack_timeout=0.05, max_retries=30)
    receiver = ReliableChannel(b, ack_timeout=0.05, max_retries=30)
    got = []

    def consumer(env):
        for _ in range(10):
            packet = yield receiver.receive()
            got.append(packet.payload)

    def producer(env):
        for i in range(10):
            yield sender.send("b", payload=i, size=20)

    consume = env.process(consumer(env))
    env.process(producer(env))
    env.run(consume)
    assert got == list(range(10))
    assert sender.retransmissions > 0


def test_reliable_fifo_order_preserved(env):
    net, a, b = make_net(env)
    sender = ReliableChannel(a)
    receiver = ReliableChannel(b)
    got = []

    def consumer(env):
        for _ in range(5):
            packet = yield receiver.receive()
            got.append(packet.payload)

    proc = env.process(consumer(env))
    for i in range(5):
        sender.send("b", payload=i)
    env.run(proc)
    assert got == [0, 1, 2, 3, 4]


def test_reliable_gives_up_when_unreachable(env):
    topo = Topology(env)
    link = topo.add_link("a", "b", latency=0.001)
    net = Network(env, topo)
    a, b = net.host("a"), net.host("b")
    ReliableChannel(b)
    sender = ReliableChannel(a, ack_timeout=0.01, max_retries=2)
    link.set_up(False)
    failed = []

    def root(env):
        try:
            yield sender.send("b", payload="x")
        except TransportError:
            failed.append(True)

    proc = env.process(root(env))
    env.run(proc)
    assert failed == [True]


def test_reliable_max_retries_validation(env):
    net, a, b = make_net(env)
    with pytest.raises(TransportError):
        ReliableChannel(a, max_retries=-1)


def test_rpc_roundtrip(env):
    net, a, b = make_net(env)
    client = RpcEndpoint(a)
    server = RpcEndpoint(b)
    server.register("add", lambda caller, args: args[0] + args[1])

    def root(env):
        result = yield client.call("b", "add", (2, 3))
        return result

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == 5
    assert server.calls_served == 1


def test_rpc_generator_handler_simulates_work(env):
    net, a, b = make_net(env, latency=0.001)
    client = RpcEndpoint(a)
    server = RpcEndpoint(b)

    def slow_echo(caller, args):
        yield env.timeout(0.5)
        return ("echo", args, caller)

    server.register("echo", slow_echo)

    def root(env):
        result = yield client.call("b", "echo", "hi")
        return (env.now, result)

    proc = env.process(root(env))
    env.run(proc)
    at, result = proc.value
    assert result == ("echo", "hi", "a")
    assert at >= 0.5


def test_rpc_unknown_method_raises_remote_exception(env):
    net, a, b = make_net(env)
    client = RpcEndpoint(a)
    RpcEndpoint(b)
    errors = []

    def root(env):
        try:
            yield client.call("b", "missing")
        except RemoteException as error:
            errors.append(str(error))

    proc = env.process(root(env))
    env.run(proc)
    assert errors and "missing" in errors[0]


def test_rpc_handler_exception_forwarded(env):
    net, a, b = make_net(env)
    client = RpcEndpoint(a)
    server = RpcEndpoint(b)

    def bad(caller, args):
        raise ValueError("nope")

    server.register("bad", bad)
    errors = []

    def root(env):
        try:
            yield client.call("b", "bad")
        except RemoteException as error:
            errors.append(str(error))

    proc = env.process(root(env))
    env.run(proc)
    assert errors and "ValueError" in errors[0]


def test_rpc_timeout(env):
    topo = Topology(env)
    link = topo.add_link("a", "b", latency=0.001)
    net = Network(env, topo)
    a, b = net.host("a"), net.host("b")
    client = RpcEndpoint(a)
    RpcEndpoint(b)
    link.set_up(False)
    errors = []

    def root(env):
        try:
            yield client.call("b", "anything", timeout=0.1)
        except RpcError:
            errors.append(env.now)

    proc = env.process(root(env))
    env.run(proc)
    assert errors == [0.1]


def test_rpc_concurrent_calls(env):
    net, a, b = make_net(env)
    client = RpcEndpoint(a)
    server = RpcEndpoint(b)
    server.register("double", lambda caller, args: args * 2)

    def root(env):
        calls = [client.call("b", "double", i) for i in range(5)]
        results = yield env.all_of(calls)
        return sorted(results.values())

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == [0, 2, 4, 6, 8]
