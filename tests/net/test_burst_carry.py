"""Burst-carry networking must be invisible except in wall time.

The fused carry (PR 10) elides the carrier's Initialize, the
uncontended claim's grant, the delivered put and the detached end
event — each *virtually accounted* so counters, metrics, digests and
drop books match the legacy carry event for event.  These are the A/B
proofs; ``Network(..., burst_carry=False)`` keeps the legacy path alive
as the reference.
"""

import pytest

from repro.analysis.replay import run_isolated, trace_digest
from repro.analysis.workloads import WORKLOADS
from repro.faults import FaultInjector, FaultSchedule
from repro.net.network import (
    Network,
    set_burst_carry,
    use_burst_carry,
)
from repro.net.topology import lan, line, wan
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim import Environment


@pytest.fixture(autouse=True)
def fresh_metrics():
    with use_metrics(MetricsRegistry()):
        yield


def _storm(burst, hosts=6, packets=40, loss=0.0, schedule=None,
           scheduler="calendar"):
    """One deterministic LAN/WAN storm; returns comparable state."""
    with use_metrics(MetricsRegistry()):
        return _storm_inner(burst, packets, loss, schedule, scheduler)


def _storm_inner(burst, packets, loss, schedule, scheduler):
    env = Environment(scheduler=scheduler)
    topo = wan(env, sites=3, hosts_per_site=2, site_latency=0.004,
               loss=loss, seed=7)
    network = Network(env, topo, burst_carry=burst)
    if schedule is not None:
        FaultInjector(env, network, schedule)
    names = ["site{}.host{}".format(i, j)
             for i in range(3) for j in range(2)]
    endpoints = [network.host(name) for name in names]

    def sender(env, host, peer, count):
        for i in range(count):
            yield env.timeout(0.0005)
            host.send(peer, payload=i, size=512)

    def receiver(env, host, seen):
        while True:
            packet = yield host.receive()
            seen.append((env.now, packet.src, packet.payload))

    seen = []
    for i, host in enumerate(endpoints):
        peer = names[(i + 3) % len(names)]
        env.process(sender(env, host, peer, packets))
        env.process(receiver(env, host, seen))
    env.run(until=1.0)
    return {
        "seen": seen,
        "stats": env.stats(),
        "counters": dict(network.counters._counts),
        "latency_count": network.delivery_latency.count,
        "latency_mean": network.delivery_latency.mean,
        "drops": network.drop_stats(),
        "link_bytes": network.total_link_bytes(),
    }


def test_burst_matches_legacy_on_clean_storm():
    assert _storm(True) == _storm(False)


def test_burst_matches_legacy_under_loss():
    assert _storm(True, loss=0.05) == _storm(False, loss=0.05)


def test_burst_matches_legacy_under_faults():
    schedule = (FaultSchedule()
                .link_down(0.010, "site0.router", "site1.router")
                .link_up(0.030, "site0.router", "site1.router")
                .loss_burst(0.040, extra_loss=0.5, duration=0.020,
                            links=[("site1.router", "site2.router")]))
    a = _storm(True, schedule=schedule)
    b = _storm(False, schedule=schedule)
    assert a == b
    assert a["drops"], "fault storm produced no drops to compare"


def test_burst_matches_legacy_on_heap_scheduler():
    assert _storm(True, scheduler="heap") == \
        _storm(False, scheduler="heap")


def test_virtual_accounting_keeps_event_counters_equal():
    """The headline guarantee: identical events_scheduled/processed —
    elided events are counted at the instants they would have fired."""
    burst = _storm(True)["stats"]
    legacy = _storm(False)["stats"]
    assert burst == legacy
    assert burst["events_processed"] > 0


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_digests_identical_with_burst_toggled(name):
    with use_burst_carry(True):
        on = trace_digest(run_isolated(name, seed=31))
    with use_burst_carry(False):
        off = trace_digest(run_isolated(name, seed=31))
    assert on == off


def test_metrics_registry_sees_identical_instruments():
    """Celled metrics flush into the same instruments the legacy carry
    writes directly; a boundary read must not see stale cells."""
    def drive(burst):
        registry = MetricsRegistry()
        with use_metrics(registry):
            env = Environment()
            topo = lan(env, hosts=4, seed=3)
            network = Network(env, topo, burst_carry=burst)
            hosts = [network.host("host{}".format(i)) for i in range(4)]

            def chat(env, host, peer):
                for i in range(25):
                    yield env.timeout(0.001)
                    host.send(peer, payload=i, size=256)

            for i, host in enumerate(hosts):
                env.process(chat(env, host,
                                 "host{}".format((i + 1) % 4)))
            env.run()
            return {
                "sent": registry.counter_total("net.sent"),
                "delivered": registry.counter_total("net.delivered"),
                "node_sent": registry.counter_total("net.node.sent",
                                                    node="host0"),
                "bytes": registry.counter_total("net.bytes",
                                                link="host0<->switch"),
                "latency":
                    registry.histogram_count("net.delivery_latency"),
                "snapshot": registry.snapshot(),
            }

    assert drive(True) == drive(False)


def test_on_drop_hook_fires_in_burst_mode():
    env = Environment()
    topo = line(env, length=2, seed=11)
    topo.link_between("n0", "n1").loss = 1.0
    network = Network(env, topo, burst_carry=True)
    dropped = []
    network.on_drop = lambda packet, reason: dropped.append(
        (packet.payload, reason))
    network.host("n1")
    network.host("n0").send("n1", payload="doomed", size=64)
    env.run()
    assert dropped == [("doomed", "loss")]
    assert network.drop_stats() == {"loss": 1}


def test_setup_time_sends_work_before_run():
    """transmit() outside any process (no active process) keeps the
    queued Initialize, so link mutations between send() and run() are
    honoured exactly as in the legacy carry."""
    def drive(burst):
        env = Environment()
        topo = line(env, length=2, seed=5)
        network = Network(env, topo, burst_carry=burst)
        network.host("n1")
        network.host("n0").send("n1", payload="early", size=64)
        # Mutating the link *after* send but *before* run must affect
        # the packet: the carry starts inside the run, not at send().
        topo.link_between("n0", "n1").loss = 1.0
        env.run()
        return network.drop_stats(), env.stats()

    assert drive(True) == drive(False)
    assert drive(True)[0] == {"loss": 1}


def test_process_wide_toggle_and_property():
    env = Environment()
    topo = line(env, length=2)
    assert Network(env, topo).burst_carry is True
    assert Network(env, topo, burst_carry=False).burst_carry is False
    previous = set_burst_carry(False)
    try:
        assert Network(env, topo).burst_carry is False
    finally:
        set_burst_carry(previous)
    with use_burst_carry(False):
        assert Network(env, topo).burst_carry is False
    assert Network(env, topo).burst_carry is True
