"""Tests for priority transmission: QoS enforcement at the link level."""

import pytest

from repro.net import Network, Topology
from repro.net.network import BEST_EFFORT_PRIORITY, RESERVED_PRIORITY
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_bottleneck(env, bandwidth=1e5):
    topo = Topology(env)
    topo.add_link("a", "b", latency=0.0, bandwidth=bandwidth)
    net = Network(env, topo)
    return net, net.host("a"), net.host("b")


def test_reserved_packet_overtakes_queued_besteffort(env):
    """A reserved packet jumps a queue of best-effort packets."""
    net, a, b = make_bottleneck(env, bandwidth=1e5)  # 100 kb/s
    arrivals = []
    b.on_packet(0, lambda packet: arrivals.append(
        (packet.headers.get("tag"), env.now)))
    # Five big best-effort packets queue up (each ~0.8s transmission).
    for i in range(5):
        a.send("b", size=10000, port=0,
               headers={"tag": "bulk-{}".format(i)})
    # A small reserved packet sent a moment later.
    def late_reserved(env):
        yield env.timeout(0.1)
        a.send("b", size=100, port=0,
               headers={"tag": "reserved",
                        "priority": RESERVED_PRIORITY})

    env.process(late_reserved(env))
    env.run()
    order = [tag for tag, _ in arrivals]
    # The reserved packet waited only for the in-flight bulk packet.
    assert order.index("reserved") == 1
    assert order[0] == "bulk-0"


def test_equal_priority_is_fifo(env):
    net, a, b = make_bottleneck(env)
    arrivals = []
    b.on_packet(0, lambda packet: arrivals.append(
        packet.headers.get("tag")))
    for i in range(6):
        a.send("b", size=1000, port=0, headers={"tag": i})
    env.run()
    assert arrivals == list(range(6))


def test_priority_defaults(env):
    net, a, b = make_bottleneck(env)
    received = []
    b.on_packet(0, lambda packet: received.append(packet))
    a.send("b", size=10)
    env.run()
    assert received
    assert BEST_EFFORT_PRIORITY > RESERVED_PRIORITY


def test_reserved_stream_latency_independent_of_bulk_load(env):
    """Under sustained bulk load, reserved latency stays bounded."""
    net, a, b = make_bottleneck(env, bandwidth=1e6)
    reserved_latencies = []

    def on_packet(packet):
        if packet.headers.get("tag") == "reserved":
            reserved_latencies.append(env.now - packet.created_at)

    b.on_packet(0, on_packet)

    def bulk(env):
        while env.now < 3.0:
            a.send("b", size=5000, port=0, headers={"tag": "bulk"})
            yield env.timeout(0.02)  # ~2x link capacity offered

    def reserved(env):
        while env.now < 3.0:
            a.send("b", size=500, port=0,
                   headers={"tag": "reserved",
                            "priority": RESERVED_PRIORITY})
            yield env.timeout(0.1)

    env.process(bulk(env))
    env.process(reserved(env))
    env.run(until=5.0)
    assert reserved_latencies
    # Bounded by one in-flight bulk transmission + own transmission:
    # (5040*8 + 540*8) / 1e6 ≈ 45 ms.
    assert max(reserved_latencies) < 0.05
