"""Tests for packet delivery, hosts and the network engine."""

import pytest

from repro.errors import NetworkError
from repro.net import HEADER_BYTES, Network, Packet, Topology, lan, line
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_pair(env, latency=0.01, bandwidth=1e9, loss=0.0):
    topo = Topology(env)
    topo.add_link("a", "b", latency=latency, bandwidth=bandwidth, loss=loss)
    net = Network(env, topo)
    return net, net.host("a"), net.host("b")


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet("a", "b", size=-1)


def test_packet_wire_size():
    packet = Packet("a", "b", size=100)
    assert packet.wire_size == 100 + HEADER_BYTES


def test_packet_latency_none_until_delivered():
    packet = Packet("a", "b")
    assert packet.latency is None


def test_host_requires_topology_node(env):
    topo = Topology(env)
    topo.add_node("a")
    net = Network(env, topo)
    with pytest.raises(NetworkError):
        net.host("ghost")


def test_host_is_cached(env):
    net, a, b = make_pair(env)
    assert net.host("a") is a


def test_network_env_mismatch(env):
    other = Environment()
    topo = Topology(other)
    with pytest.raises(NetworkError):
        Network(env, topo)


def test_basic_delivery(env):
    net, a, b = make_pair(env, latency=0.01)

    def receiver(env):
        packet = yield b.receive(port=5)
        return (env.now, packet.payload)

    proc = env.process(receiver(env))
    a.send("b", payload="hello", size=100, port=5)
    env.run(proc)
    at, payload = proc.value
    assert payload == "hello"
    assert at >= 0.01  # at least the propagation delay


def test_delivery_includes_transmission_delay(env):
    # 1 Mbit/s; (1000+40)*8 bits = 8320 bits => 8.32 ms + 10 ms latency
    net, a, b = make_pair(env, latency=0.01, bandwidth=1e6)

    def receiver(env):
        packet = yield b.receive()
        return env.now

    proc = env.process(receiver(env))
    a.send("b", size=1000)
    env.run(proc)
    assert abs(proc.value - (0.01 + 8320 / 1e6)) < 1e-9


def test_multihop_latency_accumulates(env):
    topo = line(env, 4, latency=0.01, bandwidth=1e9)
    net = Network(env, topo)
    src, dst = net.host("n0"), net.host("n3")

    def receiver(env):
        packet = yield dst.receive()
        return (env.now, packet.hops)

    proc = env.process(receiver(env))
    src.send("n3", size=10)
    env.run(proc)
    at, hops = proc.value
    assert hops == 3
    assert at >= 0.03


def test_port_demultiplexing(env):
    net, a, b = make_pair(env)
    got = []

    def receiver(env, port):
        packet = yield b.receive(port=port)
        got.append((port, packet.payload))

    env.process(receiver(env, 1))
    env.process(receiver(env, 2))
    a.send("b", payload="one", port=1)
    a.send("b", payload="two", port=2)
    env.run()
    assert sorted(got) == [(1, "one"), (2, "two")]


def test_push_handler_delivery(env):
    net, a, b = make_pair(env)
    got = []
    b.on_packet(7, lambda packet: got.append(packet.payload))
    a.send("b", payload="pushed", port=7)
    env.run()
    assert got == ["pushed"]


def test_lossy_link_drops(env):
    net, a, b = make_pair(env, loss=0.999999)
    drops = []
    net.on_drop = lambda packet, reason: drops.append(reason)
    a.send("b", size=10)
    env.run()
    assert drops == ["loss"]
    assert net.counters["dropped:loss"] == 1


def test_no_route_drop(env):
    topo = Topology(env)
    topo.add_node("a")
    topo.add_node("b")
    net = Network(env, topo)
    a = net.host("a")
    net.host("b")
    a.send("b")
    env.run()
    assert net.counters["dropped:no-route"] == 1


def test_no_host_drop(env):
    topo = Topology(env)
    topo.add_link("a", "b")
    net = Network(env, topo)
    a = net.host("a")
    a.send("b")  # b never attached as a host
    env.run()
    assert net.counters["dropped:no-host"] == 1


def test_drop_stats_attributes_loss_and_partition(env):
    # Bernoulli loss on an up link is attributed to "loss"...
    net, a, b = make_pair(env, loss=0.999999)
    a.send("b", size=10)
    env.run()
    assert net.drop_stats() == {"loss": 1}
    # ...while a downed link (partition, routes not yet recomputed) is
    # attributed to "link-down", not conflated with random loss.
    net2, a2, b2 = make_pair(env)
    a2.send("b", size=10)   # warm the route table while the link is up
    env.run()
    net2.topology.link_between("a", "b").set_up(False)
    a2.send("b", size=10)
    env.run()
    assert net2.drop_stats() == {"link-down": 1}
    assert net2.counters["dropped:link-down"] == 1
    # Once routing notices the partition, the drop becomes "no-route".
    net2.topology.invalidate_routes()
    a2.send("b", size=10)
    env.run()
    assert net2.drop_stats() == {"link-down": 1, "no-route": 1}


def test_drops_counted_in_metrics_registry(env):
    from repro import obs

    with obs.use_metrics(obs.MetricsRegistry()) as metrics:
        net, a, b = make_pair(env, loss=0.999999)
        a.send("b", size=10)
        env.run()
    assert metrics.counter("net.drops", reason="loss").value == 1
    assert metrics.counters("net.drops") == {"net.drops{reason=loss}": 1}


def test_counters_and_latency_tally(env):
    net, a, b = make_pair(env)

    def receiver(env):
        for _ in range(3):
            yield b.receive()

    proc = env.process(receiver(env))
    for _ in range(3):
        a.send("b", size=10)
    env.run(proc)
    assert net.counters["sent"] == 3
    assert net.counters["delivered"] == 3
    assert net.delivery_latency.count == 3


def test_link_stats_accumulate(env):
    net, a, b = make_pair(env)

    def receiver(env):
        yield b.receive()

    proc = env.process(receiver(env))
    a.send("b", size=60)
    env.run(proc)
    link = net.topology.link_between("a", "b")
    assert link.stats.packets == 1
    assert link.stats.bytes == 60 + HEADER_BYTES
    assert net.total_link_bytes() == 60 + HEADER_BYTES


def test_transmission_serialises_on_shared_link(env):
    # Two packets of 1000B at 1 Mb/s: the second waits for the first.
    net, a, b = make_pair(env, latency=0.0, bandwidth=1e6)
    arrivals = []

    def receiver(env):
        for _ in range(2):
            yield b.receive()
            arrivals.append(env.now)

    proc = env.process(receiver(env))
    a.send("b", size=1000)
    a.send("b", size=1000)
    env.run(proc)
    tx = 8320 / 1e6
    assert abs(arrivals[0] - tx) < 1e-9
    assert abs(arrivals[1] - 2 * tx) < 1e-9


def test_sent_received_counts(env):
    net, a, b = make_pair(env)

    def receiver(env):
        yield b.receive()

    proc = env.process(receiver(env))
    a.send("b")
    env.run(proc)
    assert a.sent == 1
    assert b.received == 1
