"""Tests for telepointers: shared cursors with throttling."""

import pytest

from repro.errors import SessionError
from repro.sessions import TelepointerService
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_validation(env):
    with pytest.raises(SessionError):
        TelepointerService(env, update_interval=-1)
    service = TelepointerService(env)
    with pytest.raises(SessionError):
        service.move("ghost", 1, 2)
    with pytest.raises(SessionError):
        service.position_of("ghost")
    service.join("alice")
    with pytest.raises(SessionError):
        service.join("alice")


def test_movement_reaches_colleagues(env):
    service = TelepointerService(env, update_interval=0.1, latency=0.02)
    seen = []
    service.join("alice")
    service.join("bob", on_move=lambda member, x, y: seen.append(
        (member, x, y)))
    service.move("alice", 10.0, 20.0)
    env.run(until=1.0)
    assert ("alice", 10.0, 20.0) in seen
    assert service.position_of("alice") == (10.0, 20.0)


def test_own_movements_not_echoed(env):
    service = TelepointerService(env, update_interval=0.1)
    seen = []
    service.join("alice", on_move=lambda member, x, y: seen.append(
        member))
    service.move("alice", 1.0, 1.0)
    env.run(until=1.0)
    assert seen == []


def test_throttling_coalesces_rapid_movement(env):
    """A burst of moves publishes at most one update per interval."""
    service = TelepointerService(env, update_interval=0.2, latency=0.0)
    service.join("alice")
    service.join("bob")

    def wiggle(env):
        for i in range(100):
            service.move("alice", float(i), 0.0)
            yield env.timeout(0.01)  # 100 Hz of raw movement

    env.process(wiggle(env))
    env.run(until=2.0)
    assert service.counters["moves"] == 100
    # 1 s of movement at 0.2 s interval -> ~5-6 published updates.
    assert service.counters["updates_published"] <= 8
    # The final position still gets through.
    assert service.position_of("alice")[0] >= 94.0


def test_multiple_watchers(env):
    service = TelepointerService(env, update_interval=0.05)
    seen = {"bob": [], "carol": []}
    service.join("alice")
    service.join("bob", on_move=lambda m, x, y: seen["bob"].append(m))
    service.join("carol",
                 on_move=lambda m, x, y: seen["carol"].append(m))
    service.move("alice", 5, 5)
    env.run(until=0.5)
    assert seen["bob"] == ["alice"]
    assert seen["carol"] == ["alice"]


def test_default_position(env):
    service = TelepointerService(env)
    service.join("alice")
    assert service.position_of("alice") == (0.0, 0.0)
