"""Tests for sessions, invitations and both sharing styles."""

import pytest

from repro.errors import SessionError
from repro.sessions import (
    ACCEPT,
    ASYNCHRONOUS,
    AwareSharedObject,
    CO_LOCATED,
    DECLINE,
    FcfsFloor,
    InvitationService,
    REMOTE,
    SYNCHRONOUS,
    Session,
    SingleUserApp,
    TIMEOUT,
    TransparentConference,
    identical_view,
    summary_view,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


# -- sessions -----------------------------------------------------------------

def test_session_modes_validated(env):
    with pytest.raises(SessionError):
        Session(env, "s", time_mode="sometimes")
    with pytest.raises(SessionError):
        Session(env, "s", place_mode="nearby")


def test_session_join_leave(env):
    session = Session(env, "design-meeting")
    session.join("alice")
    session.join("bob")
    assert session.members == ["alice", "bob"]
    with pytest.raises(SessionError):
        session.join("alice")
    session.leave("bob")
    assert session.members == ["alice"]
    with pytest.raises(SessionError):
        session.leave("bob")


def test_session_join_publishes_awareness(env):
    session = Session(env, "s")
    seen = []
    session.awareness.subscribe("observer", seen.append)
    session.join("alice")
    assert [event.action for event in seen] == ["join"]


def test_session_quadrant_and_transition(env):
    session = Session(env, "s", time_mode=SYNCHRONOUS, place_mode=REMOTE)
    assert session.quadrant == (SYNCHRONOUS, REMOTE)
    session.join("alice")
    session.store.write("doc", "content", writer="alice")
    quadrant = session.switch_mode(time_mode=ASYNCHRONOUS)
    assert quadrant == (ASYNCHRONOUS, REMOTE)
    # Seamless: state survived the transition.
    assert session.members == ["alice"]
    assert session.store.read("doc") == "content"
    assert session.transitions == [
        (0.0, "synchronous/remote", "asynchronous/remote")]


def test_session_transition_validation(env):
    session = Session(env, "s")
    with pytest.raises(SessionError):
        session.switch_mode(time_mode="never")
    with pytest.raises(SessionError):
        session.switch_mode(place_mode="mars")


def test_session_all_four_quadrants(env):
    session = Session(env, "s")
    quadrants = set()
    for time_mode in (SYNCHRONOUS, ASYNCHRONOUS):
        for place_mode in (CO_LOCATED, REMOTE):
            quadrants.add(session.switch_mode(time_mode, place_mode))
    assert len(quadrants) == 4


def test_leaving_member_releases_floor(env):
    floor = FcfsFloor(env)
    session = Session(env, "s", floor=floor)
    session.join("alice")
    floor.request("alice")
    session.leave("alice")
    assert floor.holder is None


def test_session_state_snapshot(env):
    session = Session(env, "s")
    session.join("alice")
    session.store.write("doc", "v1", writer="alice")
    snapshot = session.state_snapshot()
    assert snapshot["members"] == ["alice"]
    assert snapshot["artefacts"] == {"doc": ("v1", 1)}


# -- invitations ----------------------------------------------------------------

def test_invitation_accept_joins(env):
    session = Session(env, "s")
    session.join("alice")
    invitations = InvitationService(env)
    invitations.on_invite("bob", lambda member, s: True)

    def root(env):
        outcome = yield invitations.invite(session, "alice", "bob")
        return outcome

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == ACCEPT
    assert "bob" in session.members


def test_invitation_decline(env):
    session = Session(env, "s")
    session.join("alice")
    invitations = InvitationService(env)
    invitations.on_invite("bob", lambda member, s: False)

    def root(env):
        outcome = yield invitations.invite(session, "alice", "bob")
        return outcome

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == DECLINE
    assert "bob" not in session.members


def test_invitation_timeout_when_unreachable(env):
    session = Session(env, "s")
    session.join("alice")
    invitations = InvitationService(env)

    def root(env):
        outcome = yield invitations.invite(session, "alice", "ghost",
                                           deadline=3.0)
        return (env.now, outcome)

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == (3.0, TIMEOUT)


def test_invitation_requires_member_inviter(env):
    session = Session(env, "s")
    invitations = InvitationService(env)
    with pytest.raises(SessionError):
        invitations.invite(session, "stranger", "bob")


def test_late_join_state_transfer_costs_time(env):
    session = Session(env, "s")
    session.join("alice")
    invitations = InvitationService(env, state_transfer_rate=1e6)
    invitations.on_invite("bob", lambda member, s: True)

    def root(env):
        yield invitations.invite(session, "alice", "bob",
                                 state_size=125000)  # 1 Mbit
        return env.now

    proc = env.process(root(env))
    env.run(proc)
    # ~1s answer latency + 1s transfer.
    assert proc.value == pytest.approx(2.0)


def test_invitation_rate_validation(env):
    with pytest.raises(SessionError):
        InvitationService(env, state_transfer_rate=0)


# -- transparent conferencing ------------------------------------------------------

def test_transparent_conference_multicasts_display(env):
    floor = FcfsFloor(env)
    conference = TransparentConference(env, SingleUserApp(), floor,
                                       display_size=1000,
                                       display_latency=0.01)
    for member in ("alice", "bob", "carol"):
        conference.join(member)

    def root(env):
        output = yield conference.submit("alice", "typed-x")
        return output

    proc = env.process(root(env))
    env.run(proc)
    assert proc.value == "display:1 items"
    # Every member's screen updated; bytes = members * display size.
    assert all(len(screen) == 1
               for screen in conference.screens.values())
    assert conference.display_bytes_sent == 3000


def test_transparent_conference_serialises_input(env):
    floor = FcfsFloor(env)
    conference = TransparentConference(env, SingleUserApp(), floor)
    conference.join("alice")
    conference.join("bob")

    def member_turn(env, name, value):
        yield conference.submit(name, value)

    env.process(member_turn(env, "alice", 1))
    env.process(member_turn(env, "bob", 2))
    env.run()
    assert conference.app.state == [1, 2]  # one coherent stream


def test_transparent_conference_membership_required(env):
    conference = TransparentConference(env, SingleUserApp(),
                                       FcfsFloor(env))
    with pytest.raises(SessionError):
        conference.submit("stranger", "x")
    conference.join("alice")
    with pytest.raises(SessionError):
        conference.join("alice")


# -- collaboration-aware sharing -----------------------------------------------------

def test_aware_object_per_member_views(env):
    shared = AwareSharedObject(env)
    shared.join("editor", view=identical_view)
    shared.join("observer", view=summary_view)
    shared.update("editor", "para1",
                  "a very long paragraph of draft text here")
    editor_view = shared.presented["editor"][-1][2]
    observer_view = shared.presented["observer"][-1][2]
    assert editor_view == "a very long paragraph of draft text here"
    assert observer_view == "a very long paragrap..."


def test_aware_object_view_tailorable_live(env):
    shared = AwareSharedObject(env)
    shared.join("bob")
    shared.update("bob", "k", "long value exceeding twenty chars")
    assert shared.view_of("bob", "k") == \
        "long value exceeding twenty chars"
    shared.set_view("bob", summary_view)
    assert shared.view_of("bob", "k") == "long value exceeding..."


def test_aware_object_membership_checks(env):
    shared = AwareSharedObject(env)
    with pytest.raises(SessionError):
        shared.update("ghost", "k", 1)
    with pytest.raises(SessionError):
        shared.set_view("ghost", identical_view)
    with pytest.raises(SessionError):
        shared.view_of("ghost", "k")
    shared.join("alice")
    with pytest.raises(SessionError):
        shared.join("alice")
