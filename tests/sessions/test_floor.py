"""Tests for the five floor-control policies."""

import pytest

from repro.errors import FloorControlError
from repro.sessions import (
    ChairedFloor,
    FcfsFloor,
    FLOOR_POLICIES,
    FreeFloor,
    NegotiatedFloor,
    RoundRobinFloor,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_policy_registry():
    assert set(FLOOR_POLICIES) == {"free", "fcfs", "round-robin",
                                   "chaired", "negotiated"}


def test_free_floor_grants_instantly_and_counts_collisions(env):
    floor = FreeFloor(env)

    def speaker(env, name, hold):
        yield floor.request(name)
        yield env.timeout(hold)
        floor.release(name)

    env.process(speaker(env, "alice", 2.0))
    env.process(speaker(env, "bob", 2.0))
    env.run()
    assert floor.counters["grants"] == 2
    assert floor.counters["collisions"] == 1
    assert floor.wait_time.maximum == 0.0


def test_free_floor_release_requires_speaker(env):
    floor = FreeFloor(env)
    with pytest.raises(FloorControlError):
        floor.release("nobody")


def test_fcfs_orders_by_arrival(env):
    floor = FcfsFloor(env)
    order = []

    def speaker(env, name, delay, hold):
        yield env.timeout(delay)
        yield floor.request(name)
        order.append((name, env.now))
        yield env.timeout(hold)
        floor.release(name)

    env.process(speaker(env, "alice", 0.0, 3.0))
    env.process(speaker(env, "bob", 1.0, 1.0))
    env.process(speaker(env, "carol", 0.5, 1.0))
    env.run()
    assert order == [("alice", 0.0), ("carol", 3.0), ("bob", 4.0)]
    assert floor.wait_time.count == 3


def test_fcfs_release_requires_holder(env):
    floor = FcfsFloor(env)
    floor.request("alice")
    with pytest.raises(FloorControlError):
        floor.release("bob")


def test_round_robin_preempts_hog(env):
    floor = RoundRobinFloor(env, quantum=2.0)
    preempted = []
    floor.on_preempt = preempted.append
    got_floor = []

    def hog(env):
        yield floor.request("hog")
        got_floor.append(("hog", env.now))
        # never releases

    def waiter(env):
        yield env.timeout(0.5)
        yield floor.request("waiter")
        got_floor.append(("waiter", env.now))
        floor.release("waiter")

    env.process(hog(env))
    env.process(waiter(env))
    env.run()
    assert got_floor == [("hog", 0.0), ("waiter", 2.0)]
    assert preempted == ["hog"]
    assert floor.counters["preemptions"] == 1


def test_round_robin_no_preemption_without_waiters(env):
    floor = RoundRobinFloor(env, quantum=1.0)

    def holder(env):
        yield floor.request("alice")
        yield env.timeout(5.0)
        floor.release("alice")

    env.process(holder(env))
    env.run()
    assert floor.counters["preemptions"] == 0


def test_round_robin_quantum_validation(env):
    with pytest.raises(FloorControlError):
        RoundRobinFloor(env, quantum=0)


def test_chaired_floor_grants_after_decision_latency(env):
    floor = ChairedFloor(env, chair="prof", decision_latency=1.0)
    granted = []

    def speaker(env):
        yield floor.request("alice")
        granted.append(env.now)

    env.process(speaker(env))
    env.run()
    assert granted == [1.0]


def test_chaired_floor_rejection(env):
    floor = ChairedFloor(env, chair="prof",
                         decide=lambda member: member != "heckler",
                         decision_latency=0.1)
    outcomes = []

    def speaker(env, name):
        try:
            yield floor.request(name)
            outcomes.append((name, "granted"))
            floor.release(name)
        except FloorControlError:
            outcomes.append((name, "rejected"))

    env.process(speaker(env, "alice"))
    env.process(speaker(env, "heckler"))
    env.run()
    assert sorted(outcomes) == [("alice", "granted"),
                                ("heckler", "rejected")]
    assert floor.counters["rejections"] == 1


def test_chaired_floor_queues_while_held(env):
    floor = ChairedFloor(env, chair="prof", decision_latency=0.0)
    order = []

    def speaker(env, name, hold):
        yield floor.request(name)
        order.append((name, env.now))
        yield env.timeout(hold)
        floor.release(name)

    env.process(speaker(env, "alice", 2.0))
    env.process(speaker(env, "bob", 1.0))
    env.run()
    assert order == [("alice", 0.0), ("bob", 2.0)]


def test_negotiated_floor_holder_yields(env):
    floor = NegotiatedFloor(env, negotiation_latency=0.5)
    timeline = []

    def first(env):
        yield floor.request("alice")
        timeline.append(("alice", env.now))
        # alice never explicitly releases; she yields when asked.

    def second(env):
        yield env.timeout(1.0)
        yield floor.request("bob")
        timeline.append(("bob", env.now))

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert timeline == [("alice", 0.0), ("bob", 1.5)]
    assert floor.counters["yields"] == 1


def test_negotiated_floor_refusal_waits_for_release(env):
    floor = NegotiatedFloor(
        env, yields=lambda holder, requester: False,
        negotiation_latency=0.5)
    timeline = []

    def first(env):
        yield floor.request("alice")
        yield env.timeout(5.0)
        floor.release("alice")

    def second(env):
        yield env.timeout(1.0)
        yield floor.request("bob")
        timeline.append(env.now)

    env.process(first(env))
    env.process(second(env))
    env.run()
    assert timeline == [5.0]
    assert floor.counters["refusals"] == 1


def test_turn_counts_fairness_metric(env):
    floor = FcfsFloor(env)

    def speaker(env, name, turns):
        for _ in range(turns):
            yield floor.request(name)
            yield env.timeout(0.1)
            floor.release(name)

    env.process(speaker(env, "alice", 3))
    env.process(speaker(env, "bob", 1))
    env.run()
    counts = floor.turn_counts()
    assert counts == {"alice": 3, "bob": 1}


def test_floor_latency_validation(env):
    with pytest.raises(FloorControlError):
        ChairedFloor(env, chair="x", decision_latency=-1)
    with pytest.raises(FloorControlError):
        NegotiatedFloor(env, negotiation_latency=-1)
