"""Tests for the Rendezvous-style Abstraction-Link-View architecture."""

import pytest

from repro.errors import ReproError
from repro.toolkit import (
    MultiUserApplication,
    SharedAbstraction,
    UserView,
    ViewLink,
)


def test_abstraction_set_get():
    abstraction = SharedAbstraction("whiteboard")
    abstraction.set("alice", "title", "Q3 plan")
    assert abstraction.get("title") == "Q3 plan"
    assert abstraction.get("missing", "default") == "default"
    assert abstraction.keys() == ["title"]
    assert abstraction.changes == 1


def test_view_renders_on_change():
    abstraction = SharedAbstraction()
    view = UserView(abstraction, "alice",
                    links=[ViewLink("count")])
    abstraction.set("bob", "count", 3)
    assert view.presented["count"] == 3
    abstraction.set("bob", "count", 4)
    assert view.presented["count"] == 4


def test_relaxed_wysiwis_per_user_rendering():
    """Two users see the same abstraction differently."""
    abstraction = SharedAbstraction()
    plain = UserView(abstraction, "alice", links=[ViewLink("items")])
    summarised = UserView(
        abstraction, "bob",
        links=[ViewLink("items",
                        render=lambda value, local:
                        "{} items".format(len(value or [])))])
    abstraction.set("alice", "items", ["a", "b", "c"])
    assert plain.presented["items"] == ["a", "b", "c"]
    assert summarised.presented["items"] == "3 items"


def test_private_local_state_affects_only_own_view():
    abstraction = SharedAbstraction()

    def highlight(value, local):
        selected = local.get("selection")
        return [("*" + item if item == selected else item)
                for item in (value or [])]

    alice = UserView(abstraction, "alice",
                     links=[ViewLink("items", render=highlight)])
    bob = UserView(abstraction, "bob",
                   links=[ViewLink("items", render=highlight)])
    abstraction.set("x", "items", ["a", "b"])
    alice.set_local("selection", "b")
    assert alice.presented["items"] == ["a", "*b"]
    assert bob.presented["items"] == ["a", "b"]  # unaffected


def test_input_maps_back_to_abstraction():
    abstraction = SharedAbstraction()
    view = UserView(
        abstraction, "alice",
        links=[ViewLink("count",
                        accept=lambda presented, current:
                        (current or 0) + presented)])
    abstraction.set("x", "count", 10)
    view.input("count", 5)   # "+5" gesture
    assert abstraction.get("count") == 15
    assert view.presented["count"] == 15


def test_read_only_link_rejects_input():
    abstraction = SharedAbstraction()
    view = UserView(abstraction, "alice", links=[ViewLink("title")])
    with pytest.raises(ReproError):
        view.input("title", "new")
    with pytest.raises(ReproError):
        view.input("unlinked", "x")


def test_closed_view_stops_rendering():
    abstraction = SharedAbstraction()
    view = UserView(abstraction, "alice", links=[ViewLink("k")])
    abstraction.set("x", "k", 1)
    renders = view.render_count
    view.close()
    abstraction.set("x", "k", 2)
    assert view.render_count == renders
    assert view.presented["k"] == 1


def test_multi_user_application_scaffold():
    app = MultiUserApplication("vote-counter")
    app.define_link(ViewLink(
        "votes", accept=lambda presented, current: (current or 0) + 1))
    alice = app.join("alice")
    bob = app.join("bob")
    with pytest.raises(ReproError):
        app.join("alice")
    alice.input("votes", "click")
    bob.input("votes", "click")
    assert app.abstraction.get("votes") == 2
    assert alice.presented["votes"] == 2
    assert bob.presented["votes"] == 2
    app.leave("bob")
    alice.input("votes", "click")
    assert bob.presented["votes"] == 2  # frozen after leaving
    app.leave("ghost")  # tolerated


def test_late_defined_link_propagates_to_existing_views():
    app = MultiUserApplication("doc")
    alice = app.join("alice")
    app.abstraction.set("x", "status", "draft")
    app.define_link(ViewLink("status"))
    assert alice.presented["status"] == "draft"
