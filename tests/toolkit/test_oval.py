"""Tests for the OVAL objects/views/agents/links composition model."""

import pytest

from repro.errors import ReproError
from repro.toolkit import (
    ON_ARRIVAL,
    ON_CHANGE,
    OvalSystem,
    arrived_kind,
    file_into,
    forward_to,
    kind_is,
)


@pytest.fixture
def system():
    return OvalSystem()


def test_objects_have_kind_fields_links(system):
    ws = system.workspace("alice")
    bug = ws.create("bug", {"title": "crash on save", "severity": 2})
    note = ws.create("note", {"text": "reproduced on v3"})
    bug.link("evidence", note)
    assert bug.fields["severity"] == 2
    assert bug.linked("evidence") == [note]
    assert bug.linked("nothing") == []


def test_inbox_view_shows_everything(system):
    ws = system.workspace("alice")
    ws.create("bug", {})
    ws.create("memo", {})
    assert len(ws.view("inbox")) == 2
    assert "inbox" in ws.view_names()


def test_views_are_named_queries(system):
    ws = system.workspace("alice")
    ws.define_view("urgent-bugs",
                   lambda obj: obj.kind == "bug"
                   and obj.fields.get("severity", 0) >= 3)
    ws.create("bug", {"severity": 5})
    ws.create("bug", {"severity": 1})
    ws.create("memo", {"severity": 5})
    assert len(ws.view("urgent-bugs")) == 1
    with pytest.raises(ReproError):
        ws.view("ghost")


def test_send_moves_object_between_workspaces(system):
    alice = system.workspace("alice")
    bob = system.workspace("bob")
    memo = alice.create("memo", {"text": "hello"})
    alice.send(memo, "bob")
    assert memo not in alice.objects
    assert memo in bob.objects
    assert ("alice", "sent to bob") in memo.history
    with pytest.raises(ReproError):
        alice.send(memo, "bob")  # no longer hers
    assert system.users() == ["alice", "bob"]


def test_update_requires_possession(system):
    alice = system.workspace("alice")
    bob = system.workspace("bob")
    memo = alice.create("memo")
    with pytest.raises(ReproError):
        bob.update(memo, text="hijacked")


def test_agent_fires_on_arrival(system):
    alice = system.workspace("alice")
    bob = system.workspace("bob")
    bob.add_agent("file-bugs", arrived_kind("bug"),
                  file_into("folder", "bug-reports"))
    bob.define_view("bug-reports",
                    lambda obj: obj.fields.get("folder") == "bug-reports")
    bug = alice.create("bug", {"title": "x"})
    alice.send(bug, "bob")
    assert bug.fields["folder"] == "bug-reports"
    assert bob.view("bug-reports") == [bug]


def test_agent_forwarding_chain(system):
    """Mail-sorting tailoring: triage forwards severe bugs to the lead."""
    triage = system.workspace("triage")
    lead = system.workspace("lead")
    triage.add_agent(
        "escalate",
        lambda obj, event: event == ON_ARRIVAL
        and obj.fields.get("severity", 0) >= 4,
        forward_to("lead"))
    reporter = system.workspace("reporter")
    severe = reporter.create("bug", {"severity": 5})
    mild = reporter.create("bug", {"severity": 1})
    reporter.send(severe, "triage")
    reporter.send(mild, "triage")
    assert severe in lead.objects
    assert mild in triage.objects


def test_agent_fires_on_change(system):
    ws = system.workspace("alice")
    closed = []
    ws.add_agent("archive-closed",
                 lambda obj, event: event == ON_CHANGE
                 and obj.fields.get("state") == "closed",
                 lambda workspace, obj: closed.append(obj))
    bug = ws.create("bug", {"state": "open"})
    ws.update(bug, state="closed")
    assert closed == [bug]


def test_agent_fire_count_and_removal(system):
    ws = system.workspace("alice")
    agent = ws.add_agent("count-bugs", kind_is("bug"),
                         lambda workspace, obj: None)
    ws.create("bug")
    ws.create("bug")
    assert agent.fired == 2
    ws.remove_agent("count-bugs")
    ws.create("bug")
    assert agent.fired == 2


def test_coordinator_rebuilt_by_tailoring(system):
    """OVAL's party trick: a Coordinator-like tool from primitives."""
    alice = system.workspace("alice")
    bob = system.workspace("bob")
    for ws in (alice, bob):
        ws.define_view("open-conversations",
                       lambda obj: obj.kind == "conversation"
                       and obj.fields.get("state") not in
                       ("completed", "declined"))
    # Bob's agent auto-promises requests from his manager.
    bob.add_agent(
        "auto-promise",
        lambda obj, event: event == ON_ARRIVAL
        and obj.kind == "conversation"
        and obj.fields.get("state") == "requested"
        and obj.fields.get("from") == "alice",
        file_into("state", "promised"))
    conversation = alice.create("conversation",
                                {"state": "requested", "from": "alice",
                                 "about": "write the report"})
    alice.send(conversation, "bob")
    assert conversation.fields["state"] == "promised"
    assert bob.view("open-conversations") == [conversation]
