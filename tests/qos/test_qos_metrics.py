"""Tests for QoS monitor observations landing in the metrics registry."""

from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.qos import QoSContract, QoSMonitor, QoSParameters
from repro.sim import Environment


def contract(latency=float("inf")):
    level = QoSParameters(throughput=0.0, latency=latency)
    return QoSContract("src-node", "dst-node", agreed=level,
                       desired=level, minimum=level)


def test_healthy_windows_count_and_record_distributions():
    env = Environment()
    registry = MetricsRegistry()
    with use_metrics(registry):
        monitor = QoSMonitor(env, contract(), window=1.0)

        def feed(env):
            # Frames land in the first two windows; the third is empty.
            yield env.timeout(0.5)
            monitor.record_frame(env.now - 0.01, env.now, size=100)
            yield env.timeout(0.7)
            monitor.record_frame(env.now - 0.01, env.now, size=100)

        env.process(feed(env))
        env.run(until=3.5)

    counters = registry.counters("qos.windows_ok")
    assert counters == {"qos.windows_ok{flow=src-node->dst-node}": 3}
    assert registry.counters("qos.violations") == {}
    snapshot = registry.snapshot()
    latency = snapshot["histograms"]["qos.latency{flow=src-node->dst-node}"]
    # Only the two windows that saw frames record latency samples.
    assert latency["count"] == 2
    assert abs(latency["mean"] - 0.01) < 1e-9
    loss = snapshot["histograms"]["qos.loss{flow=src-node->dst-node}"]
    assert loss["count"] == 3  # every window, frames or not


def test_violating_window_counts_a_violation():
    env = Environment()
    registry = MetricsRegistry()
    with use_metrics(registry):
        monitor = QoSMonitor(env, contract(latency=0.001), window=1.0)

        def feed(env):
            yield env.timeout(0.5)
            monitor.record_frame(env.now - 0.5, env.now, size=100)

        env.process(feed(env))
        env.run(until=2.0)

    assert registry.counters("qos.violations") == {
        "qos.violations{flow=src-node->dst-node}": 1}


def test_empty_windows_do_not_poison_latency_histogram():
    env = Environment()
    registry = MetricsRegistry()
    with use_metrics(registry):
        QoSMonitor(env, contract(), window=1.0)
        env.run(until=3.5)

    snapshot = registry.snapshot()
    assert "qos.latency{flow=src-node->dst-node}" \
        not in snapshot["histograms"]
    loss = snapshot["histograms"]["qos.loss{flow=src-node->dst-node}"]
    assert loss["count"] == 3
