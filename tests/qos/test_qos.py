"""Tests for QoS parameters, the broker and monitoring."""

import pytest

from repro.errors import QoSError, QoSNegotiationFailed
from repro.net import Network, Topology, dumbbell
from repro.qos import (
    ACTIVE,
    CLOSED,
    DEGRADED,
    QoSBroker,
    QoSContract,
    QoSMonitor,
    QoSParameters,
    VIOLATED,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


# -- parameters -----------------------------------------------------------------

def test_parameters_validation():
    with pytest.raises(QoSError):
        QoSParameters(throughput=-1)
    with pytest.raises(QoSError):
        QoSParameters(latency=-1)
    with pytest.raises(QoSError):
        QoSParameters(jitter=-1)
    with pytest.raises(QoSError):
        QoSParameters(loss=2.0)


def test_satisfies_partial_order():
    good = QoSParameters(throughput=2e6, latency=0.01, jitter=0.001,
                         loss=0.001)
    weak = QoSParameters(throughput=1e6, latency=0.05, jitter=0.01,
                         loss=0.01)
    assert good.satisfies(weak)
    assert not weak.satisfies(good)
    assert weak.compatible_with(good)
    assert not good.compatible_with(weak)


def test_scaled_degrades_throughput():
    params = QoSParameters(throughput=1e6, latency=0.05)
    half = params.scaled(0.5)
    assert half.throughput == 5e5
    assert half.latency == 0.05
    with pytest.raises(QoSError):
        params.scaled(0)
    with pytest.raises(QoSError):
        params.scaled(1.5)


def test_parameters_equality():
    assert QoSParameters(1e6, 0.1) == QoSParameters(1e6, 0.1)
    assert QoSParameters(1e6) != QoSParameters(2e6)
    assert QoSParameters() != "not-params"


def test_contract_lifecycle():
    desired = QoSParameters(throughput=1e6, latency=0.1)
    minimum = QoSParameters(throughput=2e5, latency=0.1)
    contract = QoSContract("a", "b", desired, desired, minimum)
    assert contract.state == ACTIVE
    assert contract.is_active
    contract.mark_violated()
    assert contract.state == VIOLATED
    contract.renegotiate(QoSParameters(throughput=5e5, latency=0.1))
    assert contract.state == DEGRADED
    assert contract.renegotiations == 1
    contract.close()
    assert contract.state == CLOSED
    with pytest.raises(QoSError):
        contract.renegotiate(desired)


def test_contract_renegotiation_floor():
    desired = QoSParameters(throughput=1e6, latency=0.1)
    minimum = QoSParameters(throughput=5e5, latency=0.1)
    contract = QoSContract("a", "b", desired, desired, minimum)
    with pytest.raises(QoSError):
        contract.renegotiate(QoSParameters(throughput=1e5, latency=0.1))


# -- broker ---------------------------------------------------------------------

def make_broker(env):
    topo = dumbbell(env, left=2, right=2, bottleneck_bandwidth=1e6)
    net = Network(env, topo)
    return QoSBroker(net), net


def test_broker_admits_within_capacity(env):
    broker, _ = make_broker(env)
    contract = broker.negotiate(
        "left0", "right0",
        QoSParameters(throughput=5e5, latency=0.1))
    assert contract.agreed.throughput == 5e5
    assert broker.counters["admitted"] == 1


def test_broker_grants_degraded_level(env):
    broker, _ = make_broker(env)
    # Bottleneck reservable capacity is 0.8 Mb/s; ask 2 Mb/s, accept 0.2.
    contract = broker.negotiate(
        "left0", "right0",
        QoSParameters(throughput=2e6, latency=0.1),
        minimum=QoSParameters(throughput=2e5, latency=0.1))
    assert contract.agreed.throughput == pytest.approx(8e5)
    assert broker.counters["admitted_degraded"] == 1


def test_broker_refuses_beyond_capacity(env):
    broker, _ = make_broker(env)
    broker.negotiate("left0", "right0",
                     QoSParameters(throughput=7e5, latency=0.1))
    with pytest.raises(QoSNegotiationFailed):
        broker.negotiate("left1", "right1",
                         QoSParameters(throughput=5e5, latency=0.1))
    assert broker.counters["refused:capacity"] == 1


def test_broker_refuses_impossible_latency(env):
    broker, _ = make_broker(env)
    with pytest.raises(QoSNegotiationFailed):
        broker.negotiate("left0", "right0",
                         QoSParameters(throughput=1e5, latency=0.001))
    assert broker.counters["refused:latency"] == 1


def test_broker_release_returns_capacity(env):
    broker, _ = make_broker(env)
    contract = broker.negotiate(
        "left0", "right0", QoSParameters(throughput=7e5, latency=0.1))
    broker.release(contract)
    assert contract.state == CLOSED
    # Capacity came back: the second flow now fits.
    second = broker.negotiate(
        "left1", "right1", QoSParameters(throughput=7e5, latency=0.1))
    assert second.agreed.throughput == 7e5
    with pytest.raises(QoSError):
        broker.release(contract)  # already gone


def test_broker_renegotiate_down_frees_capacity(env):
    broker, _ = make_broker(env)
    contract = broker.negotiate(
        "left0", "right0",
        QoSParameters(throughput=7e5, latency=0.1),
        minimum=QoSParameters(throughput=1e5, latency=0.1))
    broker.renegotiate(contract, 3e5)
    assert contract.agreed.throughput == 3e5
    # Freed capacity admits a second flow.
    second = broker.negotiate(
        "left1", "right1", QoSParameters(throughput=5e5, latency=0.1))
    assert second.agreed.throughput == 5e5


def test_broker_renegotiate_up_needs_capacity(env):
    broker, _ = make_broker(env)
    first = broker.negotiate(
        "left0", "right0",
        QoSParameters(throughput=4e5, latency=0.1),
        minimum=QoSParameters(throughput=1e5, latency=0.1))
    broker.negotiate("left1", "right1",
                     QoSParameters(throughput=4e5, latency=0.1))
    with pytest.raises(QoSNegotiationFailed):
        broker.renegotiate(first, 8e5)


def test_broker_validation(env):
    topo = Topology(env)
    topo.add_link("a", "b")
    net = Network(env, topo)
    with pytest.raises(QoSError):
        QoSBroker(net, reservable_fraction=0)
    broker = QoSBroker(net)
    with pytest.raises(QoSError):
        broker.negotiate("a", "b", QoSParameters(throughput=1e5),
                         minimum=QoSParameters(throughput=2e5))
    ghost = QoSContract("a", "b", QoSParameters(), QoSParameters(),
                        QoSParameters())
    with pytest.raises(QoSError):
        broker.release(ghost)


# -- monitor -------------------------------------------------------------------

def make_contract():
    level = QoSParameters(throughput=8e5, latency=0.05, jitter=0.02,
                          loss=0.05)
    return QoSContract("a", "b", level, level, level)


def test_monitor_window_ok(env):
    contract = make_contract()
    monitor = QoSMonitor(env, contract, window=1.0,
                         expected_frames_per_window=25)

    def feeder(env):
        for i in range(25):
            yield env.timeout(0.04)
            sent = env.now - 0.01
            monitor.record_frame(sent, env.now, 4000)

    env.process(feeder(env))
    env.run(until=1.5)
    assert monitor.counters["windows_ok"] >= 1
    assert monitor.counters["violations"] == 0
    assert contract.state == ACTIVE


def test_monitor_detects_starvation(env):
    contract = make_contract()
    violations = []
    QoSMonitor(env, contract, window=1.0,
               on_violation=violations.append,
               expected_frames_per_window=25)
    env.run(until=1.5)  # no frames at all
    assert violations
    assert violations[0].frames == 0
    assert contract.state == VIOLATED


def test_monitor_detects_latency_violation(env):
    contract = make_contract()
    monitor = QoSMonitor(env, contract, window=1.0,
                         expected_frames_per_window=25)

    def feeder(env):
        for i in range(25):
            yield env.timeout(0.04)
            monitor.record_frame(env.now - 0.5, env.now, 4000)  # 500ms!

    env.process(feeder(env))
    env.run(until=1.5)
    assert monitor.counters["violations"] >= 1


def test_monitor_stops_when_contract_closed(env):
    contract = make_contract()
    monitor = QoSMonitor(env, contract, window=1.0)
    contract.close()
    env.run(until=5.0)
    # One window at most was evaluated after closing.
    assert len(monitor.observations) <= 1


def test_monitor_validation(env):
    contract = make_contract()
    with pytest.raises(QoSError):
        QoSMonitor(env, contract, window=0)
    monitor = QoSMonitor(env, contract, window=1.0)
    with pytest.raises(QoSError):
        monitor.record_frame(5.0, 1.0, 100)


def test_observation_meets_accounts_for_slack():
    from repro.qos import QoSObservation

    agreed = QoSParameters(throughput=1e6, latency=0.1, jitter=0.05,
                           loss=0.1)
    observation = QoSObservation(0, 1, 0.95e6, 0.05, 0.01, 0.0, 25)
    assert observation.meets(agreed)
    starved = QoSObservation(0, 1, 0.5e6, 0.05, 0.01, 0.0, 25)
    assert not starved.meets(agreed)
